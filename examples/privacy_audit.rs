//! Privacy audit: membership inference and DP-SGD accounting.
//!
//! ```sh
//! cargo run --release --example privacy_audit
//! ```
//!
//! Reproduces the paper's two privacy probes in miniature: (1) a
//! LOGAN-style membership-inference attack against a released model, showing
//! the counterintuitive "subsetting hurts privacy" effect, and (2) the
//! Renyi-DP accountant converting DP-SGD parameters to an epsilon guarantee.

use dg_datasets::{sine, SineConfig};
use dg_privacy::{compute_epsilon, membership_attack, noise_for_epsilon};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_on(n: usize, pool: &dg_data::Dataset, seed: u64) -> DoppelGanger {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = pool.truncated(n);
    let cfg = DgConfig::quick().with_recommended_s(train.schema.max_len);
    let model = DoppelGanger::new(&train, cfg, &mut rng);
    let encoded = model.encode(&train);
    let mut trainer = Trainer::new(model);
    trainer.fit(&encoded, 300, &mut rng, |_| {});
    trainer.into_model()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let cfg = SineConfig { num_objects: 240, length: 24, periods: vec![6, 12], noise_sigma: 0.05 };
    let data = sine::generate(&cfg, &mut rng);
    let (pool, held) = data.split(0.5, &mut rng);

    println!("membership-inference success rate vs training-set size");
    println!("(0.5 = chance; the paper finds small training sets leak membership)");
    for n in [15, 30, 60, pool.len()] {
        let model = train_on(n, &pool, 100 + n as u64);
        let members = pool.truncated(n);
        let nonmembers = held.truncated(n.min(held.len()));
        let rate = membership_attack(&model, &members, &nonmembers);
        println!("  {n:>4} training samples -> attack success {rate:.3}");
    }

    println!();
    println!("Renyi-DP accounting for DP-SGD (delta = 1e-5):");
    let q = 100.0 / 50_000.0; // batch 100 of 50k samples (the paper's scale)
    for steps in [10_000usize, 100_000, 200_000] {
        let eps = compute_epsilon(q, 1.1, steps, 1e-5);
        println!("  sigma = 1.1, {steps:>7} steps -> epsilon = {eps:.2}");
    }
    println!();
    println!("noise needed for the paper's Fig. 13 epsilon grid (200k steps):");
    for target in [0.55, 1.18, 4.77] {
        match noise_for_epsilon(q, 200_000, 1e-5, target) {
            Some(sigma) => println!("  epsilon = {target:>5} -> sigma = {sigma:.2}"),
            None => println!("  epsilon = {target:>5} -> unachievable"),
        }
    }
    println!();
    println!("(the paper finds that sigmas this large destroy temporal fidelity — see exp_fig13_dp)");
}
