//! Web-traffic scenario: the paper's headline experiment in miniature.
//!
//! ```sh
//! cargo run --release --example web_traffic
//! ```
//!
//! Trains DoppelGANger and the naive-GAN strawman on a Wikipedia-like page
//! view dataset (weekly + long-period seasonality, heavy-tailed page
//! scales), then compares how well each captures the autocorrelation
//! structure — the Fig. 1 story.

use dg_baselines::{GenerativeModel, NaiveGanConfig, NaiveGanModel};
use dg_datasets::{wwt, WwtConfig};
use dg_metrics::{average_autocorrelation, curve_mse};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['1', '2', '3', '4', '5', '6', '7', '8'];
    let mn = values.iter().copied().fold(f64::INFINITY, f64::min);
    let mx = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (mx - mn).max(1e-12);
    values.iter().map(|&v| BARS[(((v - mn) / span) * 7.0).round() as usize]).collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Shrunk WWT: 120-day series, weekly period 7, "annual" period 42.
    let cfg =
        WwtConfig { num_objects: 150, length: 120, short_period: 7, long_period: 42, ..WwtConfig::default() };
    let data = wwt::generate(&cfg, &mut rng);
    let max_lag = cfg.length - 2;
    let real_ac = average_autocorrelation(&data, 0, max_lag, 16);
    println!("real autocorrelation  {}", sparkline(&real_ac));
    println!("(expect ripples every 7 lags and a bump near lag {})", cfg.long_period);

    // DoppelGANger.
    let dg_cfg = DgConfig::quick().with_recommended_s(cfg.length);
    let model = DoppelGanger::new(&data, dg_cfg, &mut rng);
    let encoded = model.encode(&data);
    let mut trainer = Trainer::new(model);
    println!("training DoppelGANger (S = {})...", trainer.model.config.feature_batch_size);
    trainer.fit(&encoded, 500, &mut rng, |m| {
        if m.iteration % 125 == 0 {
            println!("  iter {:>4}: W~{:+.3}", m.iteration, m.wasserstein);
        }
    });
    let model = trainer.into_model();
    let dg_gen = Sampler::new(model).generate_dataset(150, &mut rng);
    let dg_ac = average_autocorrelation(&dg_gen, 0, max_lag, 16);

    // Naive GAN (the §3.3 strawman).
    println!("training naive GAN...");
    let ng_cfg = NaiveGanConfig { train_steps: 500, ..NaiveGanConfig::default() };
    let naive = NaiveGanModel::fit(&data, ng_cfg, &mut rng);
    let ng_gen = naive.generate_dataset(&data.schema, 150, &mut rng);
    let ng_ac = average_autocorrelation(&ng_gen, 0, max_lag, 16);

    println!();
    println!("DoppelGANger          {}", sparkline(&dg_ac));
    println!("naive GAN             {}", sparkline(&ng_ac));
    let dg_mse = curve_mse(&real_ac[1..], &dg_ac[1..]);
    let ng_mse = curve_mse(&real_ac[1..], &ng_ac[1..]);
    println!();
    println!("autocorrelation MSE:  DoppelGANger {dg_mse:.5}  |  naive GAN {ng_mse:.5}");
    if dg_mse < ng_mse {
        println!("DoppelGANger captures the temporal structure better (the paper's Fig. 1 result).");
    } else {
        println!("note: at this tiny training budget the ordering can flip; rerun with more iterations.");
    }
}
