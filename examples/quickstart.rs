//! Quickstart: train DoppelGANger on a toy dataset, generate synthetic data,
//! and check basic fidelity.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full workflow of the paper's Fig. 2: the *data holder* trains a
//! model, serializes its parameters, and the *data consumer* deserializes
//! them and generates as much synthetic data as desired.

use dg_datasets::{sine, SineConfig};
use dg_metrics::{autocorrelation, jsd_counts};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. The data holder's private dataset: noisy sinusoids in two frequency
    //    classes with wildly varying amplitudes.
    let data_cfg = SineConfig { num_objects: 120, length: 32, periods: vec![8, 16], noise_sigma: 0.05 };
    let real = sine::generate(&data_cfg, &mut rng);
    println!("real dataset: {} objects, length {}", real.len(), data_cfg.length);

    // 2. Configure and train DoppelGANger. The feature batch size S follows
    //    the paper's T/50 rule automatically.
    let config = DgConfig::quick().with_recommended_s(real.schema.max_len);
    let model = DoppelGanger::new(&real, config, &mut rng);
    let encoded = model.encode(&real);
    println!(
        "model: {} parameters, S = {}, {} LSTM passes per series",
        model.store.num_scalars(),
        model.config.feature_batch_size,
        model.num_steps
    );

    let mut trainer = Trainer::new(model);
    trainer.fit(&encoded, 300, &mut rng, |m| {
        if m.iteration % 100 == 0 {
            println!(
                "  iter {:>4}: d_loss {:+.3}  g_loss {:+.3}  W~{:+.3}",
                m.iteration, m.d_loss, m.g_loss, m.wasserstein
            );
        }
    });
    let model = trainer.into_model();

    // 3. Data holder releases the model parameters (Fig. 2, step 3).
    let released = model.to_json();
    println!("released model: {} bytes of JSON", released.len());

    // 4. The data consumer restores the model and generates synthetic data.
    let consumer_model = DoppelGanger::from_json(&released).expect("released model parses");
    let sampler = Sampler::new(consumer_model);
    let mut consumer_rng = StdRng::seed_from_u64(1);
    let synthetic = sampler.generate_dataset(200, &mut consumer_rng);
    println!("synthetic dataset: {} objects", synthetic.len());

    // 5. Basic fidelity checks.
    let real_counts = real.attribute_counts(0);
    let syn_counts = synthetic.attribute_counts(0);
    println!("attribute marginal - real {real_counts:?}, synthetic {syn_counts:?}");
    println!("attribute JSD: {:.4} (0 = identical)", jsd_counts(&real_counts, &syn_counts));

    let sample = &synthetic.objects[0];
    let series = sample.feature_series(0);
    let ac = autocorrelation(&series, 16);
    println!(
        "one synthetic sample: class {:?}, first values {:?}",
        sample.attributes[0],
        &series[..4.min(series.len())]
    );
    println!("its lag-8 autocorrelation: {:+.2} (period-8 class would be ~+1)", ac[8.min(ac.len() - 1)]);
}
