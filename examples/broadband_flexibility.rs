//! Broadband scenario: attribute flexibility and business-secret masking.
//!
//! ```sh
//! cargo run --release --example broadband_flexibility
//! ```
//!
//! Trains DoppelGANger on an FCC-MBA-like broadband measurement dataset,
//! then exercises the paper's flexibility mechanism (§5.2 / §5.3.2):
//! retraining *only* the attribute generator so satellite users — a rare
//! class in the real data — dominate the generated data, without touching
//! the conditional feature generator.

use dg_data::Value;
use dg_datasets::{mba, MbaConfig};
use dg_metrics::wasserstein1;
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let cfg = MbaConfig::quick(300);
    let data = mba::generate(&cfg, &mut rng);
    let tech_counts = data.attribute_counts(0);
    println!("technologies {:?}: {:?}", mba::TECHNOLOGIES, tech_counts);

    let dg_cfg = DgConfig::quick().with_recommended_s(cfg.length);
    let model = DoppelGanger::new(&data, dg_cfg, &mut rng);
    let encoded = model.encode(&data);
    let mut trainer = Trainer::new(model);
    println!("training DoppelGANger...");
    trainer.fit(&encoded, 500, &mut rng, |_| {});
    let mut model = trainer.into_model();

    let before = Sampler::new(model.clone()).generate_dataset(300, &mut rng);
    println!("generated technologies before retraining: {:?}", before.attribute_counts(0));

    // Flexibility: make satellite (index 2) the dominant class, keeping the
    // empirical ISP/state combos of real satellite users.
    let satellite = data.filter_by_attribute(0, 2);
    let mut combos: Vec<Vec<Value>> = satellite.objects.iter().map(|o| o.attributes.clone()).collect();
    let mut weights = vec![8.0; combos.len()];
    // Keep 20% of the original mix so the distribution stays diverse.
    for o in data.objects.iter().take(50) {
        combos.push(o.attributes.clone());
        weights.push(1.0);
    }
    let target = AttributeDistribution::from_weights(combos, weights);
    println!("retraining the attribute generator toward a satellite-heavy target...");
    retrain_attribute_generator(&mut model, &target, 300, &mut rng);

    let after = Sampler::new(model).generate_dataset(300, &mut rng);
    println!("generated technologies after retraining:  {:?}", after.attribute_counts(0));

    // The conditional P(R | A) is untouched: satellite users should still
    // show satellite-like (low) bandwidth.
    let real_sat_bw: Vec<f64> = satellite.objects.iter().map(mba::total_bandwidth).collect();
    let gen_sat = after.filter_by_attribute(0, 2);
    if !gen_sat.is_empty() && !real_sat_bw.is_empty() {
        let gen_bw: Vec<f64> = gen_sat.objects.iter().map(mba::total_bandwidth).collect();
        println!(
            "satellite total-bandwidth W1 distance (generated vs real): {:.2} GB",
            wasserstein1(&real_sat_bw, &gen_bw)
        );
    }
    println!("(the paper's point: attribute distributions can be masked/amplified post hoc)");
}
