//! Cluster-trace scenario: variable-length tasks and downstream prediction.
//!
//! ```sh
//! cargo run --release --example cluster_trace
//! ```
//!
//! Trains DoppelGANger on a Google-cluster-like task trace (bimodal
//! durations, end-event attribute correlated with resource dynamics), then
//! shows the paper's key downstream-utility test: a classifier trained on
//! *synthetic* data predicting end events of *real* held-out tasks (Fig. 11).

use dg_datasets::{gcut, GcutConfig};
use dg_downstream::{accuracy, classification_task, standard_classifiers};
use dg_metrics::{attribute_histogram, count_modes, length_histogram};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = GcutConfig::quick(300);
    let data = gcut::generate(&cfg, &mut rng);
    let (train, test) = data.split(0.5, &mut rng);
    println!(
        "cluster trace: {} tasks ({} train / {} test), features: {:?}",
        data.len(),
        train.len(),
        test.len(),
        data.schema.features.iter().map(|f| f.name.as_str()).collect::<Vec<_>>()
    );

    let real_lengths = length_histogram(&data, cfg.max_len);
    println!("real duration modes: {}", count_modes(&real_lengths, 0.2));
    println!("real end events (EVICT/FAIL/FINISH/KILL): {:?}", attribute_histogram(&data, 0));

    // Train DoppelGANger on the training half.
    let dg_cfg = DgConfig::quick().with_recommended_s(cfg.max_len);
    let model = DoppelGanger::new(&train, dg_cfg, &mut rng);
    let encoded = model.encode(&train);
    let mut trainer = Trainer::new(model);
    println!("training DoppelGANger...");
    trainer.fit(&encoded, 500, &mut rng, |_| {});
    let model = trainer.into_model();

    // Generate a synthetic training set of the same size.
    let synthetic = Sampler::new(model).generate_dataset(train.len(), &mut rng);
    println!("synthetic duration modes: {}", count_modes(&length_histogram(&synthetic, cfg.max_len), 0.2));
    println!("synthetic end events: {:?}", attribute_histogram(&synthetic, 0));

    // Downstream: predict the end event from the time series.
    let test_task = classification_task(&test, 0);
    println!();
    println!("end-event prediction accuracy on real held-out tasks:");
    for source in ["real", "synthetic"] {
        let train_data = if source == "real" { &train } else { &synthetic };
        let task = classification_task(train_data, 0);
        print!("  trained on {source:<10}");
        for mut clf in standard_classifiers() {
            clf.fit(&task.x, &task.y, task.y.len(), task.dim, task.num_classes);
            let pred = clf.predict(&test_task.x, test_task.y.len(), test_task.dim);
            print!("  {}={:.3}", clf.name(), accuracy(&pred, &test_task.y));
        }
        println!();
    }
    println!();
    println!("(the paper's utility claim: the synthetic row should approach the real row)");
}
