//! `#[derive(Serialize, Deserialize)]` for the offline serde stub.
//!
//! Hand-parses the item's token stream (no `syn`/`quote` — this toolchain
//! has no network access to fetch them) and emits impls of the stub's
//! value-tree traits. Supports non-generic named-field structs, tuple
//! structs, unit structs, and externally-tagged enums with unit / tuple /
//! struct variants. The only serde attributes honored are
//! `#[serde(default)]`, `#[serde(default = "path")]` (the named
//! function is called for the fallback, as real serde does), and
//! `#[serde(skip_serializing_if = "path")]` (the predicate gates the
//! field's presence in serialized output); other attributes are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    /// `None` — required field; `Some(None)` — `#[serde(default)]`;
    /// `Some(Some(path))` — `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    /// `#[serde(skip_serializing_if = "path")]`: the predicate that, when
    /// true of the field value, omits the field from serialized output.
    skip_serializing_if: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde stub derive: expected `struct` or `enum`, got {t:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde stub derive: expected type name, got {t:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }
    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            t => panic!("serde stub derive: unsupported struct body for `{name}`: {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde stub derive: expected enum body for `{name}`, got {t:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };
    Item { name, body }
}

/// The argument tokens of a `#[serde(...)]` attribute's parenthesized
/// group, or `None` when the attribute is not a `serde` one.
fn serde_attr_args(attr: &TokenTree) -> Option<Vec<TokenTree>> {
    let TokenTree::Group(g) = attr else { return None };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) = (inner.first(), inner.get(1)) else {
        return None;
    };
    if id.to_string() != "serde" {
        return None;
    }
    Some(args.stream().into_iter().collect())
}

/// The `= "literal"` value following `args[j]`, unquoted.
fn attr_eq_str(args: &[TokenTree], j: usize) -> Option<String> {
    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) = (args.get(j + 1), args.get(j + 2)) {
        if eq.as_char() == '=' {
            return Some(lit.to_string().trim_matches('"').to_string());
        }
    }
    None
}

/// Parses a `serde(... default ...)` attribute group: `Some(None)` for a
/// bare `default`, `Some(Some(path))` for `default = "path"`, `None` when
/// the attribute carries no default at all.
fn attr_serde_default(attr: &TokenTree) -> Option<Option<String>> {
    let args = serde_attr_args(attr)?;
    for (j, t) in args.iter().enumerate() {
        if matches!(t, TokenTree::Ident(id) if id.to_string() == "default") {
            return Some(attr_eq_str(&args, j));
        }
    }
    None
}

/// Parses `serde(... skip_serializing_if = "path" ...)` into the predicate
/// path, `None` when absent.
fn attr_serde_skip(attr: &TokenTree) -> Option<String> {
    let args = serde_attr_args(attr)?;
    for (j, t) in args.iter().enumerate() {
        if matches!(t, TokenTree::Ident(id) if id.to_string() == "skip_serializing_if") {
            return attr_eq_str(&args, j);
        }
    }
    None
}

/// Advances past the type after a field's `:` — to the token index just
/// after the next comma at angle-bracket depth 0 (or the end).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    let mut prev_char = ' ';
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            let c = p.as_char();
            match c {
                '<' => angle_depth += 1,
                // A '>' that closes generics; `->` (fn-pointer types) must
                // not decrement.
                '>' if prev_char != '-' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i + 1,
                _ => {}
            }
            prev_char = c;
        } else {
            prev_char = ' ';
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = None;
        let mut skip_serializing_if = None;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(d) = tokens.get(i + 1).and_then(attr_serde_default) {
                default = Some(d);
            }
            if let Some(s) = tokens.get(i + 1).and_then(attr_serde_skip) {
                skip_serializing_if = Some(s);
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            t => panic!("serde stub derive: expected field name, got {t:?}"),
        };
        i += 1; // name
        i += 1; // ':'
        i = skip_type(&tokens, i);
        fields.push(Field { name, default, skip_serializing_if });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Skip per-field attributes and visibility, then one type.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        i = skip_type(&tokens, i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            t => panic!("serde stub derive: expected variant name, got {t:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- codegen -----------------------------------------------------------

fn str_from(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn named_fields_to_object(fields: &[Field], access_prefix: &str) -> String {
    if fields.iter().all(|f| f.skip_serializing_if.is_none()) {
        let entries: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "({}, ::serde::Serialize::to_stub_value(&{}{}))",
                    str_from(&f.name),
                    access_prefix,
                    f.name
                )
            })
            .collect();
        return format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "));
    }
    // At least one field is conditional: build the object imperatively so
    // skipped fields are simply never pushed.
    let stmts: Vec<String> = fields
        .iter()
        .map(|f| {
            let access = format!("{access_prefix}{}", f.name);
            let push = format!(
                "__fields.push(({}, ::serde::Serialize::to_stub_value(&{access})));",
                str_from(&f.name)
            );
            match &f.skip_serializing_if {
                // Struct fields (`self.x`) need `&`; enum-variant bindings
                // are already references.
                Some(path) => {
                    let arg = if access_prefix.is_empty() { access } else { format!("&{access}") };
                    format!("if !{path}({arg}) {{ {push} }}")
                }
                None => push,
            }
        })
        .collect();
    format!(
        "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
           ::std::vec::Vec::new(); {} ::serde::Value::Object(__fields) }}",
        stmts.join(" ")
    )
}

fn named_fields_from_object(ty: &str, fields: &[Field], obj_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fallback = match &f.default {
                Some(Some(path)) => format!("{path}()"),
                Some(None) => "::std::default::Default::default()".to_string(),
                None => format!("::serde::missing_field(\"{}\", \"{}\")?", ty, f.name),
            };
            format!(
                "{}: match ::serde::field({}, \"{}\") {{ \
                   ::std::option::Option::Some(__x) => ::serde::Deserialize::from_stub_value(__x)?, \
                   ::std::option::Option::None => {fallback}, \
                 }},",
                f.name, obj_var, f.name
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => named_fields_to_object(fields, "self."),
        Body::TupleStruct(1) => "::serde::Serialize::to_stub_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_stub_value(&self.{k})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str({}),", str_from(vn))
                        }
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_stub_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_stub_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![({}, {payload})]),",
                                binds.join(", "),
                                str_from(vn)
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = named_fields_to_object(fields, "");
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![({}, {inner})]),",
                                binds.join(", "),
                                str_from(vn)
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_stub_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits = named_fields_from_object(name, fields, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_stub_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_stub_value(__items.get({k}).ok_or_else(|| ::serde::Error::missing(\"tuple field {k}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?; \
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_stub_value(__payload)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_stub_value(__items.get({k}).ok_or_else(|| ::serde::Error::missing(\"variant field {k}\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ \
                                   let __items = __payload.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vn}\"))?; \
                                   ::std::result::Result::Ok({name}::{vn}({})) \
                                 }},",
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits =
                                named_fields_from_object(&format!("{name}::{vn}"), fields, "__obj");
                            format!(
                                "\"{vn}\" => {{ \
                                   let __obj = __payload.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vn}\"))?; \
                                   ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) \
                                 }},",
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{ \
                   return match __s.as_str() {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                   }}; \
                 }} \
                 let (__tag, __payload) = ::serde::variant(__v).ok_or_else(|| ::serde::Error::expected(\"externally tagged enum\", \"{name}\"))?; \
                 match __tag {{ \
                   {} \
                   __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                 }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_stub_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
