//! Offline stand-in for `criterion`: same API shape, but each benchmark body
//! is executed a handful of times with a plain `Instant` timing printout
//! instead of statistical sampling. Enough to type-check and smoke-run the
//! workspace's benches without the real crate.

use std::fmt::Display;
use std::time::Instant;

const RUNS: u32 = 3;

/// Benchmark identifier (name + optional parameter).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher;

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..RUNS {
            std::hint::black_box(f());
        }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let t0 = Instant::now();
    f(&mut Bencher);
    let per_run = t0.elapsed().as_secs_f64() * 1e3 / RUNS as f64;
    println!("bench {label:<40} ~{per_run:.3} ms/iter ({RUNS} runs)");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }
    pub fn bench_function(&mut self, name: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&name.to_string(), &mut f);
        self
    }
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }
    pub fn finish(self) {}
}

/// Mirrors `criterion::black_box` (also re-exported by the real crate).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
