//! Empty placeholder. The offline check prunes proptest-based test files
//! (`sync.sh` deletes them from the scratch workspace) because reimplementing
//! proptest's strategy DSL offline is not worth it; this crate only exists so
//! `proptest.workspace = true` dev-dependencies still resolve.
