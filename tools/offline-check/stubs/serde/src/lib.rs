//! Offline stand-in for `serde`: a value-tree data model instead of the real
//! visitor architecture. `#[derive(Serialize, Deserialize)]` (from the
//! sibling `serde_derive` stub) maps types to/from [`Value`]; the
//! `serde_json` stub renders/parses [`Value`] as real JSON text. Supports
//! the subset this workspace uses: named-field structs, tuple structs,
//! externally-tagged enums (unit/tuple/struct variants), `#[serde(default)]`,
//! and the std impls below. Float round-trips are bit-exact (shortest-repr
//! printing, direct `str::parse` back into the target width).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model. Numbers keep their canonical text so that
/// parsing can go straight to the target type without double rounding.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Object-field lookup, matching `serde_json::Value::get(&str)`:
    /// `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|obj| field(obj, key))
    }

    /// The value as a `u64` if it is a non-negative integer number,
    /// matching `serde_json::Value::as_u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(s) => s.parse::<i64>().ok(),
            _ => None,
        }
    }

    /// The value as a `bool` if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
    pub fn expected(what: &str, context: &str) -> Self {
        Error { msg: format!("expected {what} for {context}") }
    }
    pub fn missing(field: &str) -> Self {
        Error { msg: format!("missing field `{field}`") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializable types (stand-in for `serde::Serialize`).
pub trait Serialize {
    fn to_stub_value(&self) -> Value;
}

/// Deserializable types (stand-in for `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn from_stub_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    /// Owned-deserialization marker, blanket-covered like the real crate.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---- helpers used by the derive macro ----------------------------------

/// Looks a field up in an object by name.
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Resolves a missing field: `Option` fields become `None` (they accept
/// `Null`), everything else errors — matching real serde.
pub fn missing_field<T: Deserialize>(ty: &str, name: &str) -> Result<T, Error> {
    T::from_stub_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{name}` for {ty}")))
}

/// Splits an externally-tagged enum value into `(variant, payload)`.
pub fn variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(fields) if fields.len() == 1 => Some((fields[0].0.as_str(), &fields[0].1)),
        _ => None,
    }
}

// ---- std impls ---------------------------------------------------------

// `Value` round-trips through itself, so `from_str::<Value>` /
// `from_value::<T>` work like the real crate's.
impl Serialize for Value {
    fn to_stub_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_stub_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_stub_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_stub_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|_| {
                        Error::custom(format!("invalid {}: {s}", stringify!($t)))
                    }),
                    other => Err(Error::expected("number", other.kind())),
                }
            }
        }
    )*};
}
int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_stub_value(&self) -> Value {
                if self.is_finite() {
                    // Rust's Display prints the shortest text that parses
                    // back to the same float, so round-trips are bit-exact.
                    Value::Num(format!("{self}"))
                } else {
                    Value::Null // serde_json serializes non-finite as null
                }
            }
        }
        impl Deserialize for $t {
            fn from_stub_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|_| {
                        Error::custom(format!("invalid {}: {s}", stringify!($t)))
                    }),
                    other => Err(Error::expected("number", other.kind())),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for bool {
    fn to_stub_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_stub_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_stub_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_stub_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_stub_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_stub_value(&self) -> Value {
        (**self).to_stub_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_stub_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_stub_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_stub_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_stub_value).collect(),
            other => Err(Error::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_stub_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_stub_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_stub_value(&self) -> Value {
        match self {
            Some(x) => x.to_stub_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_stub_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_stub_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_stub_value(&self) -> Value {
        (**self).to_stub_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_stub_value(v: &Value) -> Result<Self, Error> {
        T::from_stub_value(v).map(Box::new)
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_stub_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_stub_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_stub_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v.kind()))?;
                Ok(($($t::from_stub_value(
                    items.get($n).ok_or_else(|| Error::missing("tuple element"))?
                )?,)+))
            }
        }
    )*};
}
tuple_impl!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_stub_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_stub_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_stub_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v.kind()))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_stub_value(v)?))).collect()
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_stub_value(&self) -> Value {
        // Sort for stable output (HashMap iteration order is arbitrary).
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_stub_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_stub_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::expected("object", v.kind()))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_stub_value(v)?))).collect()
    }
}
