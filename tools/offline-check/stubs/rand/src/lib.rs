//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`, `RngCore`, `seq::SliceRandom::{shuffle, choose}`).
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic and
//! statistically fine for tests, but NOT the same stream as the real crate's
//! `StdRng` (ChaCha12). Tests must therefore compare identically-seeded
//! instances against each other, never against golden values, which is how
//! this workspace's tests are written.

use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this stub;
/// present so workspace types can implement `RngCore` against both the
/// real crate and this one).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core RNG interface (object-safe, like the real crate).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible by [`Rng::gen`] (stand-in for `Standard: Distribution<T>`).
pub trait StandardValue {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardValue for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardValue for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardValue for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl StandardValue for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform_f32(rng)
    }
}
impl StandardValue for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform_f64(rng)
    }
}

pub(crate) fn uniform_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 random mantissa bits -> uniform in [0, 1).
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

pub(crate) fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a range. Like the real crate, `SampleRange`
/// has ONE blanket impl per range shape over this trait — that single impl is
/// what lets `gen_range(-0.05..0.05)` infer `{float}` from context.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_below(self.start, self.end, rng)
    }
}
impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return (low as i128 + rng.next_u64() as i128) as $t;
                }
                (low as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
int_uniform!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_uniform {
    ($($t:ty: $unit:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                low + (high - low) * $unit(rng)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                low + (high - low) * $unit(rng)
            }
        }
    )*};
}
float_uniform!(f32: uniform_f32, f64: uniform_f64);

/// User-facing RNG extension methods (blanket-implemented like the real one).
pub trait Rng: RngCore {
    fn gen<T: StandardValue>(&mut self) -> T {
        T::from_rng(self)
    }
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        uniform_f64(self) < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (only `seed_from_u64`, which is all we use).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (NOT the real crate's ChaCha12 —
    /// same API, different stream; see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing (Fisher–Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(0..5usize);
            assert!(x < 5);
            let y = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&y));
            let z = rng.gen_range(3..=4usize);
            assert!(z == 3 || z == 4);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
        assert_ne!(v, s, "100 elements shuffling to identity is ~impossible");
    }

    #[test]
    fn dyn_rng_core_gets_rng_methods() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0..10usize);
        assert!(x < 10);
    }
}
