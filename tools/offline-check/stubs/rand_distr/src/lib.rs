//! Offline stand-in for the `rand_distr` crate: `Distribution`, `Normal`,
//! and `LogNormal` (the only pieces this workspace uses). Normal sampling is
//! Box–Muller, so the streams differ from the real crate's ziggurat — tests
//! compare identically-seeded instances, never golden values.

use rand::Rng;
use std::fmt;

/// Types that can be sampled with an RNG.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error type for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid normal-distribution parameters")
    }
}
impl std::error::Error for NormalError {}

/// Float scalars Normal/LogNormal can produce. A single generic impl (like
/// the real crate's `F: Float` bound) keeps `Normal::new(0.0_f32, ..)`
/// unambiguous under inference.
pub trait Float: Copy {
    fn valid_param(self) -> bool;
    fn non_negative(self) -> bool;
    fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> Self;
    fn mul_add_to(self, scale: Self, offset: Self) -> Self;
    fn exp_(self) -> Self;
}

macro_rules! float_impl {
    ($f:ty, $tau:expr) => {
        impl Float for $f {
            fn valid_param(self) -> bool {
                self.is_finite()
            }
            fn non_negative(self) -> bool {
                self >= 0.0
            }
            fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> Self {
                // Box–Muller; one variate per call keeps the type stateless.
                let mut u1: $f = rng.gen();
                while u1 <= 0.0 {
                    u1 = rng.gen();
                }
                let u2: $f = rng.gen();
                (-2.0 * u1.ln()).sqrt() * ($tau * u2).cos()
            }
            fn mul_add_to(self, scale: Self, offset: Self) -> Self {
                offset + scale * self
            }
            fn exp_(self) -> Self {
                self.exp()
            }
        }
    };
}
float_impl!(f32, std::f32::consts::TAU);
float_impl!(f64, std::f64::consts::TAU);

/// Gaussian distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if mean.valid_param() && std_dev.valid_param() && std_dev.non_negative() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        F::standard_normal(rng).mul_add_to(self.std_dev, self.mean)
    }
}

/// Log-normal distribution (`exp` of a Gaussian).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F> {
    inner: Normal<F>,
}

impl<F: Float> LogNormal<F> {
    pub fn new(mu: F, sigma: F) -> Result<Self, NormalError> {
        Ok(LogNormal { inner: Normal::new(mu, sigma)? })
    }
}

impl<F: Float> Distribution<F> for LogNormal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        self.inner.sample(rng).exp_()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_roughly_right() {
        let n = Normal::new(2.0_f64, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let k = 20_000;
        let samples: Vec<f64> = (0..k).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / k as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let n = Normal::new(1.5_f32, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(n.sample(&mut rng), 1.5);
    }

    #[test]
    fn invalid_params_error() {
        assert!(Normal::new(0.0_f32, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn log_normal_is_positive() {
        let d = LogNormal::new(0.0_f64, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }
}
