//! Offline stand-in for `serde_json`: renders/parses real JSON text over the
//! serde stub's value tree. Covers `to_string`, `to_string_pretty`, and
//! `from_str`. Numbers round-trip bit-exactly (shortest-repr printing, raw
//! text kept until the target type parses it).

use serde::{Deserialize, Serialize};

pub use serde::{Error, Value};

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_stub_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_stub_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_stub_value(&v)
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_stub_value(&value)
}

// ---- rendering ---------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(s) => out.push_str(s),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => render_seq(items.iter(), out, indent, level, ('[', ']'), |item, out, lvl| {
            render(item, out, indent, lvl);
        }),
        Value::Object(fields) => {
            render_seq(fields.iter(), out, indent, level, ('{', '}'), |(k, val), out, lvl| {
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, lvl);
            })
        }
    }
}

fn render_seq<I: ExactSizeIterator>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut each: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        each(item, out, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(brackets.1);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!("unexpected character at offset {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(Error::custom(format!("invalid number at offset {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("non-utf8 number"))?;
        Ok(Value::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::custom("invalid \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("non-utf8 string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xbf99_999a] {
            let x = f32::from_bits(bits);
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), bits, "{x} -> {json} -> {back}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 x").is_err());
    }
}
