#!/usr/bin/env bash
# Builds a scratch copy of the workspace wired to the offline stub crates in
# ./stubs, so `cargo check` / `cargo test` work on machines with no network
# access to crates.io (this container's registry is unreachable, so the real
# rand/serde/etc. can never be fetched).
#
# Usage:
#   tools/offline-check/sync.sh            # (re)create the scratch workspace
#   cd tools/offline-check/ws && cargo test -q
#
# Caveats:
#   - The stub StdRng/Normal produce different (but deterministic) streams
#     than the real crates, so tests comparing identically-seeded runs pass
#     while any golden-value test of RNG output would not (none exist here).
#   - proptest-based test files are pruned (the stub proptest is empty).
set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
REPO="$(cd "$HERE/../.." && pwd)"
WS="$HERE/ws"

rm -rf "$WS"
mkdir -p "$WS"
cp "$REPO/Cargo.toml" "$REPO/rustfmt.toml" "$WS/"
cp -r "$REPO/crates" "$REPO/src" "$REPO/examples" "$REPO/tests" "$WS/"

# Point the external [workspace.dependencies] at the offline stubs.
sed -i \
  -e 's#^rand = .*#rand = { path = "../stubs/rand" }#' \
  -e 's#^rand_distr = .*#rand_distr = { path = "../stubs/rand_distr" }#' \
  -e 's#^serde = .*#serde = { path = "../stubs/serde", features = ["derive"] }#' \
  -e 's#^serde_json = .*#serde_json = { path = "../stubs/serde_json" }#' \
  -e 's#^proptest = .*#proptest = { path = "../stubs/proptest" }#' \
  -e 's#^criterion = .*#criterion = { path = "../stubs/criterion" }#' \
  "$WS/Cargo.toml"

# Prune proptest-based test files (see caveats above).
rm -f "$WS"/crates/*/tests/proptests.rs "$WS/tests/properties.rs"

echo "offline workspace ready: $WS"
echo "next: (cd $WS && cargo test -q)"
