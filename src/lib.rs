//! # doppelganger-repro — workspace umbrella crate
//!
//! This crate exists to host the workspace-level runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). The actual
//! library surface lives in the member crates:
//!
//! | crate | role |
//! |---|---|
//! | [`dg_nn`] | tensors, autodiff, layers, optimizers, WGAN-GP penalty |
//! | [`dg_data`] | the networked-time-series data model and encoder |
//! | [`dg_datasets`] | synthetic WWT / MBA / GCUT substitutes |
//! | [`doppelganger`] | the DoppelGANger model, trainer, retraining, DP-SGD |
//! | [`dg_baselines`] | HMM, AR, RNN and naive-GAN baselines |
//! | [`dg_metrics`] | fidelity metrics |
//! | [`dg_downstream`] | downstream classifiers and regressors |
//! | [`dg_privacy`] | membership inference + Renyi-DP accountant |
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the experiment
//! index.

pub use dg_baselines;
pub use dg_data;
pub use dg_datasets;
pub use dg_downstream;
pub use dg_metrics;
pub use dg_nn;
pub use dg_privacy;
pub use doppelganger;
