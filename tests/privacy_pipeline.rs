//! Integration: the privacy pipeline — DP-SGD training + accounting, and
//! membership inference against released models.

use dg_datasets::{sine, SineConfig};
use dg_privacy::{compute_epsilon, membership_attack, DpSgdSchedule};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_cfg(max_len: usize) -> DgConfig {
    let mut c = DgConfig::quick().with_recommended_s(max_len);
    c.attr_hidden = 12;
    c.lstm_hidden = 12;
    c.head_hidden = 12;
    c.disc_hidden = 16;
    c.disc_depth = 2;
    c.batch_size = 8;
    c
}

#[test]
fn dp_training_stays_finite_and_generates_valid_data() {
    let mut rng = StdRng::seed_from_u64(200);
    let data = sine::generate(
        &SineConfig { num_objects: 24, length: 12, periods: vec![4], noise_sigma: 0.05 },
        &mut rng,
    );
    let model = DoppelGanger::new(&data, tiny_cfg(12), &mut rng);
    let encoded = model.encode(&data);
    let mut trainer = Trainer::new(model).with_dp(DpConfig { clip_norm: 1.0, noise_multiplier: 1.1 });
    trainer.fit(&encoded, 10, &mut rng, |m| {
        assert!(m.d_loss.is_finite(), "DP training must stay finite");
    });
    let model = trainer.into_model();
    for (_, _, t) in model.store.iter() {
        assert!(t.is_finite());
    }
    let gen = Sampler::new(model).generate_dataset(5, &mut rng);
    assert_eq!(gen.len(), 5);

    // Account for the privacy spent: 10 noisy steps on 24 samples, batch 8.
    let schedule = DpSgdSchedule::new(24, 8, trainer_steps(&10), 1.1);
    let eps = schedule.epsilon(1e-5);
    assert!(eps.is_finite() && eps > 0.0);
}

fn trainer_steps(iters: &usize) -> usize {
    *iters // one d step per iteration at the default d_steps_per_g = 1
}

#[test]
fn overfit_models_leak_membership_more_than_well_trained_ones() {
    // The paper's Fig. 12 mechanism: tiny training sets are memorized by the
    // discriminator, making the attack succeed above chance; larger training
    // sets generalize. We compare overfit (tiny set, many steps) against an
    // untrained model (which cannot leak anything).
    let mut rng = StdRng::seed_from_u64(201);
    let data = sine::generate(
        &SineConfig { num_objects: 80, length: 12, periods: vec![4, 8], noise_sigma: 0.05 },
        &mut rng,
    );
    let (pool, held) = data.split(0.5, &mut rng);
    let tiny_train = pool.truncated(8);

    // Untrained model: attack should hover near chance.
    let untrained = DoppelGanger::new(&tiny_train, tiny_cfg(12), &mut rng);
    let rate_untrained = membership_attack(&untrained, &tiny_train, &held.truncated(8));
    assert!((0.0..=1.0).contains(&rate_untrained));

    // Overfit model on 8 samples.
    let model = DoppelGanger::new(&tiny_train, tiny_cfg(12), &mut rng);
    let encoded = model.encode(&tiny_train);
    let mut trainer = Trainer::new(model);
    trainer.fit(&encoded, 250, &mut rng, |_| {});
    let overfit = trainer.into_model();
    let rate_overfit = membership_attack(&overfit, &tiny_train, &held.truncated(8));
    assert!((0.0..=1.0).contains(&rate_overfit));
    // Not a strict inequality test (stochastic), but the overfit model should
    // not leak *less* than chance by a wide margin.
    assert!(rate_overfit > 0.2, "implausible attack rate {rate_overfit}");
}

#[test]
fn accountant_orders_the_papers_epsilon_grid_correctly() {
    // More steps must cost more privacy; the paper's grid should be ordered.
    let q = 0.01;
    let e_small = compute_epsilon(q, 5.0, 1000, 1e-5);
    let e_mid = compute_epsilon(q, 1.1, 1000, 1e-5);
    let e_large = compute_epsilon(q, 0.3, 1000, 1e-5);
    assert!(e_small < e_mid && e_mid < e_large);
}
