//! End-to-end integration: dataset -> encode -> train -> release -> restore
//! -> generate -> measure, across crates.

use dg_datasets::{sine, SineConfig};
use dg_metrics::{attribute_histogram, jsd_counts};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_cfg(max_len: usize) -> DgConfig {
    let mut c = DgConfig::quick().with_recommended_s(max_len);
    c.attr_hidden = 16;
    c.lstm_hidden = 16;
    c.head_hidden = 16;
    c.disc_hidden = 24;
    c.disc_depth = 2;
    c.batch_size = 16;
    c
}

#[test]
fn full_pipeline_produces_schema_valid_data_with_learned_attributes() {
    let mut rng = StdRng::seed_from_u64(100);
    let data_cfg = SineConfig { num_objects: 60, length: 20, periods: vec![5, 10], noise_sigma: 0.05 };
    let real = sine::generate(&data_cfg, &mut rng);

    let model = DoppelGanger::new(&real, tiny_cfg(20), &mut rng);
    let encoded = model.encode(&real);
    let mut trainer = Trainer::new(model);
    let mut metrics_seen = 0;
    trainer.fit(&encoded, 120, &mut rng, |m| {
        assert!(m.d_loss.is_finite() && m.g_loss.is_finite());
        metrics_seen += 1;
    });
    assert_eq!(metrics_seen, 120);
    let model = trainer.into_model();

    // Dataset::new re-validates every generated object against the schema.
    let synthetic = Sampler::new(model).generate_dataset(120, &mut rng);
    assert_eq!(synthetic.len(), 120);

    // After some training the attribute marginal should be closer to the
    // real one than to a degenerate single-class distribution.
    let real_h = attribute_histogram(&real, 0);
    let syn_h = attribute_histogram(&synthetic, 0);
    let jsd_real = jsd_counts(&real_h, &syn_h);
    assert!(jsd_real < std::f64::consts::LN_2 * 0.9, "attribute JSD too high: {jsd_real}");
    // Both classes should appear (no categorical mode collapse at this size).
    assert!(syn_h.iter().all(|&c| c > 0), "class collapsed: {syn_h:?}");
}

#[test]
fn released_model_parameters_roundtrip_through_json() {
    let mut rng = StdRng::seed_from_u64(101);
    let data_cfg = SineConfig { num_objects: 30, length: 12, periods: vec![4], noise_sigma: 0.02 };
    let real = sine::generate(&data_cfg, &mut rng);
    let model = DoppelGanger::new(&real, tiny_cfg(12), &mut rng);
    let encoded = model.encode(&real);
    let mut trainer = Trainer::new(model);
    trainer.fit(&encoded, 20, &mut rng, |_| {});
    let model = trainer.into_model();

    let json = model.to_json();
    let restored = DoppelGanger::from_json(&json).expect("valid release");
    // Identical RNG stream => identical generation: the consumer gets exactly
    // the distribution the holder trained.
    let mut r1 = StdRng::seed_from_u64(5);
    let mut r2 = StdRng::seed_from_u64(5);
    let (a1, m1, f1) = Sampler::new(model).generate_encoded(8, &mut r1);
    let (a2, m2, f2) = Sampler::new(restored).generate_encoded(8, &mut r2);
    assert_eq!(a1, a2);
    assert_eq!(m1, m2);
    assert_eq!(f1, f2);
}

#[test]
fn training_moves_generated_distribution_toward_real() {
    // Compare the per-sample mean distribution before and after training:
    // training should reduce the distance to the real distribution.
    use dg_metrics::wasserstein1;
    let mut rng = StdRng::seed_from_u64(102);
    let data_cfg = SineConfig { num_objects: 60, length: 16, periods: vec![4], noise_sigma: 0.05 };
    let real = sine::generate(&data_cfg, &mut rng);
    let sample_means = |d: &dg_data::Dataset| -> Vec<f64> {
        d.objects
            .iter()
            .filter(|o| !o.is_empty())
            .map(|o| {
                let s = o.feature_series(0);
                s.iter().map(|v| v.abs()).sum::<f64>() / s.len() as f64
            })
            .collect()
    };
    let real_means = sample_means(&real);

    let model = DoppelGanger::new(&real, tiny_cfg(16), &mut rng);
    let encoded = model.encode(&real);
    let mut trainer = Trainer::new(model);
    let mut g0 = StdRng::seed_from_u64(9);
    let before = Sampler::new(trainer.model.clone()).generate_dataset(100, &mut g0);
    let w_before = wasserstein1(&real_means, &sample_means(&before));
    trainer.fit(&encoded, 250, &mut rng, |_| {});
    let mut g1 = StdRng::seed_from_u64(9);
    let after = Sampler::new(trainer.model.clone()).generate_dataset(100, &mut g1);
    let w_after = wasserstein1(&real_means, &sample_means(&after));
    assert!(
        w_after < w_before * 1.05,
        "training should not push the envelope distribution away: {w_before} -> {w_after}"
    );
}
