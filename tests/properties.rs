//! Cross-crate property-based tests (proptest): encoder round-trips,
//! metric axioms, flag/length invariants, autodiff-vs-finite-differences on
//! random graphs.

use dg_data::{
    Dataset, Encoder, EncoderConfig, FieldKind, FieldSpec, Range, Schema, TimeSeriesObject, Value,
};
use dg_metrics::{jsd_counts, ranks, spearman, wasserstein1};
use dg_nn::graph::Graph;
use dg_nn::tensor::Tensor;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Encoder round-trip
// ---------------------------------------------------------------------------

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let max_len = 6usize;
    let obj = (0usize..3, prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 2), 1..=max_len))
        .prop_map(|(cat, rows)| TimeSeriesObject {
            attributes: vec![Value::Cat(cat)],
            records: rows.into_iter().map(|r| r.into_iter().map(Value::Cont).collect()).collect(),
        });
    prop::collection::vec(obj, 1..8).prop_map(move |objects| {
        let schema = Schema::new(
            vec![FieldSpec::new("k", FieldKind::categorical(["a", "b", "c"]))],
            vec![
                FieldSpec::new("x", FieldKind::continuous(-50.0, 50.0)),
                FieldSpec::new("y", FieldKind::continuous(-50.0, 50.0)),
            ],
            max_len,
        );
        Dataset::new(schema, objects)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_roundtrips_all_configs(data in arb_dataset(), auto in any::<bool>(), sym in any::<bool>()) {
        let cfg = EncoderConfig {
            auto_normalize: auto,
            range: if sym { Range::SymmetricOne } else { Range::ZeroOne },
        };
        let enc = Encoder::fit(&data, cfg);
        let e = enc.encode(&data);
        let back = enc.decode(&e.attributes, &e.minmax, &e.features);
        prop_assert_eq!(back.len(), data.len());
        for (orig, dec) in data.objects.iter().zip(&back) {
            prop_assert_eq!(&orig.attributes, &dec.attributes);
            prop_assert_eq!(orig.len(), dec.len());
            for (r0, r1) in orig.records.iter().zip(&dec.records) {
                for (v0, v1) in r0.iter().zip(r1) {
                    let (a, b) = (v0.cont(), v1.cont());
                    // f32 quantization across a 100-unit range.
                    prop_assert!((a - b).abs() < 0.05, "{} vs {}", a, b);
                }
            }
        }
    }

    #[test]
    fn encoded_flags_decode_to_true_lengths(data in arb_dataset()) {
        let enc = Encoder::fit(&data, EncoderConfig::default());
        let e = enc.encode(&data);
        prop_assert_eq!(&e.lengths, &data.lengths());
        // Steps past the length are fully zero.
        let sw = e.step_width;
        for (i, &len) in e.lengths.iter().enumerate() {
            let row = e.features.row_slice(i);
            for t in len..e.max_len {
                prop_assert!(row[t * sw..(t + 1) * sw].iter().all(|&v| v == 0.0));
            }
        }
    }

    // -----------------------------------------------------------------------
    // Metric axioms
    // -----------------------------------------------------------------------

    #[test]
    fn w1_is_a_metric(a in prop::collection::vec(-100.0f64..100.0, 2..40),
                      b in prop::collection::vec(-100.0f64..100.0, 2..40),
                      c in prop::collection::vec(-100.0f64..100.0, 2..40)) {
        let ab = wasserstein1(&a, &b);
        let ba = wasserstein1(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(wasserstein1(&a, &a) < 1e-9, "identity");
        let ac = wasserstein1(&a, &c);
        let cb = wasserstein1(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-6, "triangle: {} > {} + {}", ab, ac, cb);
    }

    #[test]
    fn jsd_is_bounded_and_symmetric(a in prop::collection::vec(0usize..1000, 2..12),
                                    b in prop::collection::vec(0usize..1000, 2..12)) {
        let n = a.len().min(b.len());
        let mut a = a[..n].to_vec();
        let mut b = b[..n].to_vec();
        // Guarantee positive totals.
        a[0] += 1;
        b[0] += 1;
        let d1 = jsd_counts(&a, &b);
        let d2 = jsd_counts(&b, &a);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=std::f64::consts::LN_2 + 1e-12).contains(&d1));
    }

    #[test]
    fn spearman_is_bounded_and_antisymmetric(xs in prop::collection::vec(-100.0f64..100.0, 3..20)) {
        let ys: Vec<f64> = xs.iter().map(|v| v * 2.0 + 1.0).collect();
        prop_assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9, "monotone map");
        let neg: Vec<f64> = xs.iter().map(|v| -v).collect();
        let rho = spearman(&xs, &neg);
        // Ties (duplicate values) can soften the -1; always within bounds.
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
    }

    #[test]
    fn ranks_are_a_permutation_mean(xs in prop::collection::vec(-1000.0f64..1000.0, 1..30)) {
        let r = ranks(&xs);
        let sum: f64 = r.iter().sum();
        let n = xs.len() as f64;
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6, "rank sum invariant");
    }

    // -----------------------------------------------------------------------
    // Autodiff vs finite differences on random MLP-shaped graphs
    // -----------------------------------------------------------------------

    #[test]
    fn autodiff_matches_finite_differences(seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::randn(2, 3, 0.7, &mut rng);
        let w = Tensor::randn(3, 3, 0.7, &mut rng);

        let build = |g: &mut Graph, x: dg_nn::graph::Var| {
            let wv = g.constant(w.clone());
            let h = g.matmul(x, wv);
            let h = g.tanh(h);
            let h2 = g.mul(h, x);
            let s = g.sum_rows(h2);
            let sm = g.softmax(x);
            let joined = g.concat_cols(&[s, sm]);
            let sq = g.square(joined);
            g.mean_all(sq)
        };

        let mut g = Graph::new();
        let xv = g.input(x0.clone());
        let loss = build(&mut g, xv);
        g.backward(loss);
        let analytic = g.grad(xv).expect("grad").clone();

        let eps = 1e-2_f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.as_mut_slice()[i] += eps;
            let mut gp = Graph::new();
            let v = gp.input(xp);
            let lp = build(&mut gp, v);
            let fp = gp.value(lp).get(0, 0);

            let mut xm = x0.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut gm = Graph::new();
            let v = gm.input(xm);
            let lm = build(&mut gm, v);
            let fm = gm.value(lm).get(0, 0);

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            prop_assert!((a - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "grad mismatch at {}: {} vs {}", i, a, numeric);
        }
    }
}
