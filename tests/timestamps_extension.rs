//! Integration: the paper's unequal-timestamps extension end-to-end —
//! irregular records become an inter-arrival feature, DoppelGANger trains on
//! and generates it like any other feature, and generated series decode back
//! into strictly-increasing timestamps.

use dg_data::{
    from_interarrival, to_interarrival, Dataset, FieldKind, FieldSpec, Schema, TimestampedObject, Value,
};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn irregular_objects(rng: &mut StdRng, n: usize) -> (Schema, Vec<TimestampedObject>) {
    let schema = Schema::new(
        vec![FieldSpec::new("burst class", FieldKind::categorical(["slow", "fast"]))],
        vec![FieldSpec::new("bytes", FieldKind::continuous(0.0, 100.0))],
        16,
    );
    let objects = (0..n)
        .map(|i| {
            let fast = i % 2 == 1;
            let mean_gap = if fast { 0.2 } else { 2.0 };
            let mut t = 0.0;
            let records = (0..12)
                .map(|_| {
                    t += mean_gap * (0.5 + rng.gen_range(0.0..1.0));
                    (t, vec![Value::Cont(rng.gen_range(1.0..50.0))])
                })
                .collect();
            TimestampedObject { attributes: vec![Value::Cat(fast as usize)], records }
        })
        .collect();
    (schema, objects)
}

#[test]
fn irregular_timestamps_flow_through_the_model() {
    let mut rng = StdRng::seed_from_u64(77);
    let (schema, objs) = irregular_objects(&mut rng, 40);
    let data: Dataset = to_interarrival(&schema, &objs, 1.0);
    assert_eq!(data.schema.num_features(), 2, "delta feature + original feature");

    // Train a tiny model on the transformed dataset.
    let mut cfg = DgConfig::quick().with_recommended_s(data.schema.max_len);
    cfg.attr_hidden = 12;
    cfg.lstm_hidden = 12;
    cfg.head_hidden = 12;
    cfg.disc_hidden = 16;
    cfg.disc_depth = 2;
    cfg.batch_size = 8;
    let model = DoppelGanger::new(&data, cfg, &mut rng);
    let encoded = model.encode(&data);
    let mut trainer = Trainer::new(model);
    trainer.fit(&encoded, 60, &mut rng, |_| {});
    let model = trainer.into_model();

    // Generate and decode timestamps back out.
    let gen = Sampler::new(model).generate_dataset(30, &mut rng);
    let stamped = from_interarrival(&gen, 0.0, 1e-3);
    assert_eq!(stamped.len(), 30);
    for o in &stamped {
        o.validate().expect("generated timestamps must be strictly increasing");
        for (t, feats) in &o.records {
            assert!(t.is_finite() && *t >= 0.0);
            assert!(feats[0].cont().is_finite());
        }
    }
}

#[test]
fn fast_class_has_smaller_real_interarrivals() {
    // Sanity on the scenario itself: the attribute determines the gap scale,
    // so the transform preserves a learnable feature-attribute correlation.
    let mut rng = StdRng::seed_from_u64(78);
    let (schema, objs) = irregular_objects(&mut rng, 100);
    let data = to_interarrival(&schema, &objs, 1.0);
    let mean_gap = |class: usize| {
        let f = data.filter_by_attribute(0, class);
        let mut total = 0.0;
        let mut n = 0;
        for o in &f.objects {
            for v in o.feature_series(0).iter().skip(1) {
                total += v;
                n += 1;
            }
        }
        total / n as f64
    };
    assert!(mean_gap(0) > 3.0 * mean_gap(1), "slow {} vs fast {}", mean_gap(0), mean_gap(1));
}
