//! Integration: every generative model (DoppelGANger + four baselines)
//! trains on every dataset family and produces schema-valid synthetic data
//! through the shared interface.

use dg_baselines::{
    ArConfig, ArModel, GenerativeModel, HmmConfig, HmmModel, NaiveGanConfig, NaiveGanModel, RnnConfig,
    RnnModel,
};
use dg_data::Dataset;
use dg_datasets::{gcut, mba, sine, GcutConfig, MbaConfig, SineConfig};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_models(data: &Dataset, rng: &mut StdRng) -> Vec<Box<dyn GenerativeModel>> {
    let mut dg_cfg = DgConfig::quick().with_recommended_s(data.schema.max_len);
    dg_cfg.attr_hidden = 12;
    dg_cfg.lstm_hidden = 12;
    dg_cfg.head_hidden = 12;
    dg_cfg.disc_hidden = 16;
    dg_cfg.disc_depth = 2;
    dg_cfg.batch_size = 8;
    let model = DoppelGanger::new(data, dg_cfg, rng);
    let encoded = model.encode(data);
    let mut trainer = Trainer::new(model);
    trainer.fit(&encoded, 8, rng, |_| {});

    struct Dg(Sampler);
    impl GenerativeModel for Dg {
        fn name(&self) -> &'static str {
            "DoppelGANger"
        }
        fn generate_objects(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<dg_data::TimeSeriesObject> {
            self.0.generate(n, rng)
        }
    }

    vec![
        Box::new(Dg(Sampler::new(trainer.into_model()))),
        Box::new(ArModel::fit(
            data,
            ArConfig { train_steps: 20, hidden: 16, depth: 2, ..ArConfig::default() },
            rng,
        )),
        Box::new(RnnModel::fit(data, RnnConfig { hidden: 12, train_steps: 8, batch: 8, lr: 1e-3 }, rng)),
        Box::new(HmmModel::fit(data, HmmConfig { num_states: 3, em_iterations: 2, var_floor: 1e-4 }, rng)),
        Box::new(NaiveGanModel::fit(
            data,
            NaiveGanConfig {
                train_steps: 8,
                gen_hidden: 16,
                gen_depth: 2,
                disc_hidden: 16,
                disc_depth: 2,
                batch: 8,
                ..NaiveGanConfig::default()
            },
            rng,
        )),
    ]
}

fn check_dataset_family(name: &str, data: Dataset, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let models = tiny_models(&data, &mut rng);
    assert_eq!(models.len(), 5, "{name}");
    for m in &models {
        // generate_dataset validates every object against the schema.
        let gen = m.generate_dataset(&data.schema, 6, &mut rng);
        assert_eq!(gen.len(), 6, "{name}/{}", m.name());
        for o in &gen.objects {
            assert!(o.len() <= data.schema.max_len, "{name}/{}: length overflow", m.name());
            for r in &o.records {
                for (v, spec) in r.iter().zip(&data.schema.features) {
                    if !spec.kind.is_categorical() {
                        assert!(v.cont().is_finite(), "{name}/{}: non-finite feature", m.name());
                    }
                }
            }
        }
    }
}

#[test]
fn all_models_handle_the_sine_family() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = sine::generate(
        &SineConfig { num_objects: 20, length: 12, periods: vec![4, 6], noise_sigma: 0.05 },
        &mut rng,
    );
    check_dataset_family("sine", data, 2);
}

#[test]
fn all_models_handle_variable_length_gcut() {
    let mut rng = StdRng::seed_from_u64(3);
    let data = gcut::generate(&GcutConfig { num_objects: 30, max_len: 20, num_features: 3 }, &mut rng);
    check_dataset_family("gcut", data, 4);
}

#[test]
fn all_models_handle_multifeature_mba() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = mba::generate(&MbaConfig { num_objects: 30, length: 16, ..MbaConfig::default() }, &mut rng);
    check_dataset_family("mba", data, 6);
}
