//! The dataset abstraction of §3: objects `O_i = (A_i, R_i)`.

use crate::schema::{FieldKind, Schema};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single attribute or per-record feature value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Index into the field's category list.
    Cat(usize),
    /// Raw (unnormalized) numeric value.
    Cont(f64),
}

impl Value {
    /// The category index; panics for continuous values.
    pub fn cat(&self) -> usize {
        match self {
            Value::Cat(c) => *c,
            Value::Cont(_) => panic!("expected a categorical value"),
        }
    }

    /// The numeric value; panics for categorical values.
    pub fn cont(&self) -> f64 {
        match self {
            Value::Cont(v) => *v,
            Value::Cat(_) => panic!("expected a continuous value"),
        }
    }
}

/// One object: attributes plus a variable-length time series of records.
///
/// Timestamps are implicit (records are equally spaced), matching the
/// paper's treatment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesObject {
    /// Attribute values `A_1..A_m` in schema order.
    pub attributes: Vec<Value>,
    /// Records `R_1..R_T`, each holding `K` feature values in schema order.
    pub records: Vec<Vec<Value>>,
}

impl TimeSeriesObject {
    /// Series length `T^i`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True for an empty series.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Extracts one continuous feature as an `f64` series.
    pub fn feature_series(&self, feature_idx: usize) -> Vec<f64> {
        self.records.iter().map(|r| r[feature_idx].cont()).collect()
    }
}

/// A collection of objects plus their schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Shared schema.
    pub schema: Schema,
    /// Objects.
    pub objects: Vec<TimeSeriesObject>,
}

impl Dataset {
    /// Creates a dataset, validating every object against the schema.
    ///
    /// # Panics
    /// Panics when an object violates the schema (wrong arity, category out
    /// of range, series longer than `max_len`, kind mismatch).
    pub fn new(schema: Schema, objects: Vec<TimeSeriesObject>) -> Self {
        for (i, o) in objects.iter().enumerate() {
            validate_object(&schema, o).unwrap_or_else(|e| panic!("object {i}: {e}"));
        }
        Dataset { schema, objects }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the dataset holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Splits into two datasets of `frac` / `1 - frac` of the objects after a
    /// seeded shuffle (the paper's A / A' split, Fig. 10).
    pub fn split<R: Rng + ?Sized>(&self, frac: f64, rng: &mut R) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&frac), "split fraction out of range");
        let mut idx: Vec<usize> = (0..self.objects.len()).collect();
        idx.shuffle(rng);
        let cut = ((self.objects.len() as f64) * frac).round() as usize;
        let first = idx[..cut].iter().map(|&i| self.objects[i].clone()).collect();
        let second = idx[cut..].iter().map(|&i| self.objects[i].clone()).collect();
        (
            Dataset { schema: self.schema.clone(), objects: first },
            Dataset { schema: self.schema.clone(), objects: second },
        )
    }

    /// Draws `n` objects uniformly with replacement (bootstrap sample).
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let objects = (0..n).map(|_| self.objects[rng.gen_range(0..self.objects.len())].clone()).collect();
        Dataset { schema: self.schema.clone(), objects }
    }

    /// Keeps the first `n` objects (deterministic subset).
    pub fn truncated(&self, n: usize) -> Dataset {
        Dataset { schema: self.schema.clone(), objects: self.objects.iter().take(n).cloned().collect() }
    }

    /// Series lengths of all objects.
    pub fn lengths(&self) -> Vec<usize> {
        self.objects.iter().map(|o| o.len()).collect()
    }

    /// Global `(min, max)` of one continuous feature across all records.
    pub fn feature_range(&self, feature_idx: usize) -> (f64, f64) {
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        for o in &self.objects {
            for r in &o.records {
                let v = r[feature_idx].cont();
                mn = mn.min(v);
                mx = mx.max(v);
            }
        }
        (mn, mx)
    }

    /// Empirical distribution of one categorical attribute (counts per
    /// category).
    pub fn attribute_counts(&self, attr_idx: usize) -> Vec<usize> {
        let k = self.schema.attributes[attr_idx].kind.num_categories();
        let mut counts = vec![0; k];
        for o in &self.objects {
            counts[o.attributes[attr_idx].cat()] += 1;
        }
        counts
    }

    /// Objects whose categorical attribute `attr_idx` equals `category`.
    pub fn filter_by_attribute(&self, attr_idx: usize, category: usize) -> Dataset {
        let objects = self
            .objects
            .iter()
            .filter(|o| matches!(o.attributes[attr_idx], Value::Cat(c) if c == category))
            .cloned()
            .collect();
        Dataset { schema: self.schema.clone(), objects }
    }
}

/// Checks an object against a schema.
pub fn validate_object(schema: &Schema, o: &TimeSeriesObject) -> Result<(), String> {
    if o.attributes.len() != schema.num_attributes() {
        return Err(format!("expected {} attributes, got {}", schema.num_attributes(), o.attributes.len()));
    }
    for (v, spec) in o.attributes.iter().zip(&schema.attributes) {
        validate_value(v, &spec.kind).map_err(|e| format!("attribute '{}': {e}", spec.name))?;
    }
    if o.records.len() > schema.max_len {
        return Err(format!("series length {} exceeds max_len {}", o.records.len(), schema.max_len));
    }
    for (t, r) in o.records.iter().enumerate() {
        if r.len() != schema.num_features() {
            return Err(format!("record {t}: expected {} features, got {}", schema.num_features(), r.len()));
        }
        for (v, spec) in r.iter().zip(&schema.features) {
            validate_value(v, &spec.kind).map_err(|e| format!("record {t}, feature '{}': {e}", spec.name))?;
        }
    }
    Ok(())
}

fn validate_value(v: &Value, kind: &FieldKind) -> Result<(), String> {
    match (v, kind) {
        (Value::Cat(c), FieldKind::Categorical { categories }) => {
            if *c < categories.len() {
                Ok(())
            } else {
                Err(format!("category index {c} out of range {}", categories.len()))
            }
        }
        (Value::Cont(x), FieldKind::Continuous { .. }) => {
            if x.is_finite() {
                Ok(())
            } else {
                Err("non-finite continuous value".into())
            }
        }
        (Value::Cat(_), FieldKind::Continuous { .. }) => Err("categorical value for continuous field".into()),
        (Value::Cont(_), FieldKind::Categorical { .. }) => {
            Err("continuous value for categorical field".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo() -> Dataset {
        let schema = Schema::new(
            vec![FieldSpec::new("kind", FieldKind::categorical(["a", "b"]))],
            vec![FieldSpec::new("x", FieldKind::continuous(0.0, 100.0))],
            8,
        );
        let objects = (0..10)
            .map(|i| TimeSeriesObject {
                attributes: vec![Value::Cat(i % 2)],
                records: (0..(i % 8) + 1).map(|t| vec![Value::Cont(t as f64 + i as f64)]).collect(),
            })
            .collect();
        Dataset::new(schema, objects)
    }

    #[test]
    fn validation_accepts_demo() {
        let d = demo();
        assert_eq!(d.len(), 10);
    }

    #[test]
    #[should_panic(expected = "category index")]
    fn validation_rejects_bad_category() {
        let mut d = demo();
        d.objects[0].attributes[0] = Value::Cat(7);
        let _ = Dataset::new(d.schema, d.objects);
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn validation_rejects_long_series() {
        let mut d = demo();
        d.objects[0].records = (0..9).map(|t| vec![Value::Cont(t as f64)]).collect();
        let _ = Dataset::new(d.schema, d.objects);
    }

    #[test]
    fn split_is_a_partition() {
        let d = demo();
        let mut rng = StdRng::seed_from_u64(9);
        let (a, b) = d.split(0.5, &mut rng);
        assert_eq!(a.len() + b.len(), d.len());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn attribute_counts_and_filter() {
        let d = demo();
        let counts = d.attribute_counts(0);
        assert_eq!(counts, vec![5, 5]);
        let f = d.filter_by_attribute(0, 1);
        assert_eq!(f.len(), 5);
        assert!(f.objects.iter().all(|o| o.attributes[0] == Value::Cat(1)));
    }

    #[test]
    fn feature_range_covers_all_records() {
        let d = demo();
        let (mn, mx) = d.feature_range(0);
        assert_eq!(mn, 0.0);
        // Object 9 has records 9..=16? i=9 -> (9%8)+1=2 records: 9,10. Max over all:
        // object 7 has 8 records 7..14 -> max 14? object 9 max 10. So 14.
        assert_eq!(mx, 14.0);
    }

    #[test]
    fn sample_with_replacement_has_requested_size() {
        let d = demo();
        let mut rng = StdRng::seed_from_u64(1);
        let s = d.sample(25, &mut rng);
        assert_eq!(s.len(), 25);
    }

    #[test]
    fn feature_series_extracts_column() {
        let d = demo();
        let s = d.objects[3].feature_series(0);
        assert_eq!(s, vec![3.0, 4.0, 5.0, 6.0]);
    }
}
