//! Encoding between [`Dataset`]s and the flat tensors GANs train on.
//!
//! The encoder implements three pieces of the paper's design:
//!
//! * one-hot encoding of categorical fields and min-max scaling of
//!   continuous fields (the "data schema" input, §3.1);
//! * **auto-normalization** (§4.1.3): each continuous feature is normalized
//!   *per sample*, and the per-sample `(max+min)/2` and `(max-min)/2` are
//!   appended as two "fake" attributes so the min/max generator can learn
//!   realistic dynamic ranges — the fix for the wide-dynamic-range mode
//!   collapse the paper documents;
//! * **generation flags** (§4.1.1): every encoded step carries a `[p1, p2]`
//!   flag pair; `[1,0]` means the series continues, `[0,1]` marks the final
//!   record, and fully padded steps are `[0,0]`.

use crate::object::{Dataset, TimeSeriesObject, Value};
use crate::schema::{FieldKind, Schema};
use dg_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Target range for scaled continuous values (determines whether the
/// generator's continuous outputs use `sigmoid` or `tanh`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Range {
    /// Scale to `[0, 1]` (pair with sigmoid outputs).
    ZeroOne,
    /// Scale to `[-1, 1]` (pair with tanh outputs).
    SymmetricOne,
}

impl Range {
    /// Scales `v` from `[mn, mx]` into the range.
    pub fn scale(self, v: f64, mn: f64, mx: f64) -> f32 {
        let span = (mx - mn).max(f64::EPSILON);
        let z = ((v - mn) / span).clamp(0.0, 1.0);
        match self {
            Range::ZeroOne => z as f32,
            Range::SymmetricOne => (2.0 * z - 1.0) as f32,
        }
    }

    /// Inverse of [`Range::scale`].
    pub fn unscale(self, v: f32, mn: f64, mx: f64) -> f64 {
        let z = match self {
            Range::ZeroOne => v as f64,
            Range::SymmetricOne => (v as f64 + 1.0) / 2.0,
        }
        .clamp(0.0, 1.0);
        mn + z * (mx - mn)
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Enables per-sample auto-normalization + min/max fake attributes
    /// (§4.1.3). When disabled, features are scaled by their global range —
    /// the configuration shown to mode-collapse in Fig. 5 (left).
    pub auto_normalize: bool,
    /// Target range for continuous values.
    pub range: Range,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig { auto_normalize: true, range: Range::SymmetricOne }
    }
}

/// Per-sample normalization floor: half-ranges below this are clamped so
/// constant series stay invertible.
const MIN_HALF_RANGE: f64 = 1e-6;

/// A fitted encoder holding the global scaling constants needed to invert
/// generated tensors back into [`TimeSeriesObject`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Encoder {
    /// Configuration used at fit time.
    pub config: EncoderConfig,
    /// Schema of the encoded dataset.
    pub schema: Schema,
    /// Global `(min, max)` per feature index (entries for categorical
    /// features are `(0, 1)` placeholders).
    feat_ranges: Vec<(f64, f64)>,
    /// Global `(min, max)` per attribute index (placeholders for categorical
    /// attributes).
    attr_ranges: Vec<(f64, f64)>,
}

/// A dataset encoded into flat tensors, ready for GAN training.
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    /// `N x attr_width` encoded real attributes.
    pub attributes: Tensor,
    /// `N x minmax_width` encoded per-sample min/max fake attributes
    /// (zero-width when auto-normalization is off).
    pub minmax: Tensor,
    /// `N x (max_len * step_width)` encoded features + generation flags,
    /// zero-padded past each sample's length.
    pub features: Tensor,
    /// True series lengths.
    pub lengths: Vec<usize>,
    /// Width of the encoded attribute block.
    pub attr_width: usize,
    /// Width of the min/max block.
    pub minmax_width: usize,
    /// Width of one encoded step (features + 2 flag slots).
    pub step_width: usize,
    /// Maximum (padded) length.
    pub max_len: usize,
}

impl EncodedDataset {
    /// Number of encoded samples.
    pub fn num_samples(&self) -> usize {
        self.attributes.rows()
    }

    /// Gathers rows into `(attributes, minmax, features)` batch tensors.
    pub fn gather(&self, idx: &[usize]) -> (Tensor, Tensor, Tensor) {
        (self.attributes.gather_rows(idx), self.minmax.gather_rows(idx), self.features.gather_rows(idx))
    }

    /// Concatenates `[attributes | minmax | features]` for the given rows —
    /// the input layout of the primary discriminator.
    pub fn full_rows(&self, idx: &[usize]) -> Tensor {
        let (a, m, f) = self.gather(idx);
        Tensor::concat_cols(&[&a, &m, &f])
    }

    /// Width of a full discriminator input row.
    pub fn full_width(&self) -> usize {
        self.attr_width + self.minmax_width + self.max_len * self.step_width
    }
}

impl Encoder {
    /// Fits scaling constants on a dataset.
    pub fn fit(dataset: &Dataset, config: EncoderConfig) -> Self {
        let schema = dataset.schema.clone();
        let feat_ranges = schema
            .features
            .iter()
            .enumerate()
            .map(|(j, spec)| match &spec.kind {
                FieldKind::Categorical { .. } => (0.0, 1.0),
                FieldKind::Continuous { min, max } => {
                    if dataset.is_empty() {
                        (*min, *max)
                    } else {
                        let (mn, mx) = dataset.feature_range(j);
                        if mn < mx {
                            (mn, mx)
                        } else {
                            (*min, *max)
                        }
                    }
                }
            })
            .collect();
        let attr_ranges = schema
            .attributes
            .iter()
            .enumerate()
            .map(|(j, spec)| match &spec.kind {
                FieldKind::Categorical { .. } => (0.0, 1.0),
                FieldKind::Continuous { min, max } => {
                    let mut mn = f64::INFINITY;
                    let mut mx = f64::NEG_INFINITY;
                    for o in &dataset.objects {
                        let v = o.attributes[j].cont();
                        mn = mn.min(v);
                        mx = mx.max(v);
                    }
                    if mn < mx {
                        (mn, mx)
                    } else {
                        (*min, *max)
                    }
                }
            })
            .collect();
        Encoder { config, schema, feat_ranges, attr_ranges }
    }

    /// Width of the encoded attribute block.
    pub fn attr_width(&self) -> usize {
        self.schema.attr_encoded_width()
    }

    /// Width of the min/max fake-attribute block (2 per continuous feature).
    pub fn minmax_width(&self) -> usize {
        if self.config.auto_normalize {
            2 * self.schema.num_continuous_features()
        } else {
            0
        }
    }

    /// Width of one encoded step, including the two generation-flag slots.
    pub fn step_width(&self) -> usize {
        self.schema.feature_encoded_width() + 2
    }

    /// Padded series length.
    pub fn max_len(&self) -> usize {
        self.schema.max_len
    }

    /// Index ranges `(start, end)` of each categorical attribute's one-hot
    /// block inside the encoded attribute vector.
    pub fn attr_blocks(&self) -> Vec<(usize, usize)> {
        let mut blocks = Vec::new();
        let mut off = 0;
        for spec in &self.schema.attributes {
            let w = spec.kind.encoded_width();
            blocks.push((off, off + w));
            off += w;
        }
        blocks
    }

    /// Encodes a dataset. Objects must match the fitted schema.
    pub fn encode(&self, dataset: &Dataset) -> EncodedDataset {
        assert_eq!(dataset.schema, self.schema, "dataset schema differs from fitted schema");
        let n = dataset.len();
        let aw = self.attr_width();
        let mw = self.minmax_width();
        let sw = self.step_width();
        let t = self.max_len();
        let mut attributes = Tensor::zeros(n, aw.max(1));
        let mut minmax = Tensor::zeros(n, mw.max(1));
        let mut features = Tensor::zeros(n, t * sw);
        let mut lengths = Vec::with_capacity(n);

        for (i, o) in dataset.objects.iter().enumerate() {
            self.encode_attributes(o, attributes.row_slice_mut(i));
            let halves = self.sample_norms(o);
            if self.config.auto_normalize {
                self.encode_minmax(&halves, minmax.row_slice_mut(i));
            }
            self.encode_features(o, &halves, features.row_slice_mut(i));
            lengths.push(o.len());
        }
        // Degenerate zero-width blocks keep a 1-column tensor internally but
        // report their true width; trim for consistency.
        if aw == 0 {
            attributes = Tensor::zeros(n, 0);
        }
        if mw == 0 {
            minmax = Tensor::zeros(n, 0);
        }
        EncodedDataset {
            attributes,
            minmax,
            features,
            lengths,
            attr_width: aw,
            minmax_width: mw,
            step_width: sw,
            max_len: t,
        }
    }

    /// Encodes bare attribute rows (no features) into an `N x attr_width`
    /// tensor. Used when retraining the attribute generator toward a target
    /// distribution (§5.2 / §5.3.2 of the paper).
    pub fn encode_attribute_rows(&self, rows: &[Vec<Value>]) -> Tensor {
        let aw = self.attr_width();
        let mut out = Tensor::zeros(rows.len(), aw);
        for (i, attrs) in rows.iter().enumerate() {
            assert_eq!(attrs.len(), self.schema.num_attributes(), "attribute arity mismatch");
            let tmp = TimeSeriesObject { attributes: attrs.clone(), records: Vec::new() };
            self.encode_attributes(&tmp, out.row_slice_mut(i));
        }
        out
    }

    /// Per-sample `(center, half_range)` for each continuous feature.
    fn sample_norms(&self, o: &TimeSeriesObject) -> Vec<(f64, f64)> {
        let mut halves = Vec::new();
        if !self.config.auto_normalize {
            return halves;
        }
        for (j, spec) in self.schema.features.iter().enumerate() {
            if spec.kind.is_categorical() {
                continue;
            }
            let mut mn = f64::INFINITY;
            let mut mx = f64::NEG_INFINITY;
            for r in &o.records {
                let v = r[j].cont();
                mn = mn.min(v);
                mx = mx.max(v);
            }
            if o.is_empty() {
                mn = 0.0;
                mx = 0.0;
            }
            let center = (mx + mn) / 2.0;
            let half = ((mx - mn) / 2.0).max(MIN_HALF_RANGE);
            halves.push((center, half));
        }
        halves
    }

    fn encode_attributes(&self, o: &TimeSeriesObject, out: &mut [f32]) {
        let mut off = 0;
        for (j, spec) in self.schema.attributes.iter().enumerate() {
            match &spec.kind {
                FieldKind::Categorical { categories } => {
                    out[off + o.attributes[j].cat()] = 1.0;
                    off += categories.len();
                }
                FieldKind::Continuous { .. } => {
                    let (mn, mx) = self.attr_ranges[j];
                    out[off] = self.config.range.scale(o.attributes[j].cont(), mn, mx);
                    off += 1;
                }
            }
        }
    }

    fn encode_minmax(&self, halves: &[(f64, f64)], out: &mut [f32]) {
        let mut h = 0;
        let mut off = 0;
        for (j, spec) in self.schema.features.iter().enumerate() {
            if spec.kind.is_categorical() {
                continue;
            }
            let (gmn, gmx) = self.feat_ranges[j];
            let (center, half) = halves[h];
            h += 1;
            // Center scaled over the global feature range; half-range scaled
            // over [0, global span].
            out[off] = self.config.range.scale(center, gmn, gmx);
            out[off + 1] = self.config.range.scale(half, 0.0, (gmx - gmn).max(f64::EPSILON));
            off += 2;
        }
    }

    fn encode_features(&self, o: &TimeSeriesObject, halves: &[(f64, f64)], out: &mut [f32]) {
        let sw = self.step_width();
        let len = o.len();
        for (t, r) in o.records.iter().enumerate() {
            let step = &mut out[t * sw..(t + 1) * sw];
            let mut off = 0;
            let mut h = 0;
            for (j, spec) in self.schema.features.iter().enumerate() {
                match &spec.kind {
                    FieldKind::Categorical { categories } => {
                        step[off + r[j].cat()] = 1.0;
                        off += categories.len();
                    }
                    FieldKind::Continuous { .. } => {
                        let v = r[j].cont();
                        step[off] = if self.config.auto_normalize {
                            let (center, half) = halves[h];
                            h += 1;
                            let z = ((v - center) / half).clamp(-1.0, 1.0);
                            match self.config.range {
                                Range::SymmetricOne => z as f32,
                                Range::ZeroOne => ((z + 1.0) / 2.0) as f32,
                            }
                        } else {
                            let (gmn, gmx) = self.feat_ranges[j];
                            self.config.range.scale(v, gmn, gmx)
                        };
                        off += 1;
                    }
                }
            }
            // Generation flags: [1,0] = continues, [0,1] = last record.
            if t + 1 == len {
                step[off + 1] = 1.0;
            } else {
                step[off] = 1.0;
            }
        }
    }

    /// Decodes generated tensors back into objects.
    ///
    /// Categorical blocks are decoded by argmax; generation flags determine
    /// lengths (the series ends at the first step whose `p2 >= p1`, or at
    /// `max_len`). Steps past the decoded length are discarded, matching the
    /// paper's padding rule.
    pub fn decode(&self, attributes: &Tensor, minmax: &Tensor, features: &Tensor) -> Vec<TimeSeriesObject> {
        let n = attributes.rows();
        assert_eq!(features.rows(), n, "attribute/feature row mismatch");
        let sw = self.step_width();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let attrs = self.decode_attributes(attributes.row_slice(i));
            let halves =
                if self.config.auto_normalize { self.decode_minmax(minmax.row_slice(i)) } else { Vec::new() };
            let frow = features.row_slice(i);
            let len = decode_length(frow, sw, self.schema.feature_encoded_width(), self.max_len());
            let mut records = Vec::with_capacity(len);
            for t in 0..len {
                let step = &frow[t * sw..(t + 1) * sw];
                records.push(self.decode_record(step, &halves));
            }
            out.push(TimeSeriesObject { attributes: attrs, records });
        }
        out
    }

    fn decode_attributes(&self, row: &[f32]) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.schema.num_attributes());
        let mut off = 0;
        for (j, spec) in self.schema.attributes.iter().enumerate() {
            match &spec.kind {
                FieldKind::Categorical { categories } => {
                    let block = &row[off..off + categories.len()];
                    out.push(Value::Cat(argmax(block)));
                    off += categories.len();
                }
                FieldKind::Continuous { .. } => {
                    let (mn, mx) = self.attr_ranges[j];
                    out.push(Value::Cont(self.config.range.unscale(row[off], mn, mx)));
                    off += 1;
                }
            }
        }
        out
    }

    fn decode_minmax(&self, row: &[f32]) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut off = 0;
        for (j, spec) in self.schema.features.iter().enumerate() {
            if spec.kind.is_categorical() {
                continue;
            }
            let (gmn, gmx) = self.feat_ranges[j];
            let center = self.config.range.unscale(row[off], gmn, gmx);
            let half = self
                .config
                .range
                .unscale(row[off + 1], 0.0, (gmx - gmn).max(f64::EPSILON))
                .max(MIN_HALF_RANGE);
            out.push((center, half));
            off += 2;
        }
        out
    }

    fn decode_record(&self, step: &[f32], halves: &[(f64, f64)]) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.schema.num_features());
        let mut off = 0;
        let mut h = 0;
        for (j, spec) in self.schema.features.iter().enumerate() {
            match &spec.kind {
                FieldKind::Categorical { categories } => {
                    out.push(Value::Cat(argmax(&step[off..off + categories.len()])));
                    off += categories.len();
                }
                FieldKind::Continuous { .. } => {
                    let raw = step[off];
                    let v = if self.config.auto_normalize {
                        let (center, half) = halves[h];
                        h += 1;
                        let z = match self.config.range {
                            Range::SymmetricOne => raw as f64,
                            Range::ZeroOne => 2.0 * raw as f64 - 1.0,
                        };
                        center + z.clamp(-1.0, 1.0) * half
                    } else {
                        let (gmn, gmx) = self.feat_ranges[j];
                        self.config.range.unscale(raw, gmn, gmx)
                    };
                    out.push(Value::Cont(v));
                    off += 1;
                }
            }
        }
        out
    }
}

/// Decodes the series length from the generation flags of one encoded row.
pub fn decode_length(feature_row: &[f32], step_width: usize, flag_offset: usize, max_len: usize) -> usize {
    for t in 0..max_len {
        let p1 = feature_row[t * step_width + flag_offset];
        let p2 = feature_row[t * step_width + flag_offset + 1];
        if p1 <= 0.0 && p2 <= 0.0 {
            // Fully padded step: series ended earlier than flags indicated.
            return t;
        }
        if p2 >= p1 {
            return t + 1;
        }
    }
    max_len
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldSpec;

    fn demo_dataset() -> Dataset {
        let schema = Schema::new(
            vec![FieldSpec::new("kind", FieldKind::categorical(["a", "b", "c"]))],
            vec![FieldSpec::new("x", FieldKind::continuous(0.0, 1000.0))],
            6,
        );
        let objects = vec![
            TimeSeriesObject {
                attributes: vec![Value::Cat(1)],
                records: vec![vec![Value::Cont(10.0)], vec![Value::Cont(20.0)], vec![Value::Cont(30.0)]],
            },
            TimeSeriesObject {
                attributes: vec![Value::Cat(2)],
                records: vec![vec![Value::Cont(500.0)], vec![Value::Cont(900.0)]],
            },
        ];
        Dataset::new(schema, objects)
    }

    #[test]
    fn widths_are_consistent() {
        let d = demo_dataset();
        let enc = Encoder::fit(&d, EncoderConfig::default());
        assert_eq!(enc.attr_width(), 3);
        assert_eq!(enc.minmax_width(), 2);
        assert_eq!(enc.step_width(), 3); // 1 feature + 2 flags
        let e = enc.encode(&d);
        assert_eq!(e.attributes.shape(), (2, 3));
        assert_eq!(e.minmax.shape(), (2, 2));
        assert_eq!(e.features.shape(), (2, 18));
        assert_eq!(e.full_width(), 3 + 2 + 18);
        assert_eq!(e.full_rows(&[0, 1]).shape(), (2, 23));
    }

    #[test]
    fn attributes_are_one_hot() {
        let d = demo_dataset();
        let enc = Encoder::fit(&d, EncoderConfig::default());
        let e = enc.encode(&d);
        assert_eq!(e.attributes.row_slice(0), &[0.0, 1.0, 0.0]);
        assert_eq!(e.attributes.row_slice(1), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn flags_mark_last_record_and_padding() {
        let d = demo_dataset();
        let enc = Encoder::fit(&d, EncoderConfig::default());
        let e = enc.encode(&d);
        let row = e.features.row_slice(0); // length 3 of max 6
                                           // Steps 0,1 continue; step 2 is the last; steps 3.. are zero.
        assert_eq!(&row[1..3], &[1.0, 0.0]);
        assert_eq!(&row[4..6], &[1.0, 0.0]);
        assert_eq!(&row[7..9], &[0.0, 1.0]);
        assert!(row[9..].iter().all(|&v| v == 0.0));
        assert_eq!(e.lengths, vec![3, 2]);
    }

    #[test]
    fn auto_normalized_features_span_unit_range() {
        let d = demo_dataset();
        let enc = Encoder::fit(&d, EncoderConfig::default());
        let e = enc.encode(&d);
        let row = e.features.row_slice(0);
        // Sample 0 has values 10..30 -> normalized to -1, 0, 1.
        assert!((row[0] + 1.0).abs() < 1e-5);
        assert!(row[3].abs() < 1e-5);
        assert!((row[6] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = demo_dataset();
        for auto in [true, false] {
            for range in [Range::SymmetricOne, Range::ZeroOne] {
                let cfg = EncoderConfig { auto_normalize: auto, range };
                let enc = Encoder::fit(&d, cfg);
                let e = enc.encode(&d);
                let back = enc.decode(&e.attributes, &e.minmax, &e.features);
                assert_eq!(back.len(), 2);
                for (orig, dec) in d.objects.iter().zip(&back) {
                    assert_eq!(orig.attributes, dec.attributes, "auto={auto} range={range:?}");
                    assert_eq!(orig.len(), dec.len());
                    for (r0, r1) in orig.records.iter().zip(&dec.records) {
                        let a = r0[0].cont();
                        let b = r1[0].cont();
                        assert!(
                            (a - b).abs() < 1e-2 * (1.0 + a.abs()),
                            "roundtrip {a} vs {b} (auto={auto}, range={range:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn decode_length_handles_all_cases() {
        // step_width 3, flag offset 1, max_len 3.
        // Case: ends at step 1 ([0,1] flag).
        let row = vec![0.5, 1.0, 0.0, 0.4, 0.2, 0.8, 0.0, 0.0, 0.0];
        assert_eq!(decode_length(&row, 3, 1, 3), 2);
        // Case: never ends -> max_len.
        let row = vec![0.5, 1.0, 0.0, 0.4, 1.0, 0.0, 0.3, 1.0, 0.0];
        assert_eq!(decode_length(&row, 3, 1, 3), 3);
        // Case: all-zero padding right away -> length 0.
        let row = vec![0.0; 9];
        assert_eq!(decode_length(&row, 3, 1, 3), 0);
    }

    #[test]
    fn constant_series_is_invertible() {
        let schema = Schema::new(vec![], vec![FieldSpec::new("x", FieldKind::continuous(0.0, 10.0))], 3);
        let objects = vec![TimeSeriesObject { attributes: vec![], records: vec![vec![Value::Cont(5.0)]; 3] }];
        let d = Dataset::new(schema, objects);
        let enc = Encoder::fit(&d, EncoderConfig::default());
        let e = enc.encode(&d);
        let back = enc.decode(&e.attributes, &e.minmax, &e.features);
        for r in &back[0].records {
            assert!((r[0].cont() - 5.0).abs() < 1e-2);
        }
    }

    #[test]
    fn categorical_features_roundtrip() {
        let schema = Schema::new(
            vec![],
            vec![FieldSpec::new("proto", FieldKind::categorical(["tcp", "udp", "icmp"]))],
            4,
        );
        let objects = vec![TimeSeriesObject {
            attributes: vec![],
            records: vec![vec![Value::Cat(2)], vec![Value::Cat(0)], vec![Value::Cat(1)]],
        }];
        let d = Dataset::new(schema, objects);
        let enc = Encoder::fit(&d, EncoderConfig::default());
        assert_eq!(enc.minmax_width(), 0);
        let e = enc.encode(&d);
        let back = enc.decode(&e.attributes, &e.minmax, &e.features);
        assert_eq!(back[0].records.len(), 3);
        assert_eq!(back[0].records[0][0], Value::Cat(2));
        assert_eq!(back[0].records[1][0], Value::Cat(0));
        assert_eq!(back[0].records[2][0], Value::Cat(1));
    }
}
