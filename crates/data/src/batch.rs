//! Seeded minibatch index iteration for training loops.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Yields shuffled minibatch index sets, reshuffling at every epoch boundary.
///
/// Every epoch — **including the first** — is shuffled: construction places
/// the cursor at the end of a virtual epoch, so the first
/// [`BatchIter::next_batch`] call triggers the same reshuffle-and-reset path
/// as any later epoch boundary. (An earlier version started from the
/// identity order, silently feeding the first epoch in dataset order.)
///
/// The final partial batch of an epoch is dropped (standard GAN practice —
/// keeps batch statistics consistent), unless the dataset is smaller than one
/// batch, in which case the whole dataset is yielded each time.
///
/// The full iteration state (`order` + cursor) is serde-serializable so a
/// training checkpoint can freeze and resume the exact batch sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchIter {
    n: usize,
    batch: usize,
    order: Vec<usize>,
    cursor: usize,
}

impl BatchIter {
    /// Creates an iterator over `n` samples in batches of `batch`.
    pub fn new(n: usize, batch: usize) -> Self {
        assert!(n > 0, "BatchIter requires a non-empty dataset");
        assert!(batch > 0, "BatchIter requires batch > 0");
        // cursor == n marks an exhausted epoch, so the first next_batch call
        // shuffles before yielding anything.
        BatchIter { n, batch: batch.min(n), order: (0..n).collect(), cursor: n }
    }

    /// Effective batch size (clamped to the dataset size).
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Number of samples iterated over.
    pub fn num_samples(&self) -> usize {
        self.n
    }

    /// Returns the next batch of indices, reshuffling with `rng` whenever an
    /// epoch boundary is crossed (the first call always reshuffles).
    pub fn next_batch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &[usize] {
        if self.cursor + self.batch > self.n {
            self.order.shuffle(rng);
            self.cursor = 0;
        }
        let s = &self.order[self.cursor..self.cursor + self.batch];
        self.cursor += self.batch;
        s
    }

    /// Number of full batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        (self.n / self.batch).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batches_have_requested_size_and_cover_epoch() {
        let mut it = BatchIter::new(10, 3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(it.batches_per_epoch(), 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let b = it.next_batch(&mut rng).to_vec();
            assert_eq!(b.len(), 3);
            seen.extend(b);
        }
        // 9 of 10 indices covered in one epoch of full batches.
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn small_dataset_clamps_batch() {
        let mut it = BatchIter::new(2, 100);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(it.batch_size(), 2);
        let b = it.next_batch(&mut rng).to_vec();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn indices_stay_in_range_across_epochs() {
        let mut it = BatchIter::new(7, 2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            for &i in it.next_batch(&mut rng) {
                assert!(i < 7);
            }
        }
    }

    #[test]
    fn first_epoch_is_shuffled() {
        // Regression: the first epoch used to be yielded in dataset order
        // (identity permutation). With 128 samples the odds of a fair
        // shuffle reproducing the identity are ~1/128!.
        let n = 128;
        let mut it = BatchIter::new(n, n);
        let mut rng = StdRng::seed_from_u64(3);
        let first: Vec<usize> = it.next_batch(&mut rng).to_vec();
        let identity: Vec<usize> = (0..n).collect();
        assert_ne!(first, identity, "first epoch must not come out in dataset order");
        // Still a permutation of 0..n.
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity);
    }

    #[test]
    fn first_epoch_shuffle_is_seed_deterministic() {
        let mut a = BatchIter::new(31, 4);
        let mut b = BatchIter::new(31, 4);
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(a.next_batch(&mut ra), b.next_batch(&mut rb));
        }
    }

    #[test]
    fn serde_roundtrip_resumes_exact_sequence() {
        let mut it = BatchIter::new(17, 5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..4 {
            it.next_batch(&mut rng);
        }
        let json = serde_json::to_string(&it).expect("serialize");
        let mut resumed: BatchIter = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(it, resumed);
        // Both continue identically when driven by the same RNG stream.
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(it.next_batch(&mut r1), resumed.next_batch(&mut r2));
        }
    }
}
