//! Seeded minibatch index iteration for training loops.

use rand::seq::SliceRandom;
use rand::Rng;

/// Yields shuffled minibatch index sets, reshuffling at every epoch boundary.
///
/// The final partial batch of an epoch is dropped (standard GAN practice —
/// keeps batch statistics consistent), unless the dataset is smaller than one
/// batch, in which case the whole dataset is yielded each time.
#[derive(Debug)]
pub struct BatchIter {
    n: usize,
    batch: usize,
    order: Vec<usize>,
    cursor: usize,
}

impl BatchIter {
    /// Creates an iterator over `n` samples in batches of `batch`.
    pub fn new(n: usize, batch: usize) -> Self {
        assert!(n > 0, "BatchIter requires a non-empty dataset");
        assert!(batch > 0, "BatchIter requires batch > 0");
        BatchIter { n, batch: batch.min(n), order: (0..n).collect(), cursor: 0 }
    }

    /// Effective batch size (clamped to the dataset size).
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Returns the next batch of indices, reshuffling with `rng` whenever an
    /// epoch boundary is crossed.
    pub fn next_batch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &[usize] {
        if self.cursor + self.batch > self.n {
            self.order.shuffle(rng);
            self.cursor = 0;
        }
        let s = &self.order[self.cursor..self.cursor + self.batch];
        self.cursor += self.batch;
        s
    }

    /// Number of full batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        (self.n / self.batch).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batches_have_requested_size_and_cover_epoch() {
        let mut it = BatchIter::new(10, 3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(it.batches_per_epoch(), 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let b = it.next_batch(&mut rng).to_vec();
            assert_eq!(b.len(), 3);
            seen.extend(b);
        }
        // 9 of 10 indices covered in one epoch of full batches.
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn small_dataset_clamps_batch() {
        let mut it = BatchIter::new(2, 100);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(it.batch_size(), 2);
        let b = it.next_batch(&mut rng).to_vec();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn indices_stay_in_range_across_epochs() {
        let mut it = BatchIter::new(7, 2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            for &i in it.next_batch(&mut rng) {
                assert!(i < 7);
            }
        }
    }
}
