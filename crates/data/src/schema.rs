//! Dataset schemas: the paper's §3.1 "data schema" auxiliary input.
//!
//! A [`Schema`] describes attribute and feature dimensionality and whether
//! each field is categorical or numeric — exactly the information
//! DoppelGANger requires from the data holder before training.

use serde::{Deserialize, Serialize};

/// The kind (and domain) of a single attribute or feature field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldKind {
    /// A categorical field with a fixed set of named categories, encoded
    /// one-hot.
    Categorical {
        /// Category names, in encoding order.
        categories: Vec<String>,
    },
    /// A numeric field with (approximate) physical bounds used for global
    /// min-max scaling.
    Continuous {
        /// Smallest physically-meaningful value.
        min: f64,
        /// Largest physically-meaningful value.
        max: f64,
    },
}

impl FieldKind {
    /// Convenience constructor for a categorical kind.
    pub fn categorical<S: Into<String>>(categories: impl IntoIterator<Item = S>) -> Self {
        FieldKind::Categorical { categories: categories.into_iter().map(Into::into).collect() }
    }

    /// Convenience constructor for a continuous kind.
    pub fn continuous(min: f64, max: f64) -> Self {
        assert!(min < max, "continuous field requires min < max");
        FieldKind::Continuous { min, max }
    }

    /// Width of the encoded representation (one-hot width or 1).
    pub fn encoded_width(&self) -> usize {
        match self {
            FieldKind::Categorical { categories } => categories.len(),
            FieldKind::Continuous { .. } => 1,
        }
    }

    /// True for categorical fields.
    pub fn is_categorical(&self) -> bool {
        matches!(self, FieldKind::Categorical { .. })
    }

    /// Number of categories (0 for continuous fields).
    pub fn num_categories(&self) -> usize {
        match self {
            FieldKind::Categorical { categories } => categories.len(),
            FieldKind::Continuous { .. } => 0,
        }
    }
}

/// A named attribute or feature field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Human-readable field name (e.g. `"Wikipedia domain"`, `"CPU rate"`).
    pub name: String,
    /// Field kind and domain.
    pub kind: FieldKind,
}

impl FieldSpec {
    /// Creates a field spec.
    pub fn new(name: impl Into<String>, kind: FieldKind) -> Self {
        FieldSpec { name: name.into(), kind }
    }
}

/// Full description of a networked time series dataset.
///
/// Mirrors the paper's abstraction (§3): `m` attributes per object plus `K`
/// features per record, a maximum series length `T`, and the optional
/// collection-frequency hint used to pick the feature batch size `S`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Object-level attribute fields `A_1..A_m`.
    pub attributes: Vec<FieldSpec>,
    /// Per-record feature fields `f_1..f_K`.
    pub features: Vec<FieldSpec>,
    /// Maximum time series length `T` (series are padded to this).
    pub max_len: usize,
    /// Optional human-readable collection timescale (e.g. `"daily"`),
    /// the §3.1 "time series collection frequency" auxiliary input.
    pub timescale: Option<String>,
}

impl Schema {
    /// Creates a schema.
    pub fn new(attributes: Vec<FieldSpec>, features: Vec<FieldSpec>, max_len: usize) -> Self {
        assert!(max_len > 0, "schema requires max_len > 0");
        Schema { attributes, features, max_len, timescale: None }
    }

    /// Sets the collection-timescale hint.
    pub fn with_timescale(mut self, ts: impl Into<String>) -> Self {
        self.timescale = Some(ts.into());
        self
    }

    /// Number of attributes `m`.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of features `K`.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Width of the one-hot/scaled encoding of all attributes.
    pub fn attr_encoded_width(&self) -> usize {
        self.attributes.iter().map(|f| f.kind.encoded_width()).sum()
    }

    /// Width of the encoding of one record's features (excluding generation
    /// flags).
    pub fn feature_encoded_width(&self) -> usize {
        self.features.iter().map(|f| f.kind.encoded_width()).sum()
    }

    /// Number of *continuous* feature fields (these get per-sample min/max
    /// fake attributes under auto-normalization).
    pub fn num_continuous_features(&self) -> usize {
        self.features.iter().filter(|f| !f.kind.is_categorical()).count()
    }

    /// Looks up an attribute index by name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|f| f.name == name)
    }

    /// Looks up a feature index by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema::new(
            vec![
                FieldSpec::new("domain", FieldKind::categorical(["en", "de", "fr"])),
                FieldSpec::new("weight", FieldKind::continuous(0.0, 10.0)),
            ],
            vec![
                FieldSpec::new("views", FieldKind::continuous(0.0, 1e6)),
                FieldSpec::new("proto", FieldKind::categorical(["tcp", "udp"])),
            ],
            64,
        )
        .with_timescale("daily")
    }

    #[test]
    fn widths() {
        let s = demo_schema();
        assert_eq!(s.num_attributes(), 2);
        assert_eq!(s.num_features(), 2);
        assert_eq!(s.attr_encoded_width(), 4); // 3 one-hot + 1 continuous
        assert_eq!(s.feature_encoded_width(), 3); // 1 continuous + 2 one-hot
        assert_eq!(s.num_continuous_features(), 1);
    }

    #[test]
    fn lookups() {
        let s = demo_schema();
        assert_eq!(s.attribute_index("weight"), Some(1));
        assert_eq!(s.feature_index("views"), Some(0));
        assert_eq!(s.feature_index("nope"), None);
        assert_eq!(s.timescale.as_deref(), Some("daily"));
    }

    #[test]
    fn serde_roundtrip() {
        let s = demo_schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn continuous_requires_order() {
        let _ = FieldKind::continuous(5.0, 5.0);
    }
}
