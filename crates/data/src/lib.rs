//! # dg-data — the networked-time-series data model
//!
//! Implements the dataset abstraction of §3 of the DoppelGANger paper: a
//! dataset is a set of objects `O_i = (A_i, R_i)` combining `m` metadata
//! attributes with a variable-length, `K`-dimensional time series of
//! records. The crate provides:
//!
//! * [`schema`] — field specifications (categorical / continuous) and the
//!   schema auxiliary input of §3.1;
//! * [`object`] — [`object::TimeSeriesObject`] / [`object::Dataset`] with
//!   validation, splitting and attribute filtering;
//! * [`encode`] — the [`encode::Encoder`] mapping datasets to the flat
//!   tensors GANs consume, including the paper's auto-normalization
//!   (per-sample min/max fake attributes, §4.1.3) and generation flags
//!   (§4.1.1), and back;
//! * [`batch`] — seeded minibatch iteration;
//! * [`timestamps`] — the paper's unequal-timestamps extension
//!   (inter-arrival deltas as a leading continuous feature).

#![warn(missing_docs)]

pub mod batch;
pub mod encode;
pub mod object;
pub mod schema;
pub mod timestamps;

pub use batch::BatchIter;
pub use encode::{decode_length, EncodedDataset, Encoder, EncoderConfig, Range};
pub use object::{Dataset, TimeSeriesObject, Value};
pub use schema::{FieldKind, FieldSpec, Schema};
pub use timestamps::{from_interarrival, to_interarrival, TimestampedObject, INTERARRIVAL_FEATURE};
