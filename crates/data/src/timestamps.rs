//! Unequally-spaced timestamps (§3 of the paper).
//!
//! The core abstraction treats records as equally spaced. The paper notes
//! the extension for irregular sampling: *"we can easily extend this to
//! unequally spaced timestamps by treating time as a continuous feature and
//! generating inter-arrival times along with other features."* This module
//! implements that extension as a reversible dataset transform: timestamps
//! become an extra leading continuous feature holding the inter-arrival
//! delta, so any generative model in the workspace learns and generates them
//! like any other feature.

use crate::object::{Dataset, TimeSeriesObject, Value};
use crate::schema::{FieldKind, FieldSpec, Schema};

/// Name of the synthetic inter-arrival feature inserted at index 0.
pub const INTERARRIVAL_FEATURE: &str = "inter-arrival time";

/// One object with explicit per-record timestamps (sorted ascending).
#[derive(Debug, Clone, PartialEq)]
pub struct TimestampedObject {
    /// Attribute values in schema order.
    pub attributes: Vec<Value>,
    /// `(timestamp, features)` records, timestamps strictly increasing.
    pub records: Vec<(f64, Vec<Value>)>,
}

impl TimestampedObject {
    /// Validates that timestamps are finite and strictly increasing.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.records.windows(2) {
            let (t0, t1) = (w[0].0, w[1].0);
            if !t0.is_finite() || !t1.is_finite() {
                return Err("non-finite timestamp".into());
            }
            if t1 <= t0 {
                return Err(format!("timestamps must be strictly increasing: {t0} then {t1}"));
            }
        }
        Ok(())
    }
}

/// Converts timestamped objects into the equally-spaced abstraction by
/// inserting the inter-arrival delta as a leading continuous feature. The
/// first record's delta is 0 (its absolute offset is carried by the caller
/// if needed).
///
/// `max_gap` bounds the declared domain of the new feature (used for global
/// scaling); it is clamped up to the largest observed gap.
///
/// # Panics
/// Panics if any object fails [`TimestampedObject::validate`] or violates
/// the base schema.
pub fn to_interarrival(base_schema: &Schema, objects: &[TimestampedObject], max_gap: f64) -> Dataset {
    let mut observed_max: f64 = max_gap.max(f64::EPSILON);
    for o in objects {
        o.validate().unwrap_or_else(|e| panic!("invalid timestamped object: {e}"));
        for w in o.records.windows(2) {
            observed_max = observed_max.max(w[1].0 - w[0].0);
        }
    }
    let mut features = vec![FieldSpec::new(INTERARRIVAL_FEATURE, FieldKind::continuous(0.0, observed_max))];
    features.extend(base_schema.features.iter().cloned());
    let schema = Schema {
        attributes: base_schema.attributes.clone(),
        features,
        max_len: base_schema.max_len,
        timescale: Some("irregular (inter-arrival encoded)".into()),
    };
    let converted = objects
        .iter()
        .map(|o| {
            let mut prev_t = o.records.first().map(|r| r.0).unwrap_or(0.0);
            let records = o
                .records
                .iter()
                .map(|(t, feats)| {
                    let mut row = Vec::with_capacity(feats.len() + 1);
                    row.push(Value::Cont((t - prev_t).max(0.0)));
                    row.extend(feats.iter().copied());
                    prev_t = *t;
                    row
                })
                .collect();
            TimeSeriesObject { attributes: o.attributes.clone(), records }
        })
        .collect();
    Dataset::new(schema, converted)
}

/// Inverts [`to_interarrival`]: reconstructs timestamps by cumulative sum of
/// the leading feature, starting each object at `t0`. Non-positive generated
/// deltas (possible from an imperfect model) are floored at `min_gap` so the
/// output remains strictly increasing, matching the abstraction's
/// `t_j < t_{j+1}` requirement.
pub fn from_interarrival(dataset: &Dataset, t0: f64, min_gap: f64) -> Vec<TimestampedObject> {
    assert_eq!(
        dataset.schema.features.first().map(|f| f.name.as_str()),
        Some(INTERARRIVAL_FEATURE),
        "dataset was not produced by to_interarrival"
    );
    assert!(min_gap > 0.0, "min_gap must be positive");
    dataset
        .objects
        .iter()
        .map(|o| {
            let mut t = t0;
            let mut first = true;
            let records = o
                .records
                .iter()
                .map(|r| {
                    let delta = r[0].cont();
                    if first {
                        first = false;
                        t = t0 + delta.max(0.0);
                    } else {
                        t += delta.max(min_gap);
                    }
                    (t, r[1..].to_vec())
                })
                .collect();
            TimestampedObject { attributes: o.attributes.clone(), records }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_schema() -> Schema {
        Schema::new(
            vec![FieldSpec::new("kind", FieldKind::categorical(["a", "b"]))],
            vec![FieldSpec::new("x", FieldKind::continuous(0.0, 10.0))],
            8,
        )
    }

    fn demo_objects() -> Vec<TimestampedObject> {
        vec![
            TimestampedObject {
                attributes: vec![Value::Cat(0)],
                records: vec![
                    (100.0, vec![Value::Cont(1.0)]),
                    (100.5, vec![Value::Cont(2.0)]),
                    (103.0, vec![Value::Cont(3.0)]),
                ],
            },
            TimestampedObject {
                attributes: vec![Value::Cat(1)],
                records: vec![(7.0, vec![Value::Cont(4.0)])],
            },
        ]
    }

    #[test]
    fn interarrival_feature_is_prepended() {
        let d = to_interarrival(&base_schema(), &demo_objects(), 1.0);
        assert_eq!(d.schema.features[0].name, INTERARRIVAL_FEATURE);
        assert_eq!(d.schema.num_features(), 2);
        let deltas = d.objects[0].feature_series(0);
        assert_eq!(deltas, vec![0.0, 0.5, 2.5]);
        // Original features preserved at index 1.
        assert_eq!(d.objects[0].feature_series(1), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn roundtrip_reconstructs_timestamps() {
        let objs = demo_objects();
        let d = to_interarrival(&base_schema(), &objs, 1.0);
        let back = from_interarrival(&d, 100.0, 1e-9);
        let ts: Vec<f64> = back[0].records.iter().map(|r| r.0).collect();
        assert_eq!(ts, vec![100.0, 100.5, 103.0]);
        assert_eq!(back[0].records[2].1, vec![Value::Cont(3.0)]);
        assert_eq!(back[1].records[0].0, 100.0); // single record starts at t0
    }

    #[test]
    fn max_gap_grows_to_observed() {
        let d = to_interarrival(&base_schema(), &demo_objects(), 0.1);
        match &d.schema.features[0].kind {
            FieldKind::Continuous { max, .. } => assert!(*max >= 2.5),
            _ => panic!("expected continuous"),
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotonic_timestamps() {
        let bad = TimestampedObject {
            attributes: vec![Value::Cat(0)],
            records: vec![(5.0, vec![Value::Cont(0.0)]), (5.0, vec![Value::Cont(1.0)])],
        };
        let _ = to_interarrival(&base_schema(), &[bad], 1.0);
    }

    #[test]
    fn negative_generated_deltas_are_floored() {
        let d0 = to_interarrival(&base_schema(), &demo_objects(), 1.0);
        // Corrupt a delta to simulate an imperfect generator.
        let mut d = d0.clone();
        d.objects[0].records[1][0] = Value::Cont(-3.0);
        let back = from_interarrival(&d, 0.0, 0.25);
        let ts: Vec<f64> = back[0].records.iter().map(|r| r.0).collect();
        assert!(ts.windows(2).all(|w| w[1] > w[0]), "monotone: {ts:?}");
        assert_eq!(ts[1] - ts[0], 0.25);
    }
}
