//! Property-based tests for the data layer: schema validation, splits,
//! batching and the encoder across random mixed-type datasets.

use dg_data::{
    BatchIter, Dataset, Encoder, EncoderConfig, FieldKind, FieldSpec, Range, Schema, TimeSeriesObject, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random mixed-type dataset: one categorical + one continuous attribute,
/// one continuous + one categorical feature, variable lengths.
fn arb_mixed_dataset() -> impl Strategy<Value = Dataset> {
    let max_len = 5usize;
    let obj = (0usize..4, 0.0f64..10.0, prop::collection::vec((0.0f64..100.0, 0usize..2), 1..=max_len))
        .prop_map(|(cat, weight, rows)| TimeSeriesObject {
            attributes: vec![Value::Cat(cat), Value::Cont(weight)],
            records: rows.into_iter().map(|(x, proto)| vec![Value::Cont(x), Value::Cat(proto)]).collect(),
        });
    prop::collection::vec(obj, 2..10).prop_map(move |objects| {
        let schema = Schema::new(
            vec![
                FieldSpec::new("class", FieldKind::categorical(["a", "b", "c", "d"])),
                FieldSpec::new("weight", FieldKind::continuous(0.0, 10.0)),
            ],
            vec![
                FieldSpec::new("x", FieldKind::continuous(0.0, 100.0)),
                FieldSpec::new("proto", FieldKind::categorical(["tcp", "udp"])),
            ],
            max_len,
        );
        Dataset::new(schema, objects)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mixed_type_encode_decode_roundtrips(data in arb_mixed_dataset(), auto in any::<bool>()) {
        let cfg = EncoderConfig { auto_normalize: auto, range: Range::SymmetricOne };
        let enc = Encoder::fit(&data, cfg);
        let e = enc.encode(&data);
        prop_assert_eq!(e.attr_width, 5); // 4 one-hot + 1 continuous
        prop_assert_eq!(e.step_width, 5); // 1 cont + 2 one-hot + 2 flags
        let back = enc.decode(&e.attributes, &e.minmax, &e.features);
        for (orig, dec) in data.objects.iter().zip(&back) {
            // Categorical attribute exact; continuous within scaling error.
            prop_assert_eq!(orig.attributes[0], dec.attributes[0]);
            let (a, b) = (orig.attributes[1].cont(), dec.attributes[1].cont());
            prop_assert!((a - b).abs() < 0.01 * 10.0 + 1e-3, "{} vs {}", a, b);
            prop_assert_eq!(orig.len(), dec.len());
            for (r0, r1) in orig.records.iter().zip(&dec.records) {
                prop_assert_eq!(r0[1], r1[1], "categorical feature must round-trip exactly");
            }
        }
    }

    #[test]
    fn full_rows_width_is_consistent(data in arb_mixed_dataset()) {
        let enc = Encoder::fit(&data, EncoderConfig::default());
        let e = enc.encode(&data);
        let idx: Vec<usize> = (0..e.num_samples()).collect();
        let rows = e.full_rows(&idx);
        prop_assert_eq!(rows.cols(), e.full_width());
        prop_assert_eq!(rows.rows(), data.len());
    }

    #[test]
    fn split_partitions_objects(data in arb_mixed_dataset(), frac in 0.0f64..1.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = data.split(frac, &mut rng);
        prop_assert_eq!(a.len() + b.len(), data.len());
        // Every original object appears exactly once across the halves.
        let mut all: Vec<_> = a.objects.iter().chain(b.objects.iter()).collect();
        let mut orig: Vec<_> = data.objects.iter().collect();
        let key = |o: &&TimeSeriesObject| format!("{o:?}");
        all.sort_by_key(key);
        orig.sort_by_key(key);
        prop_assert_eq!(format!("{all:?}"), format!("{orig:?}"));
    }

    #[test]
    fn batch_iter_yields_valid_indices_forever(n in 1usize..40, batch in 1usize..50, seed in 0u64..50) {
        let mut it = BatchIter::new(n, batch);
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(it.batch_size() <= n);
        let bs = it.batch_size();
        for _ in 0..20 {
            let b = it.next_batch(&mut rng).to_vec();
            prop_assert_eq!(b.len(), bs);
            prop_assert!(b.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn attribute_counts_sum_to_len(data in arb_mixed_dataset()) {
        let counts = data.attribute_counts(0);
        prop_assert_eq!(counts.iter().sum::<usize>(), data.len());
        for (cat, &count) in counts.iter().enumerate() {
            prop_assert_eq!(data.filter_by_attribute(0, cat).len(), count);
        }
    }
}
