//! CSV importers for externally-obtained raw data in the three paper
//! dataset shapes.
//!
//! The sibling modules *simulate* the paper's datasets; this module
//! *loads* real exports the user downloaded themselves (the licenses
//! forbid redistribution, not local use). One text row per object:
//!
//! ```text
//! attr_1,...,attr_K,v[t0,f0],v[t0,f1],...,v[t1,f0],...
//! ```
//!
//! Attributes are category *names* (e.g. `en.wikipedia.org`), matched
//! against the format's schema; the remaining cells are the feature
//! values, record-major, so each row must carry a multiple of the
//! feature count. Series lengths may vary per row; the schema's
//! `max_len` is the longest loaded series. Lines that are empty or start
//! with `#` are ignored.
//!
//! Every malformed row produces a [`LoadError`] naming the source path,
//! the 1-based line number, and what was wrong. Strict loading
//! ([`LoadOptions::strict`]) stops at the first bad row; lenient loading
//! ([`LoadOptions::lenient`]) skips bad rows and returns them in the
//! [`LoadReport`] so callers can tell "clean import" from "imported with
//! holes".

use dg_data::{Dataset, FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};
use std::path::{Path, PathBuf};

/// A row that could not be parsed, with enough context to find it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadError {
    /// The file the row came from.
    pub path: PathBuf,
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What was wrong with it.
    pub detail: String,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.path.display(), self.line, self.detail)
    }
}

impl std::error::Error for LoadError {}

/// How to react to malformed rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOptions {
    /// Skip and count bad rows instead of failing on the first one.
    pub lenient: bool,
}

impl LoadOptions {
    /// Fail on the first malformed row.
    pub fn strict() -> Self {
        LoadOptions { lenient: false }
    }

    /// Skip malformed rows, reporting them in the [`LoadReport`].
    pub fn lenient() -> Self {
        LoadOptions { lenient: true }
    }
}

/// What a (possibly lenient) load actually did.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Rows imported successfully.
    pub loaded: usize,
    /// Rows skipped under [`LoadOptions::lenient`], with reasons.
    pub skipped: Vec<LoadError>,
}

/// An importable dataset shape: the fixed attribute/feature schema of one
/// of the paper's datasets, minus the data-dependent `max_len`.
#[derive(Debug, Clone)]
pub struct Format {
    /// Short name (`wwt`, `mba`, `gcut`).
    pub name: &'static str,
    attrs: Vec<FieldSpec>,
    feats: Vec<FieldSpec>,
    timescale: &'static str,
}

impl Format {
    /// Wikipedia Web Traffic: domain/access/agent attributes, one `views`
    /// feature per day (Table 6 of the paper).
    pub fn wwt() -> Self {
        Format {
            name: "wwt",
            attrs: vec![
                FieldSpec::new("Wikipedia domain", FieldKind::categorical(crate::wwt::DOMAINS)),
                FieldSpec::new("access type", FieldKind::categorical(crate::wwt::ACCESS_TYPES)),
                FieldSpec::new("agent", FieldKind::categorical(crate::wwt::AGENTS)),
            ],
            feats: vec![FieldSpec::new("views", FieldKind::continuous(0.0, 50_000.0))],
            timescale: "daily",
        }
    }

    /// FCC Measuring Broadband America: technology/ISP/state attributes,
    /// ping-loss + traffic features per six-hour epoch (Table 7).
    pub fn mba() -> Self {
        let states: Vec<String> = (0..crate::mba::NUM_STATES).map(|i| format!("S{i:02}")).collect();
        Format {
            name: "mba",
            attrs: vec![
                FieldSpec::new("technology", FieldKind::categorical(crate::mba::TECHNOLOGIES)),
                FieldSpec::new("ISP", FieldKind::categorical(crate::mba::ISPS)),
                FieldSpec::new("state", FieldKind::categorical(states)),
            ],
            feats: vec![
                FieldSpec::new("ping loss rate", FieldKind::continuous(0.0, 1.0)),
                FieldSpec::new("traffic bytes (GB)", FieldKind::continuous(0.0, 20.0)),
            ],
            timescale: "six-hourly",
        }
    }

    /// Google Cluster Usage Traces: end-event attribute, nine normalized
    /// resource-usage features per five-minute epoch (Table 5).
    pub fn gcut() -> Self {
        Format {
            name: "gcut",
            attrs: vec![FieldSpec::new("end event type", FieldKind::categorical(crate::gcut::END_EVENTS))],
            feats: crate::gcut::FEATURES
                .iter()
                .map(|f| FieldSpec::new(*f, FieldKind::continuous(0.0, 1.0)))
                .collect(),
            timescale: "five-minutely",
        }
    }

    /// Looks a format up by its short name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "wwt" => Some(Format::wwt()),
            "mba" => Some(Format::mba()),
            "gcut" => Some(Format::gcut()),
            _ => None,
        }
    }

    fn category_index(kind: &FieldKind, token: &str) -> Option<usize> {
        match kind {
            FieldKind::Categorical { categories } => categories.iter().position(|c| c == token),
            FieldKind::Continuous { .. } => None,
        }
    }

    fn parse_row(&self, cells: &[&str]) -> Result<TimeSeriesObject, String> {
        let na = self.attrs.len();
        let nf = self.feats.len();
        if cells.len() < na + nf {
            return Err(format!(
                "expected at least {} cells ({na} attributes + {nf} feature values), got {}",
                na + nf,
                cells.len()
            ));
        }
        let mut attributes = Vec::with_capacity(na);
        for (spec, token) in self.attrs.iter().zip(cells) {
            let Some(idx) = Self::category_index(&spec.kind, token.trim()) else {
                return Err(format!("unknown {} value '{}'", spec.name, token.trim()));
            };
            attributes.push(Value::Cat(idx));
        }
        let values = &cells[na..];
        if !values.len().is_multiple_of(nf) {
            return Err(format!(
                "{} feature cells do not divide into records of {nf} features",
                values.len()
            ));
        }
        let mut records = Vec::with_capacity(values.len() / nf);
        for step in values.chunks(nf) {
            let mut record = Vec::with_capacity(nf);
            for (spec, token) in self.feats.iter().zip(step) {
                let v: f64 = token
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad {} value '{}'", spec.name, token.trim()))?;
                if !v.is_finite() {
                    return Err(format!("non-finite {} value '{}'", spec.name, token.trim()));
                }
                record.push(Value::Cont(v));
            }
            records.push(record);
        }
        Ok(TimeSeriesObject { attributes, records })
    }

    /// Parses CSV `text` (as read from `path`, used only for error
    /// reporting) into a dataset plus a report of what happened.
    pub fn load_csv(
        &self,
        path: &Path,
        text: &str,
        opts: LoadOptions,
    ) -> Result<(Dataset, LoadReport), LoadError> {
        let mut objects = Vec::new();
        let mut report = LoadReport::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            match self.parse_row(&cells) {
                Ok(o) => {
                    objects.push(o);
                    report.loaded += 1;
                }
                Err(detail) => {
                    let err = LoadError { path: path.to_path_buf(), line: i + 1, detail };
                    if opts.lenient {
                        report.skipped.push(err);
                    } else {
                        return Err(err);
                    }
                }
            }
        }
        if objects.is_empty() {
            return Err(LoadError {
                path: path.to_path_buf(),
                line: text.lines().count(),
                detail: format!(
                    "no loadable {} rows{}",
                    self.name,
                    if report.skipped.is_empty() { "" } else { " (every row was malformed)" }
                ),
            });
        }
        let max_len = objects.iter().map(TimeSeriesObject::len).max().unwrap_or(0);
        let schema =
            Schema::new(self.attrs.clone(), self.feats.clone(), max_len).with_timescale(self.timescale);
        Ok((Dataset::new(schema, objects), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PathBuf {
        PathBuf::from("raw.csv")
    }

    #[test]
    fn wwt_rows_load_with_variable_lengths() {
        let text = "# domain,access,agent,views...\n\
                    en.wikipedia.org,desktop,spider,10,12,9\n\
                    \n\
                    de.wikipedia.org,all-access,all-agents,100,90,80,70\n";
        let (data, report) = Format::wwt().load_csv(&p(), text, LoadOptions::strict()).unwrap();
        assert_eq!(report.loaded, 2);
        assert!(report.skipped.is_empty());
        assert_eq!(data.len(), 2);
        assert_eq!(data.schema.max_len, 4);
        assert_eq!(data.objects[0].attributes, vec![Value::Cat(2), Value::Cat(1), Value::Cat(1)]);
        assert_eq!(data.objects[0].feature_series(0), vec![10.0, 12.0, 9.0]);
    }

    #[test]
    fn strict_load_names_file_line_and_problem() {
        let text = "en.wikipedia.org,desktop,spider,10\n\
                    mars.wikipedia.org,desktop,spider,10\n";
        let err = Format::wwt().load_csv(&p(), text, LoadOptions::strict()).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.path, p());
        assert!(err.detail.contains("mars.wikipedia.org"), "{}", err.detail);
        assert!(err.to_string().starts_with("raw.csv:2:"), "{err}");
    }

    #[test]
    fn lenient_load_skips_and_counts_bad_rows() {
        let text = "en.wikipedia.org,desktop,spider,10,11\n\
                    mars.wikipedia.org,desktop,spider,10\n\
                    en.wikipedia.org,desktop,spider,ten\n\
                    en.wikipedia.org,desktop,spider,inf\n\
                    de.wikipedia.org,mobile-web,all-agents,5,6,7\n";
        let (data, report) = Format::wwt().load_csv(&p(), text, LoadOptions::lenient()).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(data.len(), 2);
        let lines: Vec<usize> = report.skipped.iter().map(|e| e.line).collect();
        assert_eq!(lines, vec![2, 3, 4]);
        assert!(report.skipped[1].detail.contains("'ten'"));
        assert!(report.skipped[2].detail.contains("non-finite"));
    }

    #[test]
    fn mba_rows_need_whole_records() {
        // 3 cells after the attributes is not a multiple of 2 features.
        let text = "Cable,Cox,S05,0.01,1.5,0.02\n";
        let err = Format::mba().load_csv(&p(), text, LoadOptions::strict()).unwrap_err();
        assert!(err.detail.contains("records of 2"), "{}", err.detail);
        let ok = "Cable,Cox,S05,0.01,1.5,0.02,1.4\n";
        let (data, _) = Format::mba().load_csv(&p(), ok, LoadOptions::strict()).unwrap();
        assert_eq!(data.objects[0].len(), 2);
        assert_eq!(data.schema.num_features(), 2);
    }

    #[test]
    fn gcut_format_loads_nine_feature_records() {
        let row: Vec<String> =
            std::iter::once("FINISH".to_string()).chain((0..18).map(|i| format!("0.{i:02}"))).collect();
        let text = row.join(",");
        let (data, _) = Format::gcut().load_csv(&p(), &text, LoadOptions::strict()).unwrap();
        assert_eq!(data.objects[0].len(), 2);
        assert_eq!(data.schema.num_features(), 9);
        assert_eq!(data.objects[0].attributes, vec![Value::Cat(2)]);
    }

    #[test]
    fn empty_input_is_an_error_not_an_empty_dataset() {
        let err = Format::wwt().load_csv(&p(), "# nothing\n", LoadOptions::strict()).unwrap_err();
        assert!(err.detail.contains("no loadable"), "{}", err.detail);
        // All-malformed lenient input is also an error, not a silent empty set.
        let err = Format::wwt().load_csv(&p(), "bogus,row,here,1\n", LoadOptions::lenient()).unwrap_err();
        assert!(err.detail.contains("every row was malformed"), "{}", err.detail);
    }

    #[test]
    fn by_name_covers_all_formats() {
        for name in ["wwt", "mba", "gcut"] {
            assert_eq!(Format::by_name(name).unwrap().name, name);
        }
        assert!(Format::by_name("csv").is_none());
    }
}
