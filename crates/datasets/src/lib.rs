//! # dg-datasets — synthetic substitutes for the paper's evaluation datasets
//!
//! The three datasets evaluated in the DoppelGANger paper are external
//! downloads (Kaggle Wikipedia Web Traffic, FCC Measuring Broadband America,
//! Google cluster traces) that cannot be redistributed here. Following the
//! reproduction's substitution policy (see `DESIGN.md` §4), each module
//! simulates a generator that reproduces the *documented structural
//! properties* the paper's experiments measure — seasonality periods,
//! dynamic-range heterogeneity, duration bimodality, attribute/feature
//! correlations and marginal skew — so every figure and table can be
//! regenerated shape-faithfully.
//!
//! * [`wwt`] — Wikipedia Web Traffic: 550-day page-view series, weekly +
//!   annual seasonality, heavy-tailed scales, 3 categorical attributes.
//! * [`mba`] — FCC broadband measurements: 56 six-hour epochs, ping loss +
//!   traffic, technology/ISP/state attributes.
//! * [`gcut`] — Google cluster tasks: variable-length resource usage with a
//!   bimodal duration distribution and an end-event attribute correlated
//!   with the dynamics.
//! * [`sine`] — a closed-form toy dataset for fast deterministic tests.
//!
//! [`load`] imports *real* downloads of these datasets from CSV, with
//! structured per-row errors and an optional lenient mode.

#![warn(missing_docs)]

pub mod common;
pub mod gcut;
pub mod load;
pub mod mba;
pub mod sine;
pub mod wwt;

pub use gcut::GcutConfig;
pub use load::{Format, LoadError, LoadOptions, LoadReport};
pub use mba::MbaConfig;
pub use sine::SineConfig;
pub use wwt::WwtConfig;
