//! Synthetic substitute for the FCC Measuring Broadband America (MBA)
//! dataset.
//!
//! The real dataset contains hourly traffic measurements from home
//! measurement units; the paper aggregates them into 56 six-hour epochs over
//! two weeks, with two features (UDP ping loss rate, total traffic bytes)
//! and three attributes (connection technology, ISP, US state). We simulate:
//!
//! * **technology-dependent bandwidth scales** — cable/fiber users consume
//!   more than DSL/satellite users, the structure behind Table 3 and Fig. 9;
//! * a **diurnal usage pattern** (period 4 = one day of six-hour epochs);
//! * **bursty ping loss**, higher for satellite links;
//! * attribute marginals with realistic skew for the JSD probes
//!   (Figs. 18–23).

use crate::common::{non_negative, sample_weighted};
use dg_data::{Dataset, FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// Connection technologies (Fig. 19 of the paper).
pub const TECHNOLOGIES: [&str; 5] = ["DSL", "Fiber", "Satellite", "Cable", "IPBB"];

/// Internet service providers (Fig. 18).
pub const ISPS: [&str; 14] = [
    "Charter",
    "Verizon",
    "Frontier",
    "Hawaiian Telcom",
    "Cox",
    "Mediacom",
    "Hughes",
    "Windstream",
    "Wildblue/ViaSat",
    "Cincinnati Bell",
    "Comcast",
    "AT&T",
    "CenturyLink",
    "Optimum",
];

/// Number of US states in the state attribute (Fig. 22 uses ~51 values).
pub const NUM_STATES: usize = 51;

/// Configuration of the MBA simulator.
#[derive(Debug, Clone)]
pub struct MbaConfig {
    /// Number of measurement units (paper: 600 after cleaning).
    pub num_objects: usize,
    /// Series length (paper: 56 six-hour epochs = two weeks).
    pub length: usize,
    /// Diurnal period in epochs (4 six-hour epochs per day).
    pub diurnal_period: usize,
    /// Depth of the diurnal modulation.
    pub diurnal_depth: f64,
}

impl Default for MbaConfig {
    fn default() -> Self {
        MbaConfig { num_objects: 600, length: 56, diurnal_period: 4, diurnal_depth: 0.45 }
    }
}

impl MbaConfig {
    /// CI-sized preset.
    pub fn quick(num_objects: usize) -> Self {
        MbaConfig { num_objects, ..MbaConfig::default() }
    }
}

/// Mean traffic (GB per six-hour epoch) by technology index.
fn tech_traffic_scale(tech: usize) -> f64 {
    match tech {
        0 => 0.35, // DSL
        1 => 1.4,  // Fiber
        2 => 0.12, // Satellite
        3 => 1.0,  // Cable
        4 => 0.6,  // IPBB
        _ => unreachable!(),
    }
}

/// Baseline ping-loss rate by technology index.
fn tech_loss_base(tech: usize) -> f64 {
    match tech {
        2 => 0.02, // Satellite
        0 => 0.006,
        _ => 0.002,
    }
}

/// The schema of the (simulated) MBA dataset — Table 7 of the paper.
pub fn schema(cfg: &MbaConfig) -> Schema {
    let states: Vec<String> = (0..NUM_STATES).map(|i| format!("S{i:02}")).collect();
    Schema::new(
        vec![
            FieldSpec::new("technology", FieldKind::categorical(TECHNOLOGIES)),
            FieldSpec::new("ISP", FieldKind::categorical(ISPS)),
            FieldSpec::new("state", FieldKind::categorical(states)),
        ],
        vec![
            FieldSpec::new("ping loss rate", FieldKind::continuous(0.0, 1.0)),
            FieldSpec::new("traffic bytes (GB)", FieldKind::continuous(0.0, 20.0)),
        ],
        cfg.length,
    )
    .with_timescale("six-hourly")
}

/// Generates a simulated MBA dataset.
pub fn generate<R: Rng + ?Sized>(cfg: &MbaConfig, rng: &mut R) -> Dataset {
    let schema = schema(cfg);
    // Technology marginals: cable and DSL dominate (Fig. 19).
    let tech_weights = [30.0, 12.0, 8.0, 38.0, 12.0];
    // ISP priors conditioned on technology: satellite -> Hughes/ViaSat,
    // fiber -> Verizon/Frontier, cable -> Comcast/Charter/Cox, etc.
    let isp_given_tech: [&[f64]; 5] = [
        &[2.0, 4.0, 8.0, 2.0, 1.0, 2.0, 0.2, 9.0, 0.2, 5.0, 1.0, 12.0, 11.0, 2.0], // DSL
        &[1.0, 14.0, 6.0, 3.0, 1.0, 0.5, 0.1, 1.0, 0.1, 3.0, 1.0, 4.0, 2.0, 1.0],  // Fiber
        &[0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 12.0, 0.1, 9.0, 0.1, 0.1, 0.2, 0.2, 0.1],  // Satellite
        &[12.0, 1.0, 1.0, 1.0, 8.0, 5.0, 0.1, 1.0, 0.1, 1.0, 14.0, 1.0, 1.0, 6.0], // Cable
        &[2.0, 3.0, 1.0, 1.0, 2.0, 1.0, 0.2, 2.0, 0.2, 1.0, 3.0, 6.0, 3.0, 2.0],   // IPBB
    ];
    let state_weights: Vec<f64> = (0..NUM_STATES).map(|i| 1.0 + (i % 7) as f64).collect();

    let user_scale = LogNormal::new(0.0_f64, 0.55).expect("valid lognormal");
    let noise = Normal::new(0.0_f64, 0.25).expect("valid normal");

    let mut objects = Vec::with_capacity(cfg.num_objects);
    for _ in 0..cfg.num_objects {
        let tech = sample_weighted(&tech_weights, rng);
        let isp = sample_weighted(isp_given_tech[tech], rng);
        let state = sample_weighted(&state_weights, rng);

        let level = tech_traffic_scale(tech) * user_scale.sample(rng);
        let loss_base = tech_loss_base(tech) * (1.0 + rng.gen_range(0.0..1.0));
        let phase: usize = rng.gen_range(0..cfg.diurnal_period);

        let records = (0..cfg.length)
            .map(|t| {
                let slot = (t + phase) % cfg.diurnal_period;
                // Evenings (slot 3) peak, early mornings (slot 1) dip.
                let diurnal = match slot {
                    3 => 1.0 + cfg.diurnal_depth,
                    1 => 1.0 - cfg.diurnal_depth,
                    _ => 1.0,
                };
                let eps = noise.sample(rng).exp();
                let traffic = non_negative(level * diurnal * eps).min(20.0);
                // Loss: small baseline with occasional bursts.
                let burst = if rng.gen_bool(0.03) { rng.gen_range(0.05..0.5) } else { 0.0 };
                let loss = (loss_base * rng.gen_range(0.2..2.0) + burst).clamp(0.0, 1.0);
                vec![Value::Cont(loss), Value::Cont(traffic)]
            })
            .collect();

        objects.push(TimeSeriesObject {
            attributes: vec![Value::Cat(tech), Value::Cat(isp), Value::Cat(state)],
            records,
        });
    }
    Dataset::new(schema, objects)
}

/// Total traffic (feature 1) summed over a unit's series — the "total
/// bandwidth usage in 2 weeks" quantity of Table 3 / Fig. 9.
pub fn total_bandwidth(o: &TimeSeriesObject) -> f64 {
    o.feature_series(1).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let cfg = MbaConfig::quick(50);
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(&cfg, &mut rng);
        assert_eq!(d.len(), 50);
        assert!(d.objects.iter().all(|o| o.len() == 56));
        assert_eq!(d.schema.num_features(), 2);
    }

    #[test]
    fn cable_outconsumes_dsl() {
        let cfg = MbaConfig::quick(400);
        let mut rng = StdRng::seed_from_u64(2);
        let d = generate(&cfg, &mut rng);
        let mean_bw = |tech: usize| {
            let f = d.filter_by_attribute(0, tech);
            assert!(!f.is_empty());
            f.objects.iter().map(total_bandwidth).sum::<f64>() / f.len() as f64
        };
        let dsl = mean_bw(0);
        let cable = mean_bw(3);
        assert!(cable > 1.5 * dsl, "cable {cable} vs DSL {dsl}");
    }

    #[test]
    fn loss_rates_are_valid_probabilities() {
        let cfg = MbaConfig::quick(60);
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(&cfg, &mut rng);
        for o in &d.objects {
            for v in o.feature_series(0) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn satellite_links_are_lossier() {
        let cfg = MbaConfig::quick(600);
        let mut rng = StdRng::seed_from_u64(4);
        let d = generate(&cfg, &mut rng);
        let mean_loss = |tech: usize| {
            let f = d.filter_by_attribute(0, tech);
            let total: f64 = f.objects.iter().map(|o| o.feature_series(0).iter().sum::<f64>()).sum();
            let n: usize = f.objects.iter().map(|o| o.len()).sum();
            total / n as f64
        };
        assert!(mean_loss(2) > mean_loss(3), "satellite should exceed cable loss");
    }

    #[test]
    fn satellite_users_get_satellite_isps() {
        let cfg = MbaConfig::quick(500);
        let mut rng = StdRng::seed_from_u64(5);
        let d = generate(&cfg, &mut rng);
        let sat = d.filter_by_attribute(0, 2);
        let hughes_or_viasat =
            sat.objects.iter().filter(|o| matches!(o.attributes[1], Value::Cat(6) | Value::Cat(8))).count();
        assert!(hughes_or_viasat as f64 > 0.8 * sat.len() as f64);
    }
}
