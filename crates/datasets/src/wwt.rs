//! Synthetic substitute for the Wikipedia Web Traffic (WWT) dataset.
//!
//! The real dataset (Kaggle "web-traffic-time-series-forecasting") tracks
//! daily page views of Wikipedia articles over 550 days with three
//! categorical attributes (domain, access type, agent). We simulate the
//! structural properties the paper's experiments measure:
//!
//! * **short-period seasonality** (weekly, lag-7 autocorrelation spikes) and
//!   **long-period seasonality** (annual, the lag-365 bump of Fig. 1);
//! * **heavy-tailed per-page scale** (log-normal): some pages get 0–100
//!   views/day, others 1k–5k — the wide dynamic range behind the Fig. 5 mode
//!   collapse;
//! * skewed attribute marginals (Figs. 15–17) with attribute-dependent level
//!   shifts (spiders see less traffic, `en.wikipedia.org` more).

use crate::common::{non_negative, sample_weighted, weekly_profile};
use dg_data::{Dataset, FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// The nine Wikipedia domains of the real dataset.
pub const DOMAINS: [&str; 9] = [
    "commons.wikimedia.org",
    "de.wikipedia.org",
    "en.wikipedia.org",
    "es.wikipedia.org",
    "fr.wikipedia.org",
    "ja.wikipedia.org",
    "ru.wikipedia.org",
    "www.mediawiki.org",
    "zh.wikipedia.org",
];

/// Access-type attribute values.
pub const ACCESS_TYPES: [&str; 3] = ["all-access", "desktop", "mobile-web"];

/// Agent attribute values.
pub const AGENTS: [&str; 2] = ["all-agents", "spider"];

/// Configuration of the WWT simulator.
#[derive(Debug, Clone)]
pub struct WwtConfig {
    /// Number of page objects (paper: 100k; quick presets use hundreds).
    pub num_objects: usize,
    /// Series length in days (paper: 550).
    pub length: usize,
    /// Short seasonality period (paper: 7 = weekly).
    pub short_period: usize,
    /// Long seasonality period (paper: 365 = annual). Quick presets shrink
    /// it proportionally with `length`.
    pub long_period: usize,
    /// Strength of the weekly modulation.
    pub weekly_depth: f64,
    /// Strength of the annual modulation.
    pub annual_depth: f64,
    /// Log-normal sigma of the per-page scale (controls dynamic-range
    /// heterogeneity).
    pub scale_sigma: f64,
    /// Multiplicative observation noise sigma.
    pub noise_sigma: f64,
}

impl Default for WwtConfig {
    fn default() -> Self {
        WwtConfig {
            num_objects: 500,
            length: 550,
            short_period: 7,
            long_period: 365,
            weekly_depth: 0.3,
            annual_depth: 0.35,
            scale_sigma: 1.6,
            noise_sigma: 0.08,
        }
    }
}

impl WwtConfig {
    /// A CI-sized preset: shorter series with the long period shrunk
    /// proportionally (length 160, periods 7 / 56) so the two-peak
    /// autocorrelation shape survives at a fraction of the compute.
    pub fn quick(num_objects: usize) -> Self {
        WwtConfig { num_objects, length: 160, short_period: 7, long_period: 56, ..WwtConfig::default() }
    }
}

/// The schema of the (simulated) WWT dataset — Table 6 of the paper.
pub fn schema(cfg: &WwtConfig) -> Schema {
    Schema::new(
        vec![
            FieldSpec::new("Wikipedia domain", FieldKind::categorical(DOMAINS)),
            FieldSpec::new("access type", FieldKind::categorical(ACCESS_TYPES)),
            FieldSpec::new("agent", FieldKind::categorical(AGENTS)),
        ],
        vec![FieldSpec::new("views", FieldKind::continuous(0.0, 50_000.0))],
        cfg.length,
    )
    .with_timescale("daily")
}

/// Generates a simulated WWT dataset.
pub fn generate<R: Rng + ?Sized>(cfg: &WwtConfig, rng: &mut R) -> Dataset {
    let schema = schema(cfg);
    // Skewed attribute marginals, loosely matching the real histograms:
    // en.wikipedia dominates, spiders are the minority agent.
    let domain_weights = [8.0, 9.0, 24.0, 7.0, 9.0, 9.0, 8.0, 4.0, 7.0];
    let access_weights = [46.0, 33.0, 21.0];
    let agent_weights = [77.0, 23.0];

    let scale_dist = LogNormal::new(4.0, cfg.scale_sigma).expect("valid lognormal");
    let noise = Normal::new(0.0, cfg.noise_sigma).expect("valid normal");

    let mut objects = Vec::with_capacity(cfg.num_objects);
    for _ in 0..cfg.num_objects {
        let domain = sample_weighted(&domain_weights, rng);
        let access = sample_weighted(&access_weights, rng);
        let agent = sample_weighted(&agent_weights, rng);

        // Attribute-dependent level: big wikis get more traffic, spiders less.
        let domain_boost = match domain {
            2 => 2.2,         // en
            1 | 4 | 5 => 1.4, // de, fr, ja
            7 => 0.6,         // mediawiki
            _ => 1.0,
        };
        let agent_boost = if agent == 1 { 0.25 } else { 1.0 };
        let level = scale_dist.sample(rng) * domain_boost * agent_boost;

        let week = weekly_profile(cfg.short_period, cfg.weekly_depth, rng);
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let trend: f64 = rng.gen_range(-0.1..0.25); // mild growth/decay over the window

        let records = (0..cfg.length)
            .map(|t| {
                let weekly = week[t % cfg.short_period];
                let annual = 1.0
                    + cfg.annual_depth
                        * (std::f64::consts::TAU * t as f64 / cfg.long_period as f64 + phase).sin();
                let drift = 1.0 + trend * t as f64 / cfg.length as f64;
                let eps = noise.sample(rng).exp();
                let v = non_negative(level * weekly * annual * drift * eps);
                vec![Value::Cont(v)]
            })
            .collect();

        objects.push(TimeSeriesObject {
            attributes: vec![Value::Cat(domain), Value::Cat(access), Value::Cat(agent)],
            records,
        });
    }
    Dataset::new(schema, objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let cfg = WwtConfig::quick(20);
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(&cfg, &mut rng);
        assert_eq!(d.len(), 20);
        assert!(d.objects.iter().all(|o| o.len() == cfg.length));
        assert_eq!(d.schema.num_attributes(), 3);
        assert_eq!(d.schema.num_features(), 1);
    }

    #[test]
    fn views_are_non_negative_and_heavy_tailed() {
        let cfg = WwtConfig::quick(120);
        let mut rng = StdRng::seed_from_u64(2);
        let d = generate(&cfg, &mut rng);
        let mut maxima: Vec<f64> =
            d.objects.iter().map(|o| o.feature_series(0).into_iter().fold(0.0, f64::max)).collect();
        assert!(maxima.iter().all(|&m| m >= 0.0));
        maxima.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Heavy tail: the largest page dwarfs the median page.
        let median = maxima[maxima.len() / 2];
        let top = maxima[maxima.len() - 1];
        assert!(top > 10.0 * median, "expected heavy tail: top {top} vs median {median}");
    }

    #[test]
    fn weekly_seasonality_is_visible_in_autocovariance() {
        let cfg = WwtConfig::quick(40);
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(&cfg, &mut rng);
        // Average the lag-7 vs lag-3 autocorrelation across pages; weekly
        // structure should make lag-7 clearly larger.
        let mut ac7 = 0.0;
        let mut ac3 = 0.0;
        for o in &d.objects {
            let s = o.feature_series(0);
            ac7 += autocorr(&s, 7);
            ac3 += autocorr(&s, 3);
        }
        assert!(ac7 > ac3 + 0.05, "lag-7 {ac7} should exceed lag-3 {ac3}");
    }

    #[test]
    fn spiders_see_less_traffic() {
        let cfg = WwtConfig::quick(300);
        let mut rng = StdRng::seed_from_u64(4);
        let d = generate(&cfg, &mut rng);
        let mean_views = |agent: usize| -> f64 {
            let f = d.filter_by_attribute(2, agent);
            let mut total = 0.0;
            let mut n = 0.0;
            for o in &f.objects {
                total += o.feature_series(0).iter().sum::<f64>();
                n += o.len() as f64;
            }
            total / n
        };
        assert!(mean_views(0) > mean_views(1) * 1.5);
    }

    fn autocorr(s: &[f64], lag: usize) -> f64 {
        let n = s.len();
        let mean = s.iter().sum::<f64>() / n as f64;
        let var: f64 = s.iter().map(|v| (v - mean).powi(2)).sum::<f64>();
        if var == 0.0 {
            return 0.0;
        }
        let cov: f64 = (0..n - lag).map(|i| (s[i] - mean) * (s[i + lag] - mean)).sum();
        cov / var
    }
}
