//! A tiny sine-mixture toy dataset for smoke tests and the quickstart
//! example.
//!
//! Each object is a noisy sinusoid whose frequency class is its single
//! categorical attribute and whose amplitude varies across objects (so the
//! auto-normalization path is exercised). Because the ground-truth structure
//! is known in closed form, this dataset makes fast, deterministic
//! integration tests possible.

use dg_data::{Dataset, FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Configuration of the sine-mixture toy dataset.
#[derive(Debug, Clone)]
pub struct SineConfig {
    /// Number of objects.
    pub num_objects: usize,
    /// Series length.
    pub length: usize,
    /// Periods (in steps) of the frequency classes; the class index is the
    /// object's attribute.
    pub periods: Vec<usize>,
    /// Additive noise sigma (relative to amplitude 1).
    pub noise_sigma: f64,
}

impl Default for SineConfig {
    fn default() -> Self {
        SineConfig { num_objects: 200, length: 48, periods: vec![8, 16], noise_sigma: 0.05 }
    }
}

/// Schema of the sine dataset.
pub fn schema(cfg: &SineConfig) -> Schema {
    let classes: Vec<String> = (0..cfg.periods.len()).map(|i| format!("period-{}", cfg.periods[i])).collect();
    Schema::new(
        vec![FieldSpec::new("frequency class", FieldKind::categorical(classes))],
        vec![FieldSpec::new("signal", FieldKind::continuous(-12.0, 12.0))],
        cfg.length,
    )
    .with_timescale("steps")
}

/// Generates the sine-mixture dataset.
pub fn generate<R: Rng + ?Sized>(cfg: &SineConfig, rng: &mut R) -> Dataset {
    let schema = schema(cfg);
    let noise = Normal::new(0.0, cfg.noise_sigma).expect("valid normal");
    let mut objects = Vec::with_capacity(cfg.num_objects);
    for _ in 0..cfg.num_objects {
        let class = rng.gen_range(0..cfg.periods.len());
        let period = cfg.periods[class] as f64;
        let amp: f64 = rng.gen_range(0.5..8.0); // wide dynamic range on purpose
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let records = (0..cfg.length)
            .map(|t| {
                let v =
                    amp * (std::f64::consts::TAU * t as f64 / period + phase).sin() + amp * noise.sample(rng);
                vec![Value::Cont(v)]
            })
            .collect();
        objects.push(TimeSeriesObject { attributes: vec![Value::Cat(class)], records });
    }
    Dataset::new(schema, objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let cfg = SineConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(&cfg, &mut rng);
        assert_eq!(d.len(), 200);
        assert!(d.objects.iter().all(|o| o.len() == 48));
    }

    #[test]
    fn class_matches_dominant_period() {
        let cfg = SineConfig { noise_sigma: 0.0, ..SineConfig::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let d = generate(&cfg, &mut rng);
        for o in d.objects.iter().take(20) {
            let class = o.attributes[0].cat();
            let period = cfg.periods[class];
            let s = o.feature_series(0);
            // A pure sinusoid satisfies s[t + period] == s[t].
            for t in 0..s.len() - period {
                assert!((s[t] - s[t + period]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn amplitudes_vary_across_objects() {
        let cfg = SineConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(&cfg, &mut rng);
        let amps: Vec<f64> = d
            .objects
            .iter()
            .map(|o| o.feature_series(0).iter().fold(0.0_f64, |a, &b| a.max(b.abs())))
            .collect();
        let max = amps.iter().copied().fold(0.0, f64::max);
        let min = amps.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max > 3.0 * min, "expected wide dynamic range: {min}..{max}");
    }
}
