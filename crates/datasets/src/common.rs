//! Shared helpers for the synthetic dataset generators.

use rand::Rng;

/// Samples an index from an (unnormalized) weight vector.
pub fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// A smooth day-of-week style multiplicative profile of the given period:
/// high on "weekdays", low on the final two slots, with per-instance jitter.
pub fn weekly_profile<R: Rng + ?Sized>(period: usize, depth: f64, rng: &mut R) -> Vec<f64> {
    let mut profile = Vec::with_capacity(period);
    for d in 0..period {
        let weekend = d + 2 >= period; // last two slots
        let base = if weekend { 1.0 - depth } else { 1.0 + depth * 0.4 };
        let jitter = 1.0 + rng.gen_range(-0.05..0.05);
        profile.push((base * jitter).max(0.05));
    }
    profile
}

/// Clamps to a non-negative value.
pub fn non_negative(v: f64) -> f64 {
    v.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_sampling_matches_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&weights, &mut rng)] += 1;
        }
        let total: usize = counts.iter().sum();
        for (c, w) in counts.iter().zip(&weights) {
            let p = *c as f64 / total as f64;
            let expect = w / 10.0;
            assert!((p - expect).abs() < 0.02, "p={p} expect={expect}");
        }
    }

    #[test]
    fn weighted_sampling_degenerate_single_bucket() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            assert_eq!(sample_weighted(&[2.5], &mut rng), 0);
        }
    }

    #[test]
    fn weekly_profile_has_weekend_dip() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = weekly_profile(7, 0.5, &mut rng);
        assert_eq!(p.len(), 7);
        let weekday_avg: f64 = p[..5].iter().sum::<f64>() / 5.0;
        let weekend_avg: f64 = p[5..].iter().sum::<f64>() / 2.0;
        assert!(weekday_avg > weekend_avg, "weekdays {weekday_avg} vs weekend {weekend_avg}");
        assert!(p.iter().all(|&v| v > 0.0));
    }
}
