//! Synthetic substitute for the Google Cluster Usage Traces (GCUT) dataset.
//!
//! The real trace logs per-task resource-usage measurements (up to nine
//! features, Table 5) plus one attribute: the task's end event type. We
//! simulate the structural properties the paper measures:
//!
//! * **variable-length series** with a **bimodal duration distribution**
//!   (Fig. 7) — short batch tasks vs long-running services;
//! * an **end-event attribute correlated with the dynamics**: failing tasks
//!   exhibit rising memory usage (the §1 motivating correlation), evicted
//!   tasks are cut short, finished tasks wind down cleanly — this is what
//!   makes the end event *predictable from the time series* (Fig. 11);
//! * the skewed event histogram of Fig. 8.

use crate::common::{non_negative, sample_weighted};
use dg_data::{Dataset, FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// End event types (Fig. 8).
pub const END_EVENTS: [&str; 4] = ["EVICT", "FAIL", "FINISH", "KILL"];

/// The nine resource-usage features of Table 5, in order.
pub const FEATURES: [&str; 9] = [
    "CPU rate",
    "maximum CPU rate",
    "sampled CPU usage",
    "canonical memory usage",
    "assigned memory usage",
    "maximum memory usage",
    "unmapped page cache",
    "total page cache",
    "local disk space usage",
];

/// Configuration of the GCUT simulator.
#[derive(Debug, Clone)]
pub struct GcutConfig {
    /// Number of task objects (paper: 100k; quick presets use hundreds).
    pub num_objects: usize,
    /// Maximum series length (paper: 50 covers 97% of tasks).
    pub max_len: usize,
    /// Number of features to generate, 1..=9 (paper: 9; quick presets use 3:
    /// CPU rate, canonical memory, disk).
    pub num_features: usize,
}

impl Default for GcutConfig {
    fn default() -> Self {
        GcutConfig { num_objects: 500, max_len: 50, num_features: 9 }
    }
}

impl GcutConfig {
    /// CI-sized preset with 3 features.
    pub fn quick(num_objects: usize) -> Self {
        GcutConfig { num_objects, max_len: 50, num_features: 3 }
    }

    fn feature_indices(&self) -> Vec<usize> {
        match self.num_features {
            9 => (0..9).collect(),
            3 => vec![0, 3, 8], // CPU rate, canonical memory, disk
            n => (0..n).collect(),
        }
    }
}

/// The schema of the (simulated) GCUT dataset — Table 5 of the paper.
pub fn schema(cfg: &GcutConfig) -> Schema {
    assert!((1..=9).contains(&cfg.num_features), "GCUT supports 1..=9 features");
    let feats = cfg
        .feature_indices()
        .into_iter()
        .map(|i| FieldSpec::new(FEATURES[i], FieldKind::continuous(0.0, 1.0)))
        .collect();
    Schema::new(
        vec![FieldSpec::new("end event type", FieldKind::categorical(END_EVENTS))],
        feats,
        cfg.max_len,
    )
    .with_timescale("five-minutely")
}

/// Generates a simulated GCUT dataset.
pub fn generate<R: Rng + ?Sized>(cfg: &GcutConfig, rng: &mut R) -> Dataset {
    let schema = schema(cfg);
    // Event marginals loosely matching Fig. 8: KILL and FINISH dominate.
    let event_weights = [6.0, 16.0, 34.0, 44.0];
    let cpu_level = LogNormal::new(-2.2_f64, 0.8).expect("valid lognormal");
    let mem_level = LogNormal::new(-2.5_f64, 0.7).expect("valid lognormal");
    let noise = Normal::new(0.0_f64, 0.15).expect("valid normal");
    let idxs = cfg.feature_indices();

    let mut objects = Vec::with_capacity(cfg.num_objects);
    for _ in 0..cfg.num_objects {
        let event = sample_weighted(&event_weights, rng);

        // Bimodal durations: short batch mode vs long service mode. The
        // mixture weight depends on the event type (FINISH tasks are mostly
        // short batch jobs; KILLed tasks tend to be long-running services).
        let long_prob = match event {
            0 => 0.35, // EVICT
            1 => 0.45, // FAIL
            2 => 0.20, // FINISH
            3 => 0.75, // KILL
            _ => unreachable!(),
        };
        // Long mode spans [max_len/2, 0.9*max_len] (25..=45 at the paper's
        // max_len = 50); short mode [2, max_len/5] (2..=10 at max_len = 50).
        let len = if rng.gen_bool(long_prob) {
            let lo = (cfg.max_len / 2).max(1);
            let hi = (cfg.max_len * 9 / 10).max(lo);
            rng.gen_range(lo..=hi)
        } else {
            let hi = (cfg.max_len / 5).max(2).min(cfg.max_len);
            rng.gen_range(2.min(hi)..=hi)
        };

        let cpu0 = cpu_level.sample(rng).min(0.9);
        let mem0 = mem_level.sample(rng).min(0.6);
        // FAIL tasks leak memory: strong upward trend; FINISH winds down.
        let mem_trend = match event {
            1 => rng.gen_range(0.5..1.0),  // FAIL: leak toward the limit
            2 => rng.gen_range(-0.3..0.0), // FINISH: tidy wind-down
            _ => rng.gen_range(-0.05..0.15),
        };
        // EVICTed tasks run hot on CPU (they are preempted for interference).
        let cpu_boost = if event == 0 { 1.8 } else { 1.0 };
        let disk0: f64 = rng.gen_range(0.001..0.05);

        let records = (0..len)
            .map(|t| {
                let progress = t as f64 / cfg.max_len as f64;
                let cpu = non_negative(cpu0 * cpu_boost * (1.0 + noise.sample(rng))).min(1.0);
                let mem = non_negative(mem0 + mem_trend * progress + 0.02 * noise.sample(rng)).min(1.0);
                let disk = non_negative(disk0 * (1.0 + 0.5 * noise.sample(rng))).min(1.0);
                let cache = non_negative(0.4 * mem + 0.02 * noise.sample(rng).abs()).min(1.0);
                // Full nine-feature layout; project onto the configured subset.
                let all = [
                    cpu,                                                     // CPU rate
                    (cpu * (1.2 + 0.3 * noise.sample(rng).abs())).min(1.0),  // max CPU
                    (cpu * (1.0 + 0.2 * noise.sample(rng))).clamp(0.0, 1.0), // sampled CPU
                    mem,                                                     // canonical memory
                    (mem * 1.15).min(1.0),                                   // assigned memory
                    (mem * (1.1 + 0.2 * noise.sample(rng).abs())).min(1.0),  // max memory
                    (cache * 0.5).min(1.0),                                  // unmapped cache
                    cache,                                                   // total cache
                    disk,                                                    // disk
                ];
                idxs.iter().map(|&i| Value::Cont(all[i])).collect()
            })
            .collect();

        objects.push(TimeSeriesObject { attributes: vec![Value::Cat(event)], records });
    }
    Dataset::new(schema, objects)
}

/// A raw (pre-cleaning) task log entry, modelling the defects the paper
/// filters in Appendix A.
#[derive(Debug, Clone)]
pub struct RawTask {
    /// The task itself (attributes + measurement records).
    pub task: TimeSeriesObject,
    /// Appendix-A defect classes.
    pub defect: Option<RawDefect>,
}

/// The four defect classes of Appendix A, with the paper's observed rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawDefect {
    /// "tasks don't have corresponding end events" (0.17% in the paper).
    MissingEndEvent,
    /// "tasks have discontinuous measurement records" (1.25%).
    DiscontinuousRecords,
    /// "tasks have an empty measurement record" (6.25%).
    EmptyMeasurements,
    /// "tasks have mismatched end times" (3.34%).
    MismatchedEndTimes,
}

/// Appendix-A defect rates, in enum order.
pub const DEFECT_RATES: [(RawDefect, f64); 4] = [
    (RawDefect::MissingEndEvent, 0.0017),
    (RawDefect::DiscontinuousRecords, 0.0125),
    (RawDefect::EmptyMeasurements, 0.0625),
    (RawDefect::MismatchedEndTimes, 0.0334),
];

/// Generates a *raw* trace: clean tasks plus Appendix-A defects injected at
/// the paper's observed rates. Feed to [`clean`] to reproduce the paper's
/// preprocessing.
pub fn generate_raw<R: Rng + ?Sized>(cfg: &GcutConfig, rng: &mut R) -> Vec<RawTask> {
    let clean_data = generate(cfg, rng);
    clean_data
        .objects
        .into_iter()
        .map(|mut task| {
            let u: f64 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            let mut defect = None;
            for &(d, rate) in &DEFECT_RATES {
                acc += rate;
                if u < acc {
                    defect = Some(d);
                    break;
                }
            }
            if defect == Some(RawDefect::EmptyMeasurements) {
                task.records.clear();
            }
            RawTask { task, defect }
        })
        .collect()
}

/// Per-defect filtering counts reported by [`clean`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleaningReport {
    /// Tasks dropped for each Appendix-A defect class, in
    /// [`DEFECT_RATES`] order.
    pub dropped: [usize; 4],
    /// Tasks retained.
    pub kept: usize,
}

/// Reproduces the paper's Appendix-A preprocessing: drops every defective
/// task and returns the clean dataset plus the per-class filtering counts
/// (the numbers the paper itemizes: 0.17% / 1.25% / 6.25% / 3.34%).
pub fn clean(cfg: &GcutConfig, raw: Vec<RawTask>) -> (Dataset, CleaningReport) {
    let schema = schema(cfg);
    let mut report = CleaningReport::default();
    let mut objects = Vec::with_capacity(raw.len());
    for r in raw {
        match r.defect {
            Some(d) => {
                let idx = DEFECT_RATES.iter().position(|&(dd, _)| dd == d).expect("known defect");
                report.dropped[idx] += 1;
            }
            None => {
                objects.push(r.task);
                report.kept += 1;
            }
        }
    }
    (Dataset::new(schema, objects), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let cfg = GcutConfig::quick(80);
        let mut rng = StdRng::seed_from_u64(1);
        let d = generate(&cfg, &mut rng);
        assert_eq!(d.len(), 80);
        assert_eq!(d.schema.num_features(), 3);
        assert!(d.objects.iter().all(|o| !o.is_empty() && o.len() <= 50));
    }

    #[test]
    fn durations_are_bimodal() {
        let cfg = GcutConfig::quick(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let d = generate(&cfg, &mut rng);
        let lengths = d.lengths();
        let short = lengths.iter().filter(|&&l| l <= 12).count();
        let long = lengths.iter().filter(|&&l| l >= 25).count();
        let middle = lengths.iter().filter(|&&l| (13..25).contains(&l)).count();
        assert!(short > middle && long > middle, "bimodal: {short}/{middle}/{long}");
    }

    #[test]
    fn failing_tasks_leak_memory() {
        let cfg = GcutConfig { num_objects: 600, max_len: 50, num_features: 9 };
        let mut rng = StdRng::seed_from_u64(3);
        let d = generate(&cfg, &mut rng);
        // Mean end-minus-start memory delta per event type.
        let mem_delta = |event: usize| {
            let f = d.filter_by_attribute(0, event);
            let mut total = 0.0;
            let mut n = 0;
            for o in &f.objects {
                if o.len() >= 4 {
                    let s = o.feature_series(3);
                    total += s[s.len() - 1] - s[0];
                    n += 1;
                }
            }
            total / n.max(1) as f64
        };
        assert!(mem_delta(1) > mem_delta(2) + 0.05, "FAIL should leak vs FINISH");
    }

    #[test]
    fn all_features_stay_in_unit_interval() {
        let cfg = GcutConfig { num_objects: 100, max_len: 50, num_features: 9 };
        let mut rng = StdRng::seed_from_u64(4);
        let d = generate(&cfg, &mut rng);
        for o in &d.objects {
            for r in &o.records {
                for v in r {
                    let x = v.cont();
                    assert!((0.0..=1.0).contains(&x), "feature out of range: {x}");
                }
            }
        }
    }

    #[test]
    fn raw_generation_injects_defects_at_appendix_a_rates() {
        let cfg = GcutConfig::quick(20_000);
        let mut rng = StdRng::seed_from_u64(6);
        let raw = generate_raw(&cfg, &mut rng);
        let (data, report) = clean(&cfg, raw);
        assert_eq!(report.kept, data.len());
        assert_eq!(report.kept + report.dropped.iter().sum::<usize>(), 20_000);
        // Each defect class should appear near its Appendix-A rate.
        for (i, &(_, rate)) in DEFECT_RATES.iter().enumerate() {
            let observed = report.dropped[i] as f64 / 20_000.0;
            assert!(
                (observed - rate).abs() < rate * 0.5 + 0.001,
                "defect {i}: observed {observed}, expected ~{rate}"
            );
        }
        // Total drop rate ~11% (paper: 0.17 + 1.25 + 6.25 + 3.34 = 11.01%).
        let total = report.dropped.iter().sum::<usize>() as f64 / 20_000.0;
        assert!((total - 0.1101).abs() < 0.01, "total drop rate {total}");
    }

    #[test]
    fn cleaned_dataset_has_no_empty_series() {
        let cfg = GcutConfig::quick(2_000);
        let mut rng = StdRng::seed_from_u64(7);
        let raw = generate_raw(&cfg, &mut rng);
        // Empty-measurement defects exist in the raw stream...
        assert!(raw.iter().any(|r| r.task.records.is_empty()));
        // ...and none survive cleaning.
        let (data, _) = clean(&cfg, raw);
        assert!(data.objects.iter().all(|o| !o.records.is_empty()));
    }

    #[test]
    fn event_marginals_are_skewed_toward_kill_and_finish() {
        let cfg = GcutConfig::quick(2000);
        let mut rng = StdRng::seed_from_u64(5);
        let d = generate(&cfg, &mut rng);
        let counts = d.attribute_counts(0);
        assert!(counts[3] > counts[0], "KILL should outnumber EVICT");
        assert!(counts[2] > counts[1], "FINISH should outnumber FAIL");
    }
}
