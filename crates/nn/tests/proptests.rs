//! Property-based tests for the autodiff engine: every differentiable op is
//! checked against finite differences on random inputs, and algebraic
//! tensor identities are verified.

use dg_nn::gradcheck::{
    check_bf16_kernel_equivalence, check_input_gradient, check_kernel_equivalence_cycles,
    check_plan_replay_equivalence, check_workspace_determinism,
};
use dg_nn::graph::{Graph, Var};
use dg_nn::kernels::{self, Precision};
use dg_nn::params::ParamStore;
use dg_nn::tensor::Tensor;
use dg_nn::workspace::Workspace;
use proptest::prelude::*;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols).prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn matmul_is_associative_enough(a in arb_tensor(3, 4), b in arb_tensor(4, 5), c in arb_tensor(5, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_distributes_over_add(a in arb_tensor(3, 4), b in arb_tensor(4, 3), c in arb_tensor(4, 3)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_variants_agree(a in arb_tensor(4, 6), b in arb_tensor(5, 6), c in arb_tensor(4, 5)) {
        let bt = a.matmul_bt(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in bt.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let at = a.matmul_at(&c); // (4x6)^T * (4x5) = 6x5
        let explicit = a.transpose().matmul(&c);
        for (x, y) in at.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn every_unary_op_has_correct_gradients(x in arb_tensor(2, 3), which in 0usize..7) {
        let build = move |g: &mut Graph, v: Var| {
            let y = match which {
                0 => g.tanh(v),
                1 => g.sigmoid(v),
                2 => g.leaky_relu(v, 0.3),
                3 => g.softmax(v),
                4 => {
                    let s = g.square(v);
                    let s = g.add_scalar(s, 0.3);
                    g.sqrt(s)
                }
                5 => g.scale(v, -1.7),
                _ => g.add_scalar(v, 2.5),
            };
            let sq = g.square(y);
            g.mean_all(sq)
        };
        let report = check_input_gradient(build, &x, 1e-3);
        prop_assert!(report.passes(3e-2), "op {} failed: {:?}", which, report);
    }

    #[test]
    fn binary_and_reduction_ops_have_correct_gradients(x in arb_tensor(3, 3), which in 0usize..5) {
        let build = move |g: &mut Graph, v: Var| {
            match which {
                0 => {
                    let s = g.sum_rows(v);
                    let y = g.mul_col(v, s);
                    g.sum_all(y)
                }
                1 => {
                    let a = g.slice_cols(v, 0, 2);
                    let b = g.slice_cols(v, 1, 3);
                    let m = g.mul(a, b);
                    g.mean_all(m)
                }
                2 => {
                    let c = g.concat_cols(&[v, v]);
                    let sq = g.square(c);
                    g.sum_all(sq)
                }
                3 => {
                    let t = g.tanh(v);
                    let d = g.sub(v, t);
                    let sq = g.square(d);
                    g.mean_all(sq)
                }
                _ => {
                    let s = g.softmax(v);
                    let l = g.mul(s, v);
                    g.sum_all(l)
                }
            }
        };
        let report = check_input_gradient(build, &x, 1e-3);
        prop_assert!(report.passes(3e-2), "case {} failed: {:?}", which, report);
    }

    #[test]
    fn softmax_rows_live_on_the_simplex(x in arb_tensor(4, 5)) {
        let mut g = Graph::new();
        let v = g.constant(x);
        let s = g.softmax(v);
        let out = g.value(s);
        for r in 0..out.rows() {
            let sum: f32 = out.row_slice(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(out.row_slice(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn pooled_workspace_execution_is_bitwise_identical_to_fresh(
        x0 in arb_tensor(3, 4),
        w0 in arb_tensor(4, 4),
        ops in prop::collection::vec(0usize..7, 1..8),
    ) {
        // A random width-preserving op sequence starting from 3x4 inputs,
        // closed by square + mean_all into a scalar loss. Replayed out of a
        // reused pooled workspace for 3 consecutive cycles at worker counts
        // 1-16, every node value and gradient must be bitwise identical to a
        // fresh-allocation (unpooled) execution.
        let program = move |g: &mut Graph| -> Var {
            let mut h = g.input(x0.clone());
            let w = g.constant(w0.clone());
            for &op in &ops {
                h = match op {
                    0 => g.tanh(h),
                    1 => g.sigmoid(h),
                    2 => g.leaky_relu(h, 0.2),
                    3 => g.softmax(h),
                    4 => g.matmul(h, w),
                    5 => {
                        let s = g.sum_rows(h);
                        g.mul_col(h, s)
                    }
                    _ => {
                        let a = g.slice_cols(h, 0, 2);
                        let b = g.slice_cols(h, 2, 4);
                        g.concat_cols(&[a, b])
                    }
                };
            }
            let sq = g.square(h);
            g.mean_all(sq)
        };
        let err = check_workspace_determinism(program, 3, &[1, 2, 3, 4, 7, 11, 16]);
        prop_assert!(err.is_none(), "{}", err.unwrap());
    }

    #[test]
    fn gradient_accumulates_linearly(x in arb_tensor(2, 2), k in 1usize..5) {
        // loss = k * mean(x^2) computed as a sum of k identical terms; the
        // gradient must be exactly k times the single-term gradient.
        let single = {
            let mut g = Graph::new();
            let v = g.input(x.clone());
            let sq = g.square(v);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.grad(v).unwrap().clone()
        };
        let mut g = Graph::new();
        let v = g.input(x);
        let mut acc = None;
        for _ in 0..k {
            let sq = g.square(v);
            let m = g.mean_all(sq);
            acc = Some(match acc {
                None => m,
                Some(a) => g.add(a, m),
            });
        }
        g.backward(acc.unwrap());
        let total = g.grad(v).unwrap();
        for (t, s) in total.as_slice().iter().zip(single.as_slice()) {
            prop_assert!((t - s * k as f32).abs() < 1e-4);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_tiers_are_bitwise_identical_on_random_ragged_shapes(
        m in 1usize..18,
        k in 0usize..34,
        n in 1usize..27,
        seed in 0u64..1_000,
    ) {
        // All dispatch tiers, all matmul variants, threads 1..16, including
        // k = 0 products and tails narrower than one register tile — run for
        // two consecutive cycles so the reused (parked) pool workers serve
        // the same dispatches again.
        let err = check_kernel_equivalence_cycles(m, k, n, &[1, 2, 3, 5, 8, 16], 2, seed);
        prop_assert!(err.is_none(), "{}", err.unwrap());
    }

    #[test]
    fn fused_concat_matmul_is_bitwise_identical_to_unfused(
        x in arb_tensor(5, 4),
        h in arb_tensor(5, 3),
        w in arb_tensor(7, 6),
    ) {
        let run = |fused: bool| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let hv = g.input(h.clone());
            let wv = g.input(w.clone());
            let y = if fused {
                g.concat_matmul(&[xv, hv], wv)
            } else {
                let cat = g.concat_cols(&[xv, hv]);
                g.matmul(cat, wv)
            };
            let s = g.square(y);
            let loss = g.sum_all(s);
            g.backward(loss);
            (
                g.value(y).clone(),
                g.grad(xv).unwrap().clone(),
                g.grad(hv).unwrap().clone(),
                g.grad(wv).unwrap().clone(),
            )
        };
        let fused = run(true);
        let unfused = run(false);
        prop_assert_eq!(fused.0.as_slice(), unfused.0.as_slice());
        prop_assert_eq!(fused.1.as_slice(), unfused.1.as_slice());
        prop_assert_eq!(fused.2.as_slice(), unfused.2.as_slice());
        prop_assert_eq!(fused.3.as_slice(), unfused.3.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bf16_tiers_are_deterministic_on_random_ragged_shapes(
        m in 1usize..18,
        k in 0usize..34,
        n in 1usize..27,
        seed in 0u64..1_000,
    ) {
        // The bf16 counterpart of the f32 tier sweep: Scalar and Portable
        // must be bitwise identical to the serial scalar bf16 reference for
        // every transpose variant and worker count, the scalar bf16 result
        // must equal the f32 scalar kernel on pre-rounded operands, and the
        // Native FMA tier must be bitwise self-consistent across threads.
        let err = check_bf16_kernel_equivalence(m, k, n, &[1, 2, 3, 5, 8, 16], seed);
        prop_assert!(err.is_none(), "{}", err.unwrap());
    }

    #[test]
    fn bf16_rounding_is_idempotent_and_packing_is_elementwise(
        vals in prop::collection::vec(-8.0f32..8.0, 1..64),
    ) {
        // bf16 is a storage format: re-rounding an already-rounded value is a
        // no-op, decode(encode(x)) == round(x), and pack_bf16 is exactly the
        // elementwise encoding.
        for &v in &vals {
            let once = kernels::bf16_round(v);
            prop_assert_eq!(kernels::bf16_round(once).to_bits(), once.to_bits());
            prop_assert_eq!(kernels::bf16_from_bits(kernels::bf16_bits(v)).to_bits(), once.to_bits());
        }
        let mut packed = Vec::new();
        kernels::pack_bf16(&vals, &mut packed);
        prop_assert_eq!(packed.len(), vals.len());
        for (&bits, &v) in packed.iter().zip(&vals) {
            prop_assert_eq!(bits, kernels::bf16_bits(v));
        }
    }

    #[test]
    fn bf16_bt_panel_is_the_rounded_transpose(b in arb_tensor(5, 7)) {
        // pack_bt_bf16 lays an n x k row-major matrix out as a k x n bf16
        // panel: panel[kk * n + nn] must be the rounded b[nn, kk].
        let (n, k) = (b.rows(), b.cols());
        let mut panel = Vec::new();
        kernels::pack_bt_bf16(b.as_slice(), n, k, &mut panel);
        prop_assert_eq!(panel.len(), k * n);
        for nn in 0..n {
            for kk in 0..k {
                prop_assert_eq!(panel[kk * n + nn], kernels::bf16_bits(b.as_slice()[nn * k + kk]));
            }
        }
    }

    #[test]
    fn bf16_weight_cache_is_bitwise_invisible_across_reuse(
        x in arb_tensor(3, 4),
        h in arb_tensor(3, 3),
        w_cm in arb_tensor(7, 6),
        w_bt in arb_tensor(5, 6),
    ) {
        // The packed-weight cache keyed by ParamId (engaged via frozen_param)
        // must produce bitwise identical bf16 results to the uncached path
        // (plain constants, re-packed per call), across pooled-workspace
        // reuse. This is the inference-tier contract behind Sampler::with_precision.
        let mut store = ParamStore::new();
        let id_cm = store.add("w_cm", w_cm.clone());
        let id_bt = store.add("w_bt", w_bt.clone());
        let run = |cached: bool, ws: Workspace| -> (Vec<f32>, Workspace) {
            let mut g = Graph::with_workspace(ws);
            let xv = g.constant(x.clone());
            let hv = g.constant(h.clone());
            let (wc, wb) = if cached {
                (g.frozen_param(&store, id_cm), g.frozen_param(&store, id_bt))
            } else {
                (g.constant(w_cm.clone()), g.constant(w_bt.clone()))
            };
            let gates = g.concat_matmul(&[xv, hv], wc);
            let act = g.tanh(gates);
            let out = g.matmul_bt(act, wb);
            let v = g.value(out).as_slice().to_vec();
            (v, g.finish())
        };
        let mut ws_cached = Workspace::new().with_precision(Precision::Bf16);
        let mut ws_plain = Workspace::new().with_precision(Precision::Bf16);
        for cycle in 0..3 {
            let (got, got_plain);
            (got, ws_cached) = run(true, ws_cached);
            (got_plain, ws_plain) = run(false, ws_plain);
            for (a, b) in got.iter().zip(&got_plain) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "cycle {} diverged", cycle);
            }
        }
        prop_assert_eq!(ws_cached.packed_bf16_entries(), 2);
        prop_assert_eq!(ws_plain.packed_bf16_entries(), 0);
    }
}

/// A deterministic pseudo-random tensor (splitmix-style) so replay tests can
/// derive per-shape weights and inputs from a proptest-chosen seed without
/// threading `rand` through strategy composition.
fn tensor_from_seed(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
    let data = (0..rows * cols)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generation-plan replay contract: a tape recorded once through
    /// input slots and frozen parameters, then replayed with fresh slot
    /// bindings, must be bitwise identical to re-recording the whole graph
    /// per call — across random ragged shapes, worker counts 1..8, both
    /// precision tiers, and repeated reuse cycles of the same executor
    /// (which also proves the cached f32 `pack_bt` panels are invisible).
    #[test]
    fn plan_replay_is_bitwise_identical_to_rerecording_on_random_shapes(
        m in 1usize..9,
        k in 1usize..11,
        h in 1usize..10,
        bf16 in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", tensor_from_seed(k, h, seed ^ 0xA1));
        let b1 = store.add("b1", tensor_from_seed(1, h, seed ^ 0xA2));
        let w2 = store.add("w2", tensor_from_seed(k, h, seed ^ 0xA3));
        let program = |g: &mut Graph, xs: &[Tensor]| {
            let x = g.input_slot(xs[0].clone());
            let w1v = g.frozen_param(&store, w1);
            let b1v = g.frozen_param(&store, b1);
            let w2v = g.frozen_param(&store, w2);
            let pre = g.matmul(x, w1v);
            let pre = g.add_row(pre, b1v);
            let act = g.tanh(pre);
            g.matmul_bt(act, w2v)
        };
        let input_sets: Vec<Vec<Tensor>> =
            (0..3).map(|i| vec![tensor_from_seed(m, k, seed ^ (0xB0 + i))]).collect();
        let precision = if bf16 { Precision::Bf16 } else { Precision::F32 };
        let err = check_plan_replay_equivalence(program, &input_sets, &[1, 2, 4, 8], precision);
        prop_assert!(err.is_none(), "{}", err.unwrap());
    }
}
