//! Integration tests for the `DG_KERNEL` runtime dispatch knob.
//!
//! These run in a separate process from the unit tests so the `OnceLock`
//! behind [`dg_nn::kernels::active`] observes whatever `DG_KERNEL` value the
//! harness (or the CI kernel-matrix job) set before launch. CI runs this
//! binary twice: once with the environment untouched (default dispatch) and
//! once with `DG_KERNEL=scalar` (forced fallback) — both must pass.

use dg_nn::gradcheck::{
    check_bf16_kernel_equivalence, check_graph_precision_determinism, check_kernel_equivalence_cycles,
};
use dg_nn::kernels::{self, KernelKind, Precision};
use dg_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tier `active()` should resolve to given the process environment.
fn expected_active() -> KernelKind {
    match std::env::var("DG_KERNEL") {
        Ok(v) => {
            kernels::resolve(KernelKind::parse(&v).expect("test launched with an invalid DG_KERNEL value"))
        }
        Err(_) => {
            if kernels::native_available() {
                KernelKind::Native
            } else {
                KernelKind::Portable
            }
        }
    }
}

#[test]
fn active_kind_honors_dg_kernel_env() {
    assert_eq!(kernels::active(), expected_active());
}

#[test]
fn active_dispatch_matches_forced_scalar_bitwise() {
    // Whatever tier the environment selected, the auto-dispatched public
    // matmuls must be bitwise identical to the forced scalar reference.
    let mut rng = StdRng::seed_from_u64(91);
    for (m, k, n) in [(5usize, 7usize, 9usize), (16, 32, 24), (100, 110, 400), (3, 129, 1)] {
        let a = Tensor::randn(m, k, 1.0, &mut rng);
        let b = Tensor::randn(k, n, 1.0, &mut rng);
        let auto = a.matmul(&b);
        let scalar = a.matmul_with_kind(&b, 1, KernelKind::Scalar);
        assert_eq!(
            auto.as_slice(),
            scalar.as_slice(),
            "auto dispatch ({:?}) diverged from scalar at {m}x{k}x{n}",
            kernels::active()
        );
        let bt = Tensor::randn(n, k, 1.0, &mut rng);
        assert_eq!(a.matmul_bt(&bt).as_slice(), a.matmul_bt_with_kind(&bt, 1, KernelKind::Scalar).as_slice());
        let at = Tensor::randn(m, n, 1.0, &mut rng);
        assert_eq!(a.matmul_at(&at).as_slice(), a.matmul_at_with_kind(&at, 1, KernelKind::Scalar).as_slice());
    }
}

#[test]
fn equivalence_suite_passes_under_ambient_dispatch() {
    // The full cross-tier / cross-thread sweep at one real model shape
    // (batch 100 x joint LSTM input 200 -> 4*100 gates) and one ragged one,
    // repeated for 2 cycles against the persistent worker pool.
    for (i, (m, k, n)) in [(100usize, 200usize, 400usize), (11, 23, 37)].into_iter().enumerate() {
        if let Some(err) = check_kernel_equivalence_cycles(m, k, n, &[1, 2, 8], 2, 3100 + i as u64) {
            panic!("{err}");
        }
    }
}

#[test]
fn precision_parse_round_trips_and_rejects_junk() {
    for p in [Precision::F32, Precision::Bf16] {
        assert_eq!(Precision::parse(p.name()), Some(p));
        assert_eq!(Precision::parse(&p.name().to_ascii_uppercase()), Some(p));
    }
    assert_eq!(Precision::parse("  bf16 "), Some(Precision::Bf16));
    for junk in ["", "f16", "fp32", "bfloat16", "half"] {
        assert_eq!(Precision::parse(junk), None, "{junk:?} should not parse");
    }
}

#[test]
fn bf16_resolution_tracks_cpu_features() {
    // Scalar and Portable always run as themselves; Native only survives
    // resolution when the AVX2+FMA bf16 path exists on this host, and the
    // ambient DG_KERNEL tier must resolve to something runnable.
    assert_eq!(kernels::resolve_bf16(KernelKind::Scalar), KernelKind::Scalar);
    assert_eq!(kernels::resolve_bf16(KernelKind::Portable), KernelKind::Portable);
    let expect_native =
        if kernels::native_bf16_available() { KernelKind::Native } else { KernelKind::Portable };
    assert_eq!(kernels::resolve_bf16(KernelKind::Native), expect_native);
    let ambient = kernels::resolve_bf16(kernels::active());
    assert!(
        ambient != KernelKind::Native || kernels::native_bf16_available(),
        "ambient bf16 resolution picked Native without AVX2+FMA"
    );
}

#[test]
fn bf16_equivalence_suite_passes_under_ambient_dispatch() {
    // The bf16 analogue of the f32 sweep above: same model-sized shape and a
    // ragged one, checking the storage-only rounding anchor, Scalar/Portable
    // bitwise identity across worker counts, and Native self-consistency.
    for (i, (m, k, n)) in [(100usize, 200usize, 400usize), (11, 23, 37)].into_iter().enumerate() {
        if let Some(err) = check_bf16_kernel_equivalence(m, k, n, &[1, 2, 8], 4100 + i as u64) {
            panic!("{err}");
        }
    }
}

#[test]
fn bf16_graph_execution_is_deterministic_under_ambient_dispatch() {
    // A gate-shaped forward program (fused concat-matmul + tanh + a BT
    // projection) run under Precision::Bf16: deterministic across worker
    // counts and pooled-workspace reuse, and measurably different from the
    // f32 execution (i.e. the switch reaches the kernels).
    let mut rng = StdRng::seed_from_u64(5200);
    let x = Tensor::randn(8, 12, 1.0, &mut rng);
    let h = Tensor::randn(8, 6, 1.0, &mut rng);
    let w_gates = Tensor::randn(18, 24, 0.5, &mut rng);
    let w_head = Tensor::randn(9, 24, 0.5, &mut rng);
    let program = move |g: &mut dg_nn::graph::Graph| {
        let xv = g.constant(x.clone());
        let hv = g.constant(h.clone());
        let wv = g.constant(w_gates.clone());
        let gates = g.concat_matmul(&[xv, hv], wv);
        let act = g.tanh(gates);
        let head = g.constant(w_head.clone());
        g.matmul_bt(act, head)
    };
    if let Some(err) = check_graph_precision_determinism(program, 2, &[1, 2, 8], true) {
        panic!("{err}");
    }
}
