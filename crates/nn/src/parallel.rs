//! Deterministic work splitting across OS threads.
//!
//! Every parallel kernel in this workspace follows the same discipline:
//!
//! 1. work is split into **contiguous chunks of whole output rows**;
//! 2. each output element is computed by exactly one thread, with the same
//!    per-element instruction sequence (and therefore the same floating-point
//!    rounding) as the serial kernel;
//! 3. no cross-thread reductions — anything that must *sum* partial results
//!    does so serially, in a fixed order, after the fan-out joins.
//!
//! Under these rules the parallel output is **bitwise identical** to the
//! serial output for *any* thread count, so training runs are reproducible
//! on any machine regardless of how many cores it has. The chunk boundaries
//! only decide which thread computes which rows, never the arithmetic.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! capped at [`MAX_DEFAULT_THREADS`]. The cap is no longer a
//! memory-bandwidth story: the register-tiled kernels in [`crate::kernels`]
//! are compute-bound at realistic shapes, but every worker pays a fixed
//! scoped spawn/join fee (measured as `spawn_overhead_us` in
//! `BENCH_kernels.json`), and past 8 workers that fee stops amortizing for
//! problems near the `PARALLEL_MACS` threshold — see the recalibration notes
//! on [`MAX_DEFAULT_THREADS`] and DESIGN.md §13. Override with the
//! `DG_NUM_THREADS` environment variable; `DG_NUM_THREADS=1` forces fully
//! serial execution.

use std::sync::OnceLock;

/// Hard cap on the default worker count; explicit requests (the `threads`
/// argument of the `*_threaded` kernels) may exceed it.
///
/// Re-derived for the register-tiled kernels (PR 5): the cap is now about
/// spawn/join amortization, not memory bandwidth. Each additional worker
/// costs a fixed scoped spawn/join fee (`spawn_overhead_us` in
/// `BENCH_kernels.json`), so past 8 workers the marginal chunk of a
/// `PARALLEL_MACS`-sized problem no longer covers its own launch cost even
/// when the tiled tiers retire MACs 4-6x faster than the old scalar kernel.
/// The `thread_sweep` table in `BENCH_kernels.json` records the measurement
/// on the build host; DESIGN.md section 13 has the derivation.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// Number of worker threads used by the parallel kernels.
///
/// Reads `DG_NUM_THREADS` once (values `>= 1` are honored verbatim); falls
/// back to `available_parallelism` capped at 8. The result is cached for the
/// lifetime of the process.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Some(n) = std::env::var("DG_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            return n;
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(MAX_DEFAULT_THREADS)
    })
}

/// Splits `out` into per-thread chunks of whole rows (`cols` elements each)
/// and runs `kernel(first_row, chunk)` on each chunk in its own scoped
/// thread.
///
/// `kernel` receives the index of the first row of its chunk plus the
/// mutable slice backing those rows, and must compute each row
/// independently; under that contract the result is bitwise identical to
/// `kernel(0, out)` for every `threads` value (see the module docs).
///
/// Runs inline (no threads spawned) when `threads <= 1` or there is only one
/// row of work.
pub fn run_row_chunks<F>(out: &mut [f32], cols: usize, threads: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = out.len().checked_div(cols).unwrap_or(0);
    debug_assert_eq!(rows * cols, out.len(), "run_row_chunks requires whole rows");
    let threads = threads.min(rows.max(1));
    if threads <= 1 || rows < 2 {
        kernel(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, chunk) in out.chunks_mut(chunk_rows * cols).enumerate() {
            let kernel = &kernel;
            scope.spawn(move || kernel(ci * chunk_rows, chunk));
        }
    });
}

/// Element-count threshold below which the elementwise kernels stay serial
/// (thread spawn/join overhead dominates under ~tens of thousands of
/// elements).
pub const PARALLEL_ELEMS: usize = 1 << 15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_at_least_one_and_stable() {
        let a = num_threads();
        let b = num_threads();
        assert!(a >= 1);
        assert_eq!(a, b, "num_threads must be cached");
    }

    #[test]
    fn chunks_cover_all_rows_exactly_once() {
        for rows in [1usize, 2, 3, 7, 16, 129] {
            for cols in [1usize, 3, 8] {
                for threads in [1usize, 2, 3, 5, 32] {
                    let mut out = vec![0.0_f32; rows * cols];
                    run_row_chunks(&mut out, cols, threads, |row0, chunk| {
                        let crows = chunk.len() / cols;
                        for r in 0..crows {
                            for c in 0..cols {
                                chunk[r * cols + c] += (row0 + r) as f32;
                            }
                        }
                    });
                    for r in 0..rows {
                        for c in 0..cols {
                            assert_eq!(
                                out[r * cols + c],
                                r as f32,
                                "row {r} col {c} (rows={rows} threads={threads})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn serial_fallback_runs_inline() {
        let mut out = vec![0.0_f32; 4];
        run_row_chunks(&mut out, 4, 1, |row0, chunk| {
            assert_eq!(row0, 0);
            chunk.fill(1.0);
        });
        assert_eq!(out, vec![1.0; 4]);
    }
}
