//! Deterministic work splitting across a persistent worker pool.
//!
//! Every parallel kernel in this workspace follows the same discipline:
//!
//! 1. work is split into **contiguous chunks of whole output rows**;
//! 2. each output element is computed by exactly one thread, with the same
//!    per-element instruction sequence (and therefore the same floating-point
//!    rounding) as the serial kernel;
//! 3. no cross-thread reductions — anything that must *sum* partial results
//!    does so serially, in a fixed order, after the fan-out joins.
//!
//! Under these rules the parallel output is **bitwise identical** to the
//! serial output for *any* thread count, so training runs are reproducible
//! on any machine regardless of how many cores it has. The chunk boundaries
//! only decide which thread computes which rows, never the arithmetic.
//!
//! # The persistent pool
//!
//! Fan-out used to spawn one scoped OS thread per chunk per call, a ~30 µs
//! fee (`spawn_overhead_us` in `BENCH_kernels.json`) that made the 256³
//! thread sweep *monotonically negative*. Dispatch now goes through a
//! process-wide [`WorkerPool`]: a lazily-grown, fixed set of workers that
//! park on a condvar between calls and are woken by writing a job into
//! their mailbox slot (`wake_overhead_us` in the bench — roughly an order
//! of magnitude cheaper than a spawn). The dispatching thread is always
//! **executor 0 and runs its own share of the work inline**, so an N-way
//! split wakes N−1 workers and a 1-way "parallel" call costs nothing.
//!
//! Determinism is unaffected by pooling: the *task → rows* assignment is a
//! pure function of the requested `threads` value (identical to the old
//! per-chunk spawn split), and which OS thread executes a task can never
//! change the arithmetic inside it. When fewer workers than tasks are
//! available, executors stride deterministically over the task list
//! (executor `e` of `E` runs tasks `e, e+E, e+2E, …`) — again only
//! ownership moves, never chunk boundaries.
//!
//! Nested fan-out (a pool task that itself reaches a parallel kernel — e.g.
//! a per-sample DP-SGD graph replayed inside a batch-level task) runs
//! **inline on the executing thread**: bitwise the result is identical, and
//! inlining can neither deadlock the fixed-size pool nor oversubscribe the
//! machine — parallelism already comes from the outer batch split.
//!
//! # Thread width
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! capped at [`MAX_DEFAULT_THREADS`]. The cap is a *wake-fee* story: the
//! register-tiled kernels in [`crate::kernels`] are compute-bound at
//! realistic shapes, but every woken worker pays the fixed mailbox fee, and
//! past 8 workers the marginal chunk of a near-[`PARALLEL_MACS`]-threshold
//! problem stops covering it — see `MACS_PER_WORKER` in `tensor.rs` and
//! DESIGN.md §9/§13. Override with the `DG_NUM_THREADS` environment
//! variable (`DG_NUM_THREADS=1` forces fully serial execution); note the
//! **env value is latched on first use** — set it before the first parallel
//! call, or use [`set_num_threads`] to change the width at runtime.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on the default worker count; explicit requests (the `threads`
/// argument of the `*_threaded` kernels, or [`set_num_threads`]) may exceed
/// it.
///
/// Re-derived for the pooled dispatcher: each additional worker costs a
/// fixed mailbox wake (`wake_overhead_us` in `BENCH_kernels.json`, ~an
/// order of magnitude below the old scoped-spawn fee), so the cap is no
/// longer what keeps small problems fast — the gradual `matmul_threads`
/// ramp in `tensor.rs` is. 8 remains the point past which the marginal
/// chunk of a `PARALLEL_MACS`-sized problem stops covering even the wake
/// fee; DESIGN.md §9 has the derivation.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// Element-count threshold below which the elementwise kernels stay serial
/// (dispatch overhead dominates under ~tens of thousands of elements).
pub const PARALLEL_ELEMS: usize = 1 << 15;

/// Hard cap on pool workers (the dispatcher itself is one more executor).
/// Explicit thread requests beyond this stride deterministically over the
/// task list instead of growing the pool without bound.
const MAX_POOL_WORKERS: usize = 31;

/// Runtime thread-width override; 0 means "use the latched default".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count returned by [`num_threads`] for the rest of
/// the process (or until called again); `0` restores the latched default.
///
/// This exists because the `DG_NUM_THREADS` default is read **once** and
/// cached — a test or bench that sets the variable after the first
/// [`num_threads`] call would otherwise silently keep running at the stale
/// width. Width changes are reproducibility-safe: every parallel kernel is
/// bitwise identical across thread counts.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Serializes tests (across this crate's modules) that mutate the global
/// [`set_num_threads`] override, so concurrent unit tests cannot observe
/// each other's widths.
#[cfg(test)]
pub(crate) fn override_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The latched default width: `DG_NUM_THREADS` if set to `>= 1` **at first
/// call**, else `available_parallelism` capped at [`MAX_DEFAULT_THREADS`].
fn default_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Some(n) = std::env::var("DG_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            return n;
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(MAX_DEFAULT_THREADS)
    })
}

/// Number of worker threads used by the parallel kernels.
///
/// Resolution order: a live [`set_num_threads`] override if one is set,
/// else the **latched** `DG_NUM_THREADS` / `available_parallelism` default
/// (read once, cached for the life of the process — see the module docs).
pub fn num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_num_threads(),
        n => n,
    }
}

/// Type-erased task body: `(ctx, executor, executors, tasks)` runs tasks
/// `executor, executor + executors, …` of the dispatch against the closure
/// behind `ctx`.
type TaskFn = unsafe fn(*const (), usize, usize, usize);

/// One enqueued dispatch share. `ctx` points at the dispatching thread's
/// stack-held closure; the dispatcher guarantees it outlives the job by
/// blocking on `latch` before returning (even on unwind).
struct Job {
    run: TaskFn,
    ctx: *const (),
    executor: usize,
    executors: usize,
    tasks: usize,
    latch: Arc<Latch>,
}

// SAFETY: `ctx` points at an `F: Fn(usize) + Sync` closure that the
// dispatching thread keeps alive until `latch` has been fully arrived at;
// the closure is only ever *shared* (`&F`) across threads, which `Sync`
// permits.
unsafe impl Send for Job {}

enum Msg {
    Run(Job),
    Exit,
}

/// A worker's mailbox: one slot, one condvar serving both "slot filled"
/// (worker waits) and "slot drained" (a second dispatcher waits). Both
/// waiters loop on their predicate, so the shared condvar cannot lose a
/// wakeup.
#[derive(Default)]
struct Slot {
    msg: Mutex<Option<Msg>>,
    cv: Condvar,
}

fn place(slot: &Slot, msg: Msg) {
    let mut g = slot.msg.lock().unwrap();
    while g.is_some() {
        g = slot.cv.wait(g).unwrap();
    }
    *g = Some(msg);
    drop(g);
    slot.cv.notify_all();
}

/// Completion latch for one dispatch. Heap-allocated and `Arc`-shared so a
/// worker can never touch freed latch memory between its final notify and
/// the dispatcher's stack frame unwinding.
struct Latch {
    left: Mutex<usize>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch { left: Mutex::new(n), cv: Condvar::new(), panic: Mutex::new(None) }
    }

    /// Records one finished share (and the first panic payload, if any).
    fn arrive(&self, panicked: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panicked {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        let mut g = self.left.lock().unwrap();
        *g -= 1;
        if *g == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.left.lock().unwrap();
        while *g > 0 {
            g = self.cv.wait(g).unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

thread_local! {
    /// True while this thread is executing a pool task (worker or
    /// dispatcher-as-executor-0); nested dispatch then runs inline.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

fn in_pool_task() -> bool {
    IN_POOL_TASK.with(|c| c.get())
}

/// Runs `f` with the nested-dispatch guard set (restored even on unwind via
/// the closure result — callers wrap `f` in `catch_unwind` or rely on their
/// own drop guards for latch correctness).
fn run_in_task_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_POOL_TASK.with(|c| c.set(self.0));
        }
    }
    let prev = IN_POOL_TASK.with(|c| c.replace(true));
    let _reset = Reset(prev);
    f()
}

unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), executor: usize, executors: usize, tasks: usize) {
    let f = &*(ctx as *const F);
    let mut t = executor;
    while t < tasks {
        f(t);
        t += executors;
    }
}

struct Worker {
    slot: Arc<Slot>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn worker_loop(slot: Arc<Slot>) {
    loop {
        let msg = {
            let mut g = slot.msg.lock().unwrap();
            loop {
                match g.take() {
                    Some(m) => break m,
                    None => g = slot.cv.wait(g).unwrap(),
                }
            }
        };
        // The slot is free again — wake any dispatcher blocked in `place`.
        slot.cv.notify_all();
        match msg {
            Msg::Exit => return,
            Msg::Run(job) => {
                // A panicking task must still arrive at the latch (the
                // dispatcher would otherwise wait forever) and must not kill
                // the worker — the payload is re-thrown on the dispatching
                // thread instead, mirroring scoped-spawn join semantics.
                let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    run_in_task_scope(|| unsafe {
                        (job.run)(job.ctx, job.executor, job.executors, job.tasks)
                    });
                }));
                job.latch.arrive(res.err());
            }
        }
    }
}

/// A persistent set of parked worker threads executing deterministic task
/// fan-outs. Workers spawn lazily on first demand, park on their mailbox
/// condvar between dispatches, and are joined on [`Drop`].
///
/// All kernel-level dispatch goes through the process-wide instance behind
/// [`run_indexed`] / [`run_row_chunks`]; standalone pools exist for tests
/// (drop/re-init coverage) and embedders that want isolation.
pub struct WorkerPool {
    workers: Mutex<Vec<Worker>>,
    cap: usize,
}

impl WorkerPool {
    /// Creates an empty pool that will grow on demand to at most `cap`
    /// workers (clamped to an internal hard limit).
    pub fn new(cap: usize) -> WorkerPool {
        WorkerPool { workers: Mutex::new(Vec::new()), cap: cap.min(MAX_POOL_WORKERS) }
    }

    /// Number of worker threads currently alive (0 until first dispatch).
    pub fn worker_count(&self) -> usize {
        self.workers.lock().unwrap().len()
    }

    /// Clones out mailbox handles for up to `want` workers, spawning any
    /// that do not exist yet.
    fn helpers(&self, want: usize) -> Vec<Arc<Slot>> {
        let want = want.min(self.cap);
        let mut g = self.workers.lock().unwrap();
        while g.len() < want {
            let slot = Arc::new(Slot::default());
            let worker_slot = Arc::clone(&slot);
            let handle = std::thread::Builder::new()
                .name(format!("dg-pool-{}", g.len()))
                .spawn(move || worker_loop(worker_slot))
                .expect("failed to spawn dg-nn pool worker");
            g.push(Worker { slot, handle: Some(handle) });
        }
        g[..want].iter().map(|w| Arc::clone(&w.slot)).collect()
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool, returning after
    /// all tasks finish. The calling thread is executor 0 and runs its own
    /// share inline; each of the N−1 woken workers strides the task list
    /// deterministically. Task bodies must be data-disjoint per index; under
    /// that contract the result is bitwise identical for every pool size.
    ///
    /// Nested calls (from inside a pool task) run every task inline on the
    /// current thread — same bits, no deadlock, no oversubscription.
    pub fn run_tasks<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || in_pool_task() {
            for t in 0..tasks {
                f(t);
            }
            return;
        }
        let helpers = self.helpers(tasks - 1);
        if helpers.is_empty() {
            for t in 0..tasks {
                f(t);
            }
            return;
        }
        let executors = helpers.len() + 1;
        let latch = Arc::new(Latch::new(helpers.len()));
        let ctx = &f as *const F as *const ();
        for (w, slot) in helpers.iter().enumerate() {
            place(
                slot,
                Msg::Run(Job {
                    run: trampoline::<F>,
                    ctx,
                    executor: w + 1,
                    executors,
                    tasks,
                    latch: Arc::clone(&latch),
                }),
            );
        }
        // Block until every worker share is done even if our own share
        // panics: `f` and the latch must outlive all enqueued jobs.
        struct WaitOnDrop<'a>(&'a Latch);
        impl Drop for WaitOnDrop<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        {
            let _wait = WaitOnDrop(&latch);
            run_in_task_scope(|| {
                let mut t = 0;
                while t < tasks {
                    f(t);
                    t += executors;
                }
            });
        }
        if let Some(p) = latch.take_panic() {
            std::panic::resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut g = self.workers.lock().unwrap();
        for w in g.iter() {
            place(&w.slot, Msg::Exit);
        }
        for w in g.iter_mut() {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        g.clear();
    }
}

/// The process-wide pool used by every kernel-level dispatch. Workers spawn
/// lazily — a fully serial run never creates a single thread.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(MAX_POOL_WORKERS))
}

/// Runs `tasks` data-disjoint task bodies across the global pool (see
/// [`WorkerPool::run_tasks`]). This is the batch-level fan-out entry point:
/// DP-SGD per-sample passes and generation rollouts dispatch through it
/// with one task per sample-chunk, each task owning its pre-split seed and
/// workspace.
pub fn run_indexed<F>(tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    pool().run_tasks(tasks, f);
}

/// Raw chunk base shared across pool tasks; tasks carve disjoint subslices.
/// (A method rather than field access keeps closures capturing the whole
/// `Sync` wrapper under edition-2021 disjoint capture.)
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// # Safety
    /// `off` must stay inside the allocation the pointer was taken from.
    unsafe fn at(&self, off: usize) -> *mut f32 {
        self.0.add(off)
    }
}

/// Splits `out` into per-task chunks of whole rows (`cols` elements each)
/// and runs `kernel(first_row, chunk)` for each chunk across the worker
/// pool (the caller executes chunk 0 and any strided extras inline).
///
/// `kernel` receives the index of the first row of its chunk plus the
/// mutable slice backing those rows, and must compute each row
/// independently; under that contract the result is bitwise identical to
/// `kernel(0, out)` for every `threads` value (see the module docs). The
/// chunk boundaries are a pure function of `threads` — pool size and
/// executor scheduling never move them.
///
/// Runs inline (nothing woken) when `threads <= 1` or there is only one
/// row of work.
pub fn run_row_chunks<F>(out: &mut [f32], cols: usize, threads: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = out.len().checked_div(cols).unwrap_or(0);
    debug_assert_eq!(rows * cols, out.len(), "run_row_chunks requires whole rows");
    let threads = threads.min(rows.max(1));
    if threads <= 1 || rows < 2 {
        kernel(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    let chunks = rows.div_ceil(chunk_rows);
    if chunks <= 1 {
        kernel(0, out);
        return;
    }
    let len = out.len();
    let base = SendPtr(out.as_mut_ptr());
    run_indexed(chunks, move |ci| {
        let start = ci * chunk_rows * cols;
        let end = (start + chunk_rows * cols).min(len);
        // SAFETY: task indices are distinct, so `[start, end)` ranges are
        // disjoint row-aligned windows of `out`, and the dispatch cannot
        // return before every task has finished (completion latch).
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(start), end - start) };
        kernel(ci * chunk_rows, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn num_threads_is_at_least_one_and_stable() {
        let _guard = override_test_guard();
        let a = num_threads();
        let b = num_threads();
        assert!(a >= 1);
        assert_eq!(a, b, "num_threads must be cached");
    }

    #[test]
    fn set_num_threads_overrides_the_latched_default() {
        // Regression test for the `DG_NUM_THREADS` latch: the env default is
        // read once and cached, so runtime width changes must go through
        // `set_num_threads` — and resetting to 0 must restore the original
        // latched value, not re-read the environment.
        let _guard = override_test_guard();
        let latched = num_threads();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(13);
        assert_eq!(num_threads(), 13);
        set_num_threads(0);
        assert_eq!(num_threads(), latched, "0 must restore the latched default");
    }

    #[test]
    fn chunks_cover_all_rows_exactly_once() {
        for rows in [1usize, 2, 3, 7, 16, 129] {
            for cols in [1usize, 3, 8] {
                for threads in [1usize, 2, 3, 5, 32] {
                    let mut out = vec![0.0_f32; rows * cols];
                    run_row_chunks(&mut out, cols, threads, |row0, chunk| {
                        let crows = chunk.len() / cols;
                        for r in 0..crows {
                            for c in 0..cols {
                                chunk[r * cols + c] += (row0 + r) as f32;
                            }
                        }
                    });
                    for r in 0..rows {
                        for c in 0..cols {
                            assert_eq!(
                                out[r * cols + c],
                                r as f32,
                                "row {r} col {c} (rows={rows} threads={threads})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn serial_fallback_runs_inline() {
        let mut out = vec![0.0_f32; 4];
        run_row_chunks(&mut out, 4, 1, |row0, chunk| {
            assert_eq!(row0, 0);
            chunk.fill(1.0);
        });
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn run_indexed_covers_every_task_exactly_once() {
        for tasks in [0usize, 1, 2, 3, 7, 16, 60] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            run_indexed(tasks, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {t} of {tasks}");
            }
        }
    }

    #[test]
    fn pool_drop_and_reinit_neither_deadlocks_nor_leaks() {
        // Standalone pools must come up, serve repeated dispatches (pool
        // reuse), shut down cleanly on drop (join, not detach), and be
        // re-creatable — three full lifecycles back to back.
        for _ in 0..3 {
            let pool = WorkerPool::new(4);
            assert_eq!(pool.worker_count(), 0, "workers must spawn lazily");
            for _ in 0..5 {
                let hits: Vec<AtomicUsize> = (0..13).map(|_| AtomicUsize::new(0)).collect();
                pool.run_tasks(13, |t| {
                    hits[t].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
            let alive = pool.worker_count();
            assert!((1..=4).contains(&alive), "expected 1..=4 lazily-spawned workers, got {alive}");
            // Drop joins every worker; a hang here is the regression.
        }
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let total = AtomicUsize::new(0);
        run_indexed(4, |_| {
            run_indexed(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_tasks(3, |t| {
                if t > 0 {
                    panic!("task {t} boom");
                }
            });
        }));
        assert!(r.is_err(), "a panicking worker share must re-throw on the dispatcher");
        let done = AtomicUsize::new(0);
        pool.run_tasks(3, |_| {
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 3, "pool must stay serviceable after a task panic");
    }

    #[test]
    fn dispatch_results_are_identical_for_any_pool_size() {
        // The task -> rows split depends only on the requested width; the
        // pool size (1, 2, or many workers) must never change coverage.
        let run = |cap: usize| {
            let pool = WorkerPool::new(cap);
            let mut out = vec![0.0_f32; 37 * 3];
            // Mirror run_row_chunks' split through a standalone pool.
            let rows = 37usize;
            let threads = 8usize;
            let chunk_rows = rows.div_ceil(threads);
            let chunks = rows.div_ceil(chunk_rows);
            let len = out.len();
            let base = SendPtr(out.as_mut_ptr());
            pool.run_tasks(chunks, |ci| {
                let start = ci * chunk_rows * 3;
                let end = (start + chunk_rows * 3).min(len);
                // SAFETY: disjoint ranges per task index; pool joins before return.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.at(start), end - start) };
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v = (start + off) as f32 * 0.5;
                }
            });
            out
        };
        let want = run(0);
        for cap in [1usize, 2, 3, 8] {
            assert_eq!(run(cap), want, "pool cap {cap} changed the output");
        }
    }
}
