//! First-order optimizers operating on a [`ParamStore`] + [`GradMap`] pair.

use crate::params::{GradMap, ParamId, ParamStore};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Plain stochastic gradient descent (optionally with momentum).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates an SGD optimizer without momentum.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Creates an SGD optimizer with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    /// Applies one update: `p -= lr * (momentum-filtered gradient)`.
    pub fn step(&mut self, store: &mut ParamStore, grads: &GradMap) {
        for (id, g) in grads.iter() {
            if self.velocity.len() <= id.0 {
                self.velocity.resize(id.0 + 1, None);
            }
            let update = if self.momentum > 0.0 {
                let v = self.velocity[id.0].get_or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
                *v = v.scale(self.momentum).add(g);
                v.clone()
            } else {
                g.clone()
            };
            store.get_mut(id).add_scaled_assign(&update, -self.lr);
        }
    }
}

/// Adam optimizer (Kingma & Ba), the optimizer used throughout the paper's
/// Appendix B (learning rate 0.001, batch size 100).
///
/// Defaults to `(beta1, beta2) = (0.5, 0.9)`, the standard WGAN-GP setting;
/// use [`Adam::with_betas`] for the classic `(0.9, 0.999)`.
///
/// The optimizer state (step count + moment estimates) is serializable, so
/// long GAN trainings can checkpoint and resume exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stability constant.
    pub eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates an Adam optimizer with WGAN-GP betas `(0.5, 0.9)`.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.5, beta2: 0.9, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Creates an Adam optimizer with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Applies one bias-corrected Adam update.
    pub fn step(&mut self, store: &mut ParamStore, grads: &GradMap) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            self.ensure(id, g);
            let m = self.m[id.0].as_mut().expect("ensured");
            let v = self.v[id.0].as_mut().expect("ensured");
            for ((mi, vi), &gi) in
                m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()).zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let p = store.get_mut(id);
            for ((pi, &mi), &vi) in p.as_mut_slice().iter_mut().zip(m.as_slice()).zip(v.as_slice()) {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *pi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Resets the optimizer state for the given parameters (used when the
    /// attribute generator is retrained from scratch on a new target
    /// distribution).
    pub fn reset_params(&mut self, ids: &[ParamId]) {
        for &id in ids {
            if id.0 < self.m.len() {
                self.m[id.0] = None;
                self.v[id.0] = None;
            }
        }
    }

    /// The live moment-estimate tensors, first all `m` then all `v`, each in
    /// parameter-id order (skipping parameters that never received a
    /// gradient). The order is stable, which the checkpoint codec relies on
    /// to address individual scalars.
    pub fn moment_tensors(&self) -> impl Iterator<Item = &Tensor> {
        self.m.iter().chain(self.v.iter()).flatten()
    }

    /// Mutable counterpart of [`Adam::moment_tensors`], used by the
    /// checkpoint codec to zero and later restore non-finite scalars.
    pub fn moment_tensors_mut(&mut self) -> impl Iterator<Item = &mut Tensor> {
        self.m.iter_mut().chain(self.v.iter_mut()).flatten()
    }

    fn ensure(&mut self, id: ParamId, g: &Tensor) {
        if self.m.len() <= id.0 {
            self.m.resize(id.0 + 1, None);
            self.v.resize(id.0 + 1, None);
        }
        if self.m[id.0].is_none() {
            self.m[id.0] = Some(Tensor::zeros(g.rows(), g.cols()));
            self.v[id.0] = Some(Tensor::zeros(g.rows(), g.cols()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes `f(p) = (p - 3)^2` elementwise from p = 0.
    fn quadratic_descent(mut step: impl FnMut(&mut ParamStore, &GradMap)) -> f32 {
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::zeros(1, 4));
        for _ in 0..500 {
            let mut g = Graph::new();
            let p = g.param(&store, id);
            let target = g.constant(Tensor::full(1, 4, 3.0));
            let d = g.sub(p, target);
            let sq = g.square(d);
            let loss = g.sum_all(sq);
            g.backward(loss);
            step(&mut store, &g.param_grads());
        }
        store.get(id).as_slice().iter().map(|x| (x - 3.0).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let err = quadratic_descent(|s, g| opt.step(s, g));
        assert!(err < 1e-3, "SGD error {err}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.02, 0.9);
        let err = quadratic_descent(|s, g| opt.step(s, g));
        assert!(err < 1e-3, "SGD+momentum error {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let err = quadratic_descent(|s, g| opt.step(s, g));
        assert!(err < 1e-2, "Adam error {err}");
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        let mut grads = GradMap::with_capacity(1);
        grads.accumulate(id, &Tensor::ones(1, 1));
        opt.step(&mut store, &grads);
        assert!(opt.m[0].is_some());
        opt.reset_params(&[id]);
        assert!(opt.m[0].is_none());
        // Stepping again after reset still works.
        opt.step(&mut store, &grads);
        assert!(opt.m[0].is_some());
    }

    #[test]
    fn adam_first_step_moves_by_about_lr() {
        // With bias correction, the very first Adam step is ~lr in magnitude.
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::zeros(1, 1));
        let mut opt = Adam::new(0.01);
        let mut grads = GradMap::with_capacity(1);
        grads.accumulate(id, &Tensor::full(1, 1, 5.0));
        opt.step(&mut store, &grads);
        let moved = store.get(id).get(0, 0).abs();
        assert!((moved - 0.01).abs() < 1e-3, "first Adam step should be ~lr, moved {moved}");
    }
}
