//! WGAN-GP gradient penalty with *exact* double backpropagation.
//!
//! The paper (§4.2) notes that optimizing the regularized Wasserstein loss
//! requires a second derivative of the discriminator. We make this tractable
//! without a deep-learning framework by restricting discriminators to MLPs
//! with piecewise-linear hidden activations (leaky ReLU): the input gradient
//!
//! ```text
//! ∇x D(x) = W1ᵀ (m1 ∘ (W2ᵀ (m2 ∘ ( … WLᵀ(mL ∘ W_outᵀ·1)))))
//! ```
//!
//! where `mi = φ'(zi)` are the activation-derivative masks, is itself a
//! first-class differentiable expression: the masks are piecewise-constant in
//! `x` (their derivative is zero almost everywhere), so treating them as
//! constants and differentiating the masked transposed matmuls with ordinary
//! reverse-mode autodiff yields the **exact** parameter gradient of the
//! penalty almost everywhere.

use crate::graph::{Graph, Var};
use crate::layers::{Activation, Mlp};
use crate::params::ParamStore;
use crate::tensor::Tensor;
use rand::Rng;

/// Numerical floor added under the square root of the gradient norm.
const NORM_EPS: f32 = 1e-8;

impl Mlp {
    /// Forward pass on plain tensors (no tape), returning the output and the
    /// hidden activation-derivative masks.
    ///
    /// # Panics
    /// Panics if the hidden activation is not piecewise linear.
    pub fn forward_plain(&self, store: &ParamStore, x: &Tensor) -> (Tensor, Vec<Tensor>) {
        let mut h = x.clone();
        let mut masks = Vec::with_capacity(self.layers.len().saturating_sub(1));
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut pre = h.matmul(store.get(layer.w));
            let bias = store.get(layer.b).as_slice().to_vec();
            for r in 0..pre.rows() {
                for (p, b) in pre.row_slice_mut(r).iter_mut().zip(&bias) {
                    *p += b;
                }
            }
            if i == last {
                h = apply_plain(self.out_act, &pre);
            } else {
                masks.push(
                    self.hidden_act
                        .piecewise_linear_mask(&pre)
                        .expect("forward_plain masks require a piecewise-linear hidden activation"),
                );
                h = apply_plain(self.hidden_act, &pre);
            }
        }
        (h, masks)
    }
}

fn apply_plain(act: Activation, x: &Tensor) -> Tensor {
    match act {
        Activation::Linear => x.clone(),
        Activation::Tanh => x.map(f32::tanh),
        Activation::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
        Activation::LeakyRelu(a) => x.map(|v| if v > 0.0 { v } else { a * v }),
        Activation::Softmax => crate::graph::softmax_rows(x),
    }
}

/// Records the input gradient `∇x critic(x)` as a differentiable graph
/// expression, given the detached activation masks from a forward pass at the
/// same `x`.
///
/// The returned var has shape `B x in_dim`, and gradients flow to the
/// critic's *weight* parameters (biases do not appear in the input
/// gradient).
///
/// # Panics
/// Panics if the critic output is not scalar (`out_dim != 1`) or the output
/// activation is not linear (required for a Wasserstein critic).
pub fn input_gradient(
    g: &mut Graph,
    store: &ParamStore,
    critic: &Mlp,
    masks: &[Tensor],
    batch: usize,
) -> Var {
    assert_eq!(critic.out_dim(), 1, "input_gradient requires a scalar critic");
    assert_eq!(critic.out_act, Activation::Linear, "Wasserstein critics must have a linear output");
    assert_eq!(masks.len() + 1, critic.layers.len(), "one mask per hidden layer expected");
    let last = critic.layers.len() - 1;
    // Seed: d out / d out = 1 for each sample, then pull back through W_out.
    let mut ones = g.take_scratch_raw(batch, 1);
    ones.as_mut_slice().fill(1.0);
    let ones = g.constant(ones);
    let w_out = g.param(store, critic.layers[last].w);
    let mut u = g.matmul_bt(ones, w_out);
    for i in (0..last).rev() {
        let mask = g.constant_copied(&masks[i]);
        u = g.mul(u, mask);
        let w = g.param(store, critic.layers[i].w);
        u = g.matmul_bt(u, w);
    }
    u
}

/// Records the WGAN-GP penalty `E[(‖∇x D(x̂)‖₂ − 1)²]` for interpolates
/// `x̂ = t·real + (1−t)·fake`, `t ~ U[0,1]` per sample.
///
/// `real` and `fake` are plain tensors: per the standard WGAN-GP recipe the
/// interpolates are detached from the generator. Returns the `1 x 1` penalty
/// var; gradients flow to the critic's weights.
pub fn gradient_penalty<R: Rng + ?Sized>(
    g: &mut Graph,
    store: &ParamStore,
    critic: &Mlp,
    real: &Tensor,
    fake: &Tensor,
    rng: &mut R,
) -> Var {
    assert_eq!(real.shape(), fake.shape(), "gradient_penalty requires matching shapes");
    let batch = real.rows();
    let cols = real.cols();
    // The per-sample interpolation coefficients are drawn serially (fixed
    // RNG order) before the row fill fans out, so the interpolates — and
    // everything downstream — are bitwise identical for any thread count.
    let ts: Vec<f32> = (0..batch).map(|_| rng.gen_range(0.0..1.0)).collect();
    // The interpolate buffer comes from (and returns to) the graph's pool;
    // the row loop below overwrites every element, so raw storage suffices.
    let mut xhat = g.take_scratch_raw(batch, cols);
    let threads =
        if batch * cols >= crate::parallel::PARALLEL_ELEMS { crate::parallel::num_threads() } else { 1 };
    crate::parallel::run_row_chunks(xhat.as_mut_slice(), cols.max(1), threads, |row0, chunk| {
        for (i, orow) in chunk.chunks_mut(cols.max(1)).enumerate() {
            let r = row0 + i;
            let t = ts[r];
            for (o, (&a, &b)) in orow.iter_mut().zip(real.row_slice(r).iter().zip(fake.row_slice(r))) {
                *o = t * a + (1.0 - t) * b;
            }
        }
    });
    let xhat = g.constant(xhat);
    let (_, masks) = critic.forward_plain(store, g.value(xhat));
    let grad = input_gradient(g, store, critic, &masks, batch);
    let sq = g.square(grad);
    let ssum = g.sum_rows(sq);
    let ssum = g.add_scalar(ssum, NORM_EPS);
    let norm = g.sqrt(ssum);
    let dev = g.add_scalar(norm, -1.0);
    let dev2 = g.square(dev);
    g.mean_all(dev2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_critic(rng: &mut StdRng, store: &mut ParamStore, in_dim: usize) -> Mlp {
        Mlp::new(store, "critic", in_dim, 7, 2, 1, Activation::LeakyRelu(0.2), Activation::Linear, rng)
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let critic = make_critic(&mut rng, &mut store, 4);
        let x = Tensor::randn(3, 4, 1.0, &mut rng);

        let (_, masks) = critic.forward_plain(&store, &x);
        let mut g = Graph::new();
        let grad = input_gradient(&mut g, &store, &critic, &masks, 3);
        let analytic = g.value(grad).clone();

        let eps = 1e-3;
        for r in 0..3 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let (op, _) = critic.forward_plain(&store, &xp);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let (om, _) = critic.forward_plain(&store, &xm);
                let numeric = (op.get(r, 0) - om.get(r, 0)) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                    "input grad mismatch at ({r},{c}): {a} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn penalty_parameter_gradient_matches_finite_differences() {
        // The crucial double-backprop check: d penalty / d W numerically.
        let mut rng = StdRng::seed_from_u64(22);
        let mut store = ParamStore::new();
        let critic = make_critic(&mut rng, &mut store, 3);
        // Fix the interpolates by passing real == fake (t becomes irrelevant).
        let x = Tensor::randn(4, 3, 1.0, &mut rng);

        // Masks are piecewise-constant in the weights (their derivative is 0
        // a.e.), so the correct smooth finite-difference reference holds them
        // fixed at the unperturbed point; recomputing them at the perturbed
        // weights can cross a leaky-ReLU kink and blow up the FD estimate.
        let (_, fixed_masks) = critic.forward_plain(&store, &x);
        let penalty_value = |store: &ParamStore| -> f32 {
            let masks = fixed_masks.clone();
            let mut g = Graph::new();
            let grad = input_gradient(&mut g, store, &critic, &masks, 4);
            let sq = g.square(grad);
            let ssum = g.sum_rows(sq);
            let ssum = g.add_scalar(ssum, NORM_EPS);
            let norm = g.sqrt(ssum);
            let dev = g.add_scalar(norm, -1.0);
            let dev2 = g.square(dev);
            let p = g.mean_all(dev2);
            g.value(p).get(0, 0)
        };

        // Analytic gradient through the graph.
        let (_, masks) = critic.forward_plain(&store, &x);
        let mut g = Graph::new();
        let grad = input_gradient(&mut g, &store, &critic, &masks, 4);
        let sq = g.square(grad);
        let ssum = g.sum_rows(sq);
        let ssum = g.add_scalar(ssum, NORM_EPS);
        let norm = g.sqrt(ssum);
        let dev = g.add_scalar(norm, -1.0);
        let dev2 = g.square(dev);
        let p = g.mean_all(dev2);
        g.backward(p);
        let grads = g.param_grads();

        let eps = 1e-3;
        let mut checked = 0;
        for layer in &critic.layers {
            let wid: ParamId = layer.w;
            let shape = store.get(wid).shape();
            // Probe a handful of entries per weight matrix.
            for probe in 0..4.min(shape.0 * shape.1) {
                let r = probe % shape.0;
                let c = (probe * 7 + 1) % shape.1;
                let orig = store.get(wid).get(r, c);
                let mut sp = store.clone();
                sp.get_mut(wid).set(r, c, orig + eps);
                let fp = penalty_value(&sp);
                let mut sm = store.clone();
                sm.get_mut(wid).set(r, c, orig - eps);
                let fm = penalty_value(&sm);
                let numeric = (fp - fm) / (2.0 * eps);
                let analytic = grads.get(wid).map(|t| t.get(r, c)).unwrap_or(0.0);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "penalty dW mismatch at {:?} ({r},{c}): {analytic} vs {numeric}",
                    wid
                );
                checked += 1;
            }
        }
        assert!(checked >= 8, "should have probed several weights");
    }

    #[test]
    fn gradient_penalty_is_nonnegative_and_finite() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut store = ParamStore::new();
        let critic = make_critic(&mut rng, &mut store, 5);
        let real = Tensor::randn(8, 5, 1.0, &mut rng);
        let fake = Tensor::randn(8, 5, 1.0, &mut rng);
        let mut g = Graph::new();
        let p = gradient_penalty(&mut g, &store, &critic, &real, &fake, &mut rng);
        let v = g.value(p).get(0, 0);
        assert!(v.is_finite() && v >= 0.0, "penalty {v}");
        g.backward(p);
        let grads = g.param_grads();
        assert!(!grads.is_empty(), "penalty must reach critic weights");
        for (_, t) in grads.iter() {
            assert!(t.is_finite());
        }
    }

    #[test]
    fn training_critic_toward_unit_norm_reduces_penalty() {
        use crate::optim::Adam;
        let mut rng = StdRng::seed_from_u64(24);
        let mut store = ParamStore::new();
        let critic = make_critic(&mut rng, &mut store, 3);
        let real = Tensor::randn(16, 3, 1.0, &mut rng);
        let fake = Tensor::randn(16, 3, 1.0, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..120 {
            let mut g = Graph::new();
            let p = gradient_penalty(&mut g, &store, &critic, &real, &fake, &mut rng);
            last = g.value(p).get(0, 0);
            first.get_or_insert(last);
            g.backward(p);
            opt.step(&mut store, &g.param_grads());
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.5 || last < 1e-3,
            "penalty should shrink when directly minimized: {first} -> {last}"
        );
    }
}
