//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a single-use tape: values are computed eagerly as ops are
//! recorded, and one call to [`Graph::backward`] propagates gradients from a
//! scalar loss back to every parameter leaf. Training loops build a fresh
//! graph per step (parameters are copied in from a
//! [`crate::params::ParamStore`] and gradients are collected into
//! a [`crate::params::GradMap`]).
//!
//! Gradient flow is tracked per node (`needs_grad`), so large data constants
//! never have gradient buffers allocated for them.

use crate::parallel::{self, PARALLEL_ELEMS};
use crate::params::{GradMap, ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
#[allow(dead_code)] // scalar operands are stored for debuggability even when backward ignores them
enum Op {
    /// Constant or parameter leaf.
    Leaf {
        param: Option<ParamId>,
    },
    /// `a * b` (matrix product).
    MatMul(Var, Var),
    /// `a * b^T` (matrix product against a transposed right factor).
    MatMulBT(Var, Var),
    /// Elementwise `a + b` (same shape).
    Add(Var, Var),
    /// `a + row` where `row` is `1 x n`, broadcast over rows.
    AddRow(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise `a * b`.
    Mul(Var, Var),
    /// `a[r, j] * c[r, 0]`: multiply each row of `a` by a per-row scalar.
    MulCol(Var, Var),
    /// `a * s` for a compile-time scalar.
    Scale(Var, f32),
    /// `a + s` for a compile-time scalar.
    AddScalar(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    /// Leaky ReLU with negative slope `alpha`.
    LeakyRelu(Var, f32),
    /// Row-wise softmax.
    Softmax(Var),
    /// Elementwise square root (input must be positive).
    Sqrt(Var),
    /// Sum of all elements, producing a `1 x 1` scalar.
    SumAll(Var),
    /// Mean of all elements, producing a `1 x 1` scalar.
    MeanAll(Var),
    /// Per-row sums, producing `rows x 1`.
    SumRows(Var),
    /// Horizontal concatenation.
    ConcatCols(Vec<Var>),
    /// Columns `[start, end)` of the input.
    SliceCols(Var, usize, usize),
    /// Fused softmax + cross-entropy against constant one-hot-ish targets;
    /// produces the mean loss as a `1 x 1` scalar.
    SoftmaxCrossEntropy {
        logits: Var,
        targets: Tensor,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
    needs_grad: bool,
}

/// A single-use autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph { nodes: Vec::with_capacity(256) }
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> Var {
        self.nodes.push(Node { op, value, grad: None, needs_grad });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Consumes the graph and returns the forward value of `v` without
    /// copying — for callers that only need one detached output tensor
    /// (e.g. sampling from a frozen generator).
    pub fn into_value(mut self, v: Var) -> Tensor {
        std::mem::replace(&mut self.nodes[v.0].value, Tensor::zeros(0, 0))
    }

    /// The accumulated gradient of a node (after [`Graph::backward`]).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- leaves ----------------------------------------------------------

    /// Records a constant leaf: no gradient is tracked through it.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf { param: None }, value, false)
    }

    /// Records a constant leaf that *does* track gradients (used for
    /// inspecting input gradients, e.g. in tests and saliency probes).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf { param: None }, value, true)
    }

    /// Records a parameter leaf bound to `id`, copying the current value from
    /// the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(Op::Leaf { param: Some(id) }, store.get(id).clone(), true)
    }

    // ---- ops -------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMul(a, b), v, ng)
    }

    /// Matrix product `a * b^T`.
    pub fn matmul_bt(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_bt(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMulBT(a, b), v, ng)
    }

    /// Elementwise sum of same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Add(a, b), v, ng)
    }

    /// Adds a `1 x n` row vector (bias) to every row of `a`.
    ///
    /// Rows are split across threads for large activations; each row is
    /// updated independently, so the result is bitwise identical to a
    /// serial pass.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let r = self.value(row);
        assert_eq!(r.rows(), 1, "add_row expects a 1 x n row vector");
        assert_eq!(r.cols(), self.value(a).cols(), "add_row width mismatch");
        let mut v = self.value(a).clone();
        let rslice = self.value(row).as_slice().to_vec();
        let cols = v.cols().max(1);
        let threads = if v.len() >= PARALLEL_ELEMS { parallel::num_threads() } else { 1 };
        parallel::run_row_chunks(v.as_mut_slice(), cols, threads, |_row0, chunk| {
            for vrow in chunk.chunks_mut(cols) {
                for (x, rv) in vrow.iter_mut().zip(&rslice) {
                    *x += rv;
                }
            }
        });
        let ng = self.needs(a) || self.needs(row);
        self.push(Op::AddRow(a, row), v, ng)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Sub(a, b), v, ng)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Mul(a, b), v, ng)
    }

    /// Multiplies each row of `a` (`B x n`) by the per-row scalar `c` (`B x 1`).
    pub fn mul_col(&mut self, a: Var, c: Var) -> Var {
        let (ar, ac) = self.value(a).shape();
        assert_eq!(self.value(c).shape(), (ar, 1), "mul_col expects a B x 1 column");
        let mut v = self.value(a).clone();
        let cs = self.value(c).as_slice().to_vec();
        let cols = ac.max(1);
        let threads = if v.len() >= PARALLEL_ELEMS { parallel::num_threads() } else { 1 };
        parallel::run_row_chunks(v.as_mut_slice(), cols, threads, |row0, chunk| {
            for (i, vrow) in chunk.chunks_mut(cols).enumerate() {
                let s = cs[row0 + i];
                for x in vrow {
                    *x *= s;
                }
            }
        });
        let ng = self.needs(a) || self.needs(c);
        self.push(Op::MulCol(a, c), v, ng)
    }

    /// Multiplies by a compile-time scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        let ng = self.needs(a);
        self.push(Op::Scale(a, s), v, ng)
    }

    /// Adds a compile-time scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).map(|x| x + s);
        let ng = self.needs(a);
        self.push(Op::AddScalar(a, s), v, ng)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        let ng = self.needs(a);
        self.push(Op::Tanh(a), v, ng)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.needs(a);
        self.push(Op::Sigmoid(a), v, ng)
    }

    /// Elementwise leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { alpha * x });
        let ng = self.needs(a);
        self.push(Op::LeakyRelu(a, alpha), v, ng)
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax(&mut self, a: Var) -> Var {
        let v = softmax_rows(self.value(a));
        let ng = self.needs(a);
        self.push(Op::Softmax(a), v, ng)
    }

    /// Elementwise square root. Inputs should be strictly positive; callers
    /// typically `add_scalar` a small epsilon first.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0).sqrt());
        let ng = self.needs(a);
        self.push(Op::Sqrt(a), v, ng)
    }

    /// Sum over all elements (`1 x 1` result).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        let ng = self.needs(a);
        self.push(Op::SumAll(a), v, ng)
    }

    /// Mean over all elements (`1 x 1` result).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).mean()]);
        let ng = self.needs(a);
        self.push(Op::MeanAll(a), v, ng)
    }

    /// Per-row sums (`B x 1` result).
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_rows();
        let ng = self.needs(a);
        self.push(Op::SumRows(a), v, ng)
    }

    /// Horizontal concatenation of several vars.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&tensors);
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(Op::ConcatCols(parts.to_vec()), v, ng)
    }

    /// Columns `[start, end)` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let v = self.value(a).slice_cols(start, end);
        let ng = self.needs(a);
        self.push(Op::SliceCols(a, start, end), v, ng)
    }

    /// Convenience: elementwise square via `mul`.
    pub fn square(&mut self, a: Var) -> Var {
        self.mul(a, a)
    }

    /// Fused row-wise softmax + cross-entropy against constant `targets`
    /// (rows summing to 1). Produces the mean loss over rows.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: Tensor) -> Var {
        let probs = softmax_rows(self.value(logits));
        assert_eq!(probs.shape(), targets.shape(), "softmax_cross_entropy shape mismatch");
        let mut loss = 0.0;
        for r in 0..probs.rows() {
            for (p, t) in probs.row_slice(r).iter().zip(targets.row_slice(r)) {
                if *t > 0.0 {
                    loss -= t * p.max(1e-12).ln();
                }
            }
        }
        loss /= probs.rows().max(1) as f32;
        let v = Tensor::from_vec(1, 1, vec![loss]);
        let ng = self.needs(logits);
        self.push(Op::SoftmaxCrossEntropy { logits, targets }, v, ng)
    }

    // ---- backward --------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward requires a scalar loss");
        self.backward_seeded(loss, 1.0);
    }

    /// Runs reverse-mode differentiation seeding `d(loss) = seed`.
    pub fn backward_seeded(&mut self, loss: Var, seed: f32) {
        self.nodes[loss.0].grad = Some(Tensor::full(1, 1, seed));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(out_grad) = self.nodes[i].grad.take() else { continue };
            // Re-insert so callers can still read intermediate grads.
            self.nodes[i].grad = Some(out_grad.clone());
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf { .. } => {}
                Op::MatMul(a, b) => {
                    if self.needs(a) {
                        let g = out_grad.matmul_bt(self.value(b));
                        self.accumulate(a, g);
                    }
                    if self.needs(b) {
                        let g = self.value(a).matmul_at(&out_grad);
                        self.accumulate(b, g);
                    }
                }
                Op::MatMulBT(a, b) => {
                    // c = a b^T  =>  da = dc * b ; db = dc^T * a
                    if self.needs(a) {
                        let g = out_grad.matmul(self.value(b));
                        self.accumulate(a, g);
                    }
                    if self.needs(b) {
                        let g = out_grad.matmul_at(self.value(a));
                        self.accumulate(b, g);
                    }
                }
                Op::Add(a, b) => {
                    if self.needs(a) {
                        self.accumulate(a, out_grad.clone());
                    }
                    if self.needs(b) {
                        self.accumulate(b, out_grad.clone());
                    }
                }
                Op::AddRow(a, row) => {
                    if self.needs(a) {
                        self.accumulate(a, out_grad.clone());
                    }
                    if self.needs(row) {
                        self.accumulate(row, out_grad.sum_cols());
                    }
                }
                Op::Sub(a, b) => {
                    if self.needs(a) {
                        self.accumulate(a, out_grad.clone());
                    }
                    if self.needs(b) {
                        self.accumulate(b, out_grad.scale(-1.0));
                    }
                }
                Op::Mul(a, b) => {
                    if a == b {
                        // square: d = 2 * a * dout
                        let g = out_grad.mul(self.value(a)).scale(2.0);
                        self.accumulate(a, g);
                    } else {
                        if self.needs(a) {
                            let g = out_grad.mul(self.value(b));
                            self.accumulate(a, g);
                        }
                        if self.needs(b) {
                            let g = out_grad.mul(self.value(a));
                            self.accumulate(b, g);
                        }
                    }
                }
                Op::MulCol(a, c) => {
                    if self.needs(a) {
                        let mut g = out_grad.clone();
                        let cs = self.value(c).as_slice().to_vec();
                        for (r, &s) in cs.iter().enumerate() {
                            for x in g.row_slice_mut(r) {
                                *x *= s;
                            }
                        }
                        self.accumulate(a, g);
                    }
                    if self.needs(c) {
                        let prod = out_grad.mul(self.value(a));
                        self.accumulate(c, prod.sum_rows());
                    }
                }
                Op::Scale(a, s) => {
                    if self.needs(a) {
                        self.accumulate(a, out_grad.scale(s));
                    }
                }
                Op::AddScalar(a, _) => {
                    if self.needs(a) {
                        self.accumulate(a, out_grad.clone());
                    }
                }
                Op::Tanh(a) => {
                    if self.needs(a) {
                        let y = &self.nodes[i].value;
                        let g = out_grad.zip(y, |d, y| d * (1.0 - y * y));
                        self.accumulate(a, g);
                    }
                }
                Op::Sigmoid(a) => {
                    if self.needs(a) {
                        let y = &self.nodes[i].value;
                        let g = out_grad.zip(y, |d, y| d * y * (1.0 - y));
                        self.accumulate(a, g);
                    }
                }
                Op::LeakyRelu(a, alpha) => {
                    if self.needs(a) {
                        let x = self.value(a);
                        let g = out_grad.zip(x, |d, x| if x > 0.0 { d } else { alpha * d });
                        self.accumulate(a, g);
                    }
                }
                Op::Softmax(a) => {
                    if self.needs(a) {
                        let y = self.nodes[i].value.clone();
                        let mut g = out_grad.mul(&y);
                        let rowsum = g.sum_rows();
                        for r in 0..g.rows() {
                            let s = rowsum.get(r, 0);
                            for (gx, yx) in g.row_slice_mut(r).iter_mut().zip(y.row_slice(r)) {
                                *gx -= s * yx;
                            }
                        }
                        self.accumulate(a, g);
                    }
                }
                Op::Sqrt(a) => {
                    if self.needs(a) {
                        let y = &self.nodes[i].value;
                        let g = out_grad.zip(y, |d, y| d * 0.5 / y.max(1e-12));
                        self.accumulate(a, g);
                    }
                }
                Op::SumAll(a) => {
                    if self.needs(a) {
                        let d = out_grad.get(0, 0);
                        let (r, c) = self.value(a).shape();
                        self.accumulate(a, Tensor::full(r, c, d));
                    }
                }
                Op::MeanAll(a) => {
                    if self.needs(a) {
                        let (r, c) = self.value(a).shape();
                        let d = out_grad.get(0, 0) / (r * c).max(1) as f32;
                        self.accumulate(a, Tensor::full(r, c, d));
                    }
                }
                Op::SumRows(a) => {
                    if self.needs(a) {
                        let (r, c) = self.value(a).shape();
                        let mut g = Tensor::zeros(r, c);
                        for rr in 0..r {
                            let d = out_grad.get(rr, 0);
                            for x in g.row_slice_mut(rr) {
                                *x = d;
                            }
                        }
                        self.accumulate(a, g);
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for p in parts {
                        let w = self.value(p).cols();
                        if self.needs(p) {
                            let g = out_grad.slice_cols(off, off + w);
                            self.accumulate(p, g);
                        }
                        off += w;
                    }
                }
                Op::SliceCols(a, start, end) => {
                    if self.needs(a) {
                        let (r, c) = self.value(a).shape();
                        let mut g = Tensor::zeros(r, c);
                        for rr in 0..r {
                            g.row_slice_mut(rr)[start..end].copy_from_slice(out_grad.row_slice(rr));
                        }
                        self.accumulate(a, g);
                    }
                }
                Op::SoftmaxCrossEntropy { logits, targets } => {
                    if self.needs(logits) {
                        let probs = softmax_rows(self.value(logits));
                        let scale = out_grad.get(0, 0) / probs.rows().max(1) as f32;
                        let g = probs.sub(&targets).scale(scale);
                        self.accumulate(logits, g);
                    }
                }
            }
        }
    }

    fn accumulate(&mut self, v: Var, grad: Tensor) {
        debug_assert_eq!(grad.shape(), self.nodes[v.0].value.shape());
        match &mut self.nodes[v.0].grad {
            Some(g) => g.add_assign(&grad),
            slot @ None => *slot = Some(grad),
        }
    }

    /// Collects gradients of every parameter leaf into a [`GradMap`].
    pub fn param_grads(&self) -> GradMap {
        let mut map = GradMap::with_capacity(0);
        for node in &self.nodes {
            if let Op::Leaf { param: Some(id) } = node.op {
                if let Some(g) = &node.grad {
                    map.accumulate(id, g);
                }
            }
        }
        map
    }
}

/// Numerically-stable row-wise softmax on plain tensors.
///
/// Rows are normalized independently (split across threads for large
/// inputs), so the result is bitwise identical to a serial pass.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    let cols = out.cols().max(1);
    let threads = if out.len() >= PARALLEL_ELEMS { parallel::num_threads() } else { 1 };
    parallel::run_row_chunks(out.as_mut_slice(), cols, threads, |_row0, chunk| {
        for row in chunk.chunks_mut(cols) {
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - mx).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `d loss / d x` for the `input` leaf.
    fn finite_diff_check(build: impl Fn(&mut Graph, Var) -> Var, x0: Tensor, tol: f32) {
        // Analytic gradient.
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).expect("input should receive a gradient").clone();

        // Numeric gradient (central differences, f64-friendly epsilon for f32).
        let eps = 1e-3_f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.as_mut_slice()[i] += eps;
            let mut gp = Graph::new();
            let v = gp.input(xp);
            let lp = build(&mut gp, v);
            let fp = gp.value(lp).get(0, 0);

            let mut xm = x0.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut gm = Graph::new();
            let v = gm.input(xm);
            let lm = build(&mut gm, v);
            let fm = gm.value(lm).get(0, 0);

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn sample_x() -> Tensor {
        Tensor::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.05, -1.4, 0.9])
    }

    #[test]
    fn grad_matmul() {
        let w = Tensor::from_vec(3, 2, vec![0.2, -0.4, 0.9, 0.1, -0.3, 0.8]);
        finite_diff_check(
            move |g, x| {
                let wv = g.constant(w.clone());
                let y = g.matmul(x, wv);
                g.sum_all(y)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_bt() {
        let w = Tensor::from_vec(2, 3, vec![0.2, -0.4, 0.9, 0.1, -0.3, 0.8]);
        finite_diff_check(
            move |g, x| {
                let wv = g.constant(w.clone());
                let y = g.matmul_bt(x, wv);
                let s = g.square(y);
                g.mean_all(s)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_right_factor() {
        // Check gradient wrt the *right* matmul factor too.
        let a = Tensor::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.25]);
        finite_diff_check(
            move |g, x| {
                let av = g.constant(a.clone());
                let y = g.matmul(av, x);
                let s = g.square(y);
                g.sum_all(s)
            },
            Tensor::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.05, -1.4, 0.9]),
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for act in ["tanh", "sigmoid", "leaky", "softmax", "sqrt"] {
            let a = act.to_string();
            finite_diff_check(
                move |g, x| {
                    let y = match a.as_str() {
                        "tanh" => g.tanh(x),
                        "sigmoid" => g.sigmoid(x),
                        "leaky" => g.leaky_relu(x, 0.2),
                        "softmax" => g.softmax(x),
                        "sqrt" => {
                            let p = g.square(x);
                            let p = g.add_scalar(p, 0.5);
                            g.sqrt(p)
                        }
                        _ => unreachable!(),
                    };
                    let s = g.square(y);
                    g.mean_all(s)
                },
                sample_x(),
                2e-2,
            );
        }
    }

    #[test]
    fn grad_arithmetic_chain() {
        let b = Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.1, -0.2, -0.3]);
        finite_diff_check(
            move |g, x| {
                let bv = g.constant(b.clone());
                let y = g.add(x, bv);
                let y = g.scale(y, 1.7);
                let y = g.add_scalar(y, -0.3);
                let z = g.mul(y, x);
                let z = g.sub(z, x);
                g.mean_all(z)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_mul_col_and_sum_rows() {
        finite_diff_check(
            |g, x| {
                let s = g.sum_rows(x); // B x 1
                let y = g.mul_col(x, s);
                g.sum_all(y)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_slice() {
        finite_diff_check(
            |g, x| {
                let a = g.slice_cols(x, 0, 2);
                let b = g.slice_cols(x, 1, 3);
                let c = g.concat_cols(&[a, b]);
                let s = g.square(c);
                g.sum_all(s)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_add_row_bias() {
        finite_diff_check(
            |g, x| {
                // Use x's first row as a bias onto a constant.
                let base = g.constant(Tensor::ones(4, 3));
                let bias = g.slice_cols(x, 0, 3); // still 2x3; take row via matmul trick
                let pick = g.constant(Tensor::from_vec(1, 2, vec![1.0, 0.0]));
                let row = g.matmul(pick, bias); // 1 x 3
                let y = g.add_row(base, row);
                let s = g.square(y);
                g.sum_all(s)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_cross_entropy() {
        let targets = Tensor::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        finite_diff_check(move |g, x| g.softmax_cross_entropy(x, targets.clone()), sample_x(), 1e-2);
    }

    #[test]
    fn param_grads_collect_by_id() {
        let mut store = ParamStore::new();
        let wid = store.add("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new();
        let w = g.param(&store, wid);
        let x = g.constant(Tensor::from_vec(1, 2, vec![1.0, 1.0]));
        let y = g.matmul(x, w);
        let loss = g.sum_all(y);
        g.backward(loss);
        let grads = g.param_grads();
        // d/dw of sum(x*w) with x = [1,1] is all-ones.
        assert_eq!(grads.get(wid).unwrap().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn constants_do_not_allocate_grads() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones(2, 2));
        let b = g.constant(Tensor::ones(2, 2));
        let c = g.add(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        assert!(g.grad(a).is_none());
        assert!(g.grad(c).is_none());
    }

    #[test]
    fn softmax_rows_is_simplex() {
        let x = Tensor::from_vec(2, 3, vec![1000.0, 1001.0, 999.0, -5.0, 0.0, 5.0]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row_slice(r).iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn grad_shared_subexpression_accumulates() {
        // loss = sum(x) + mean(x); both paths hit x.
        finite_diff_check(
            |g, x| {
                let s = g.sum_all(x);
                let m = g.mean_all(x);
                g.add(s, m)
            },
            sample_x(),
            1e-2,
        );
    }
}
