//! Tape-based reverse-mode automatic differentiation.
//!
//! The engine separates *what to compute* from *where the bytes live*:
//!
//! * a [`Plan`] records op topology + output shapes (the tape proper);
//! * a [`crate::workspace::Workspace`] owns reusable, shape-keyed tensor
//!   storage that backs every node value and gradient;
//! * a [`Graph`] is the eager facade over both: values are still computed
//!   at record time, and one call to [`Graph::backward`] propagates
//!   gradients from a scalar loss back to every parameter leaf.
//!
//! Training loops hand one workspace from step to step
//! ([`Graph::with_workspace`] / [`Graph::finish`]), so steady-state steps
//! reuse the previous step's buffers instead of reallocating them; a plain
//! [`Graph::new`] owns a private workspace and behaves exactly like a
//! single-use tape. For static shapes the recorded plan can also be
//! replayed on fresh leaf values without re-recording via
//! [`PlanExecutor`].
//!
//! Gradient flow is tracked per node (`needs_grad`), so large data constants
//! never have gradient buffers allocated for them. Buffer reuse never
//! changes arithmetic: almost every op fully overwrites its output (the
//! matmul `*_into` family has overwrite semantics, so those buffers come
//! from [`Workspace::take_raw`] with no memset), the few genuinely
//! accumulating consumers draw zero-filled buffers, and every kernel runs
//! with the same threading decisions as the fresh-allocation path — so
//! results are bitwise identical (see
//! [`crate::gradcheck::check_workspace_determinism`]).

use crate::kernels::{self, Precision};
use crate::parallel::{self, PARALLEL_ELEMS};
use crate::params::{GradMap, ParamId, ParamStore};
use crate::tensor::{self, Tensor};
use crate::workspace::{Bf16Layout, Workspace};
use rand::Rng;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant or parameter leaf.
    Leaf {
        param: Option<ParamId>,
    },
    /// `a * b` (matrix product).
    MatMul(Var, Var),
    /// `a * b^T` (matrix product against a transposed right factor).
    MatMulBT(Var, Var),
    /// Elementwise `a + b` (same shape).
    Add(Var, Var),
    /// `a + row` where `row` is `1 x n`, broadcast over rows.
    AddRow(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise `a * b`.
    Mul(Var, Var),
    /// `a[r, j] * c[r, 0]`: multiply each row of `a` by a per-row scalar.
    MulCol(Var, Var),
    /// `a * s` for a compile-time scalar.
    Scale(Var, f32),
    /// `a + s` for a compile-time scalar.
    AddScalar(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    /// Leaky ReLU with negative slope `alpha`.
    LeakyRelu(Var, f32),
    /// Row-wise softmax.
    Softmax(Var),
    /// Elementwise square root (input must be positive).
    Sqrt(Var),
    /// Sum of all elements, producing a `1 x 1` scalar.
    SumAll(Var),
    /// Mean of all elements, producing a `1 x 1` scalar.
    MeanAll(Var),
    /// Per-row sums, producing `rows x 1`.
    SumRows(Var),
    /// Horizontal concatenation of `len` vars stored at `start` in the
    /// plan's shared operand arena (avoids a per-op `Vec` allocation).
    ConcatCols {
        start: usize,
        len: usize,
    },
    /// Fused `concat_cols(parts) * w` without materializing the
    /// concatenation: each part's partial product accumulates into the
    /// output in ascending part order, which is exactly the ascending-`k`
    /// chain of the equivalent concat + matmul — bitwise identical, one
    /// fewer tensor per step. `parts` live in the shared operand arena.
    ConcatMatMul {
        start: usize,
        len: usize,
        w: Var,
    },
    /// Columns `[start, end)` of the input.
    SliceCols(Var, usize, usize),
    /// Fused softmax + cross-entropy against constant one-hot-ish targets;
    /// produces the mean loss as a `1 x 1` scalar.
    SoftmaxCrossEntropy {
        logits: Var,
        targets: Tensor,
    },
}

/// One recorded node: the op plus its output shape and gradient-flow flag.
#[derive(Debug, Clone)]
struct PlanNode {
    op: Op,
    rows: usize,
    cols: usize,
    needs_grad: bool,
}

/// The recorded topology of a computation: ops, output shapes and the
/// shared multi-operand arena — everything about a step *except* the bytes.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    nodes: Vec<PlanNode>,
    /// Operand arena for variable-arity ops (`ConcatCols`).
    parts: Vec<Var>,
    /// Rebindable input slots, in registration order ([`Graph::input_slot`]).
    /// Each entry is a constant leaf whose value a [`PlanExecutor`] may
    /// overwrite between replays ([`PlanExecutor::set_input_slot`]), so
    /// per-request data (noise draws, conditioning attributes) binds into an
    /// already-recorded tape instead of forcing a re-record.
    inputs: Vec<Var>,
}

impl Plan {
    fn shape(&self, v: Var) -> (usize, usize) {
        (self.nodes[v.0].rows, self.nodes[v.0].cols)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A reusable autodiff tape: eager facade over a [`Plan`] and a
/// [`Workspace`].
#[derive(Default)]
pub struct Graph {
    plan: Plan,
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    /// Indices consumed by [`Graph::take_value`]; any later access is a bug.
    taken: Vec<usize>,
    ws: Workspace,
}

impl Graph {
    /// Creates a graph backed by a private workspace.
    pub fn new() -> Self {
        Graph::with_workspace(Workspace::default())
    }

    /// Creates a graph backed by a caller-provided workspace, sizing the
    /// tape to the workspace's node-count hint (the node count of the last
    /// graph finished against it — exact for static step shapes).
    pub fn with_workspace(ws: Workspace) -> Self {
        let hint = ws.node_hint();
        Graph {
            plan: Plan { nodes: Vec::with_capacity(hint), parts: Vec::new(), inputs: Vec::new() },
            values: Vec::with_capacity(hint),
            grads: Vec::with_capacity(hint),
            taken: Vec::new(),
            ws,
        }
    }

    /// Tears the graph down, returning every value and gradient buffer to
    /// the workspace and recording this graph's node count as the capacity
    /// hint for the next one.
    pub fn finish(mut self) -> Workspace {
        let nodes = self.plan.nodes.len();
        for t in self.values.drain(..) {
            self.ws.reclaim(t);
        }
        for g in self.grads.drain(..).flatten() {
            self.ws.reclaim(g);
        }
        self.ws.set_node_hint(nodes);
        self.ws.end_cycle();
        self.ws
    }

    /// Consumes the graph, converting it into a [`PlanExecutor`] that can
    /// replay the recorded plan on fresh leaf values without re-recording.
    pub fn into_executor(self) -> PlanExecutor {
        debug_assert!(self.taken.is_empty(), "cannot build an executor from a graph with consumed values");
        let mut ws = self.ws;
        // Frozen parameter leaves are immutable for the executor's life
        // (every rebind path clears the cache), so their f32 `MatMulBT`
        // panels can be packed once and replayed. Eager training graphs
        // never enable this — their parameters change every step.
        ws.enable_frozen_panels();
        PlanExecutor { plan: self.plan, values: self.values, grads: self.grads, ws }
    }

    /// Read-only access to the backing workspace (pool statistics etc.).
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    fn assert_live(&self, v: Var) {
        debug_assert!(!self.taken.contains(&v.0), "access to node {} after its value was taken", v.0);
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> Var {
        let (rows, cols) = value.shape();
        self.plan.nodes.push(PlanNode { op, rows, cols, needs_grad });
        self.values.push(value);
        self.grads.push(None);
        Var(self.values.len() - 1)
    }

    /// Records `op` with output shape `rows x cols`: takes pooled storage
    /// (raw — every forward rule fully overwrites its output), evaluates the
    /// op into it, and pushes the node.
    fn record(&mut self, op: Op, rows: usize, cols: usize, needs_grad: bool) -> Var {
        let mut out = self.ws.take_raw(rows, cols);
        eval_op_into(&op, &self.plan.nodes, &self.plan.parts, &self.values, &mut out, &mut self.ws);
        self.push(op, out, needs_grad)
    }

    fn needs(&self, v: Var) -> bool {
        self.plan.needs(v)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        self.assert_live(v);
        &self.values[v.0]
    }

    /// Moves the forward value of `v` out of the graph without copying.
    /// The node is marked consumed; any later access to it is a bug
    /// (checked in debug builds).
    pub fn take_value(&mut self, v: Var) -> Tensor {
        self.assert_live(v);
        self.taken.push(v.0);
        std::mem::replace(&mut self.values[v.0], Tensor::zeros(0, 0))
    }

    /// Consumes the graph and returns the forward value of `v` without
    /// copying — for one-shot callers that only need one detached output
    /// tensor. Callers that reuse a workspace should prefer
    /// [`Graph::take_value`] followed by [`Graph::finish`].
    pub fn into_value(mut self, v: Var) -> Tensor {
        self.take_value(v)
    }

    /// The accumulated gradient of a node (after [`Graph::backward`]).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.assert_live(v);
        self.grads[v.0].as_ref()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.plan.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.plan.nodes.is_empty()
    }

    /// Hands out a zero-filled scratch tensor from the workspace pool (for
    /// callers that fill a tensor manually before adopting it via
    /// [`Graph::constant`], e.g. the gradient-penalty interpolation).
    pub fn take_scratch(&mut self, rows: usize, cols: usize) -> Tensor {
        self.ws.take_zeroed(rows, cols)
    }

    /// Like [`Graph::take_scratch`] but with unspecified contents — for
    /// callers that fully overwrite the buffer before reading it (see
    /// [`Workspace::take_raw`] for the debug-build NaN poisoning that keeps
    /// this honest).
    pub fn take_scratch_raw(&mut self, rows: usize, cols: usize) -> Tensor {
        self.ws.take_raw(rows, cols)
    }

    // ---- leaves ----------------------------------------------------------

    /// Records a constant leaf: no gradient is tracked through it. The
    /// tensor is adopted as-is (its storage joins the pool at `finish`).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf { param: None }, value, false)
    }

    /// Records a constant leaf by copying `src` into pooled storage.
    pub fn constant_copied(&mut self, src: &Tensor) -> Var {
        let mut v = self.ws.take_raw(src.rows(), src.cols());
        v.copy_from(src);
        self.push(Op::Leaf { param: None }, v, false)
    }

    /// Records an all-zero constant leaf from pooled storage.
    pub fn constant_zeros(&mut self, rows: usize, cols: usize) -> Var {
        let v = self.ws.take_zeroed(rows, cols);
        self.push(Op::Leaf { param: None }, v, false)
    }

    /// Records a `N(0, std^2)` constant leaf in pooled storage, consuming
    /// the RNG exactly like `Tensor::randn` (bitwise-identical stream).
    pub fn constant_randn<R: Rng + ?Sized>(
        &mut self,
        rows: usize,
        cols: usize,
        std: f32,
        rng: &mut R,
    ) -> Var {
        let mut v = self.ws.take_raw(rows, cols);
        v.fill_randn(std, rng);
        self.push(Op::Leaf { param: None }, v, false)
    }

    /// Records a constant leaf that *does* track gradients (used for
    /// inspecting input gradients, e.g. in tests and saliency probes).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf { param: None }, value, true)
    }

    /// Records a *rebindable* constant leaf: identical to [`Graph::constant`]
    /// during eager evaluation, but additionally registered in the plan's
    /// input-slot list so a [`PlanExecutor`] built from this graph can
    /// overwrite its value between replays ([`PlanExecutor::set_input_slot`]).
    /// Slots are numbered in registration order — callers bind them in the
    /// same order they were recorded.
    pub fn input_slot(&mut self, value: Tensor) -> Var {
        let v = self.push(Op::Leaf { param: None }, value, false);
        self.plan.inputs.push(v);
        v
    }

    /// Records a parameter leaf bound to `id`, copying the current value
    /// from the store into pooled storage.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let src = store.get(id);
        let mut v = self.ws.take_raw(src.rows(), src.cols());
        v.copy_from(src);
        self.push(Op::Leaf { param: Some(id) }, v, true)
    }

    /// Records a parameter value as a *frozen* leaf: the value is copied
    /// from the store like [`Graph::param`], but no gradient is ever
    /// tracked to the parameter — gradients still flow through consuming
    /// ops to their other operands. Unlike [`Graph::constant_copied`] the
    /// leaf keeps its [`ParamId`] binding, so
    /// [`PlanExecutor::refresh_params`] reloads it and the bf16 inference
    /// tier can replay the parameter's cached weight packing instead of
    /// re-rounding the matrix on every op.
    pub fn frozen_param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let src = store.get(id);
        let mut v = self.ws.take_raw(src.rows(), src.cols());
        v.copy_from(src);
        self.push(Op::Leaf { param: Some(id) }, v, false)
    }

    // ---- ops -------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let rows = self.value(a).rows();
        let cols = self.value(b).cols();
        let ng = self.needs(a) || self.needs(b);
        self.record(Op::MatMul(a, b), rows, cols, ng)
    }

    /// Matrix product `a * b^T`.
    pub fn matmul_bt(&mut self, a: Var, b: Var) -> Var {
        let rows = self.value(a).rows();
        let cols = self.value(b).rows();
        let ng = self.needs(a) || self.needs(b);
        self.record(Op::MatMulBT(a, b), rows, cols, ng)
    }

    /// Elementwise sum of same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a) || self.needs(b);
        self.record(Op::Add(a, b), rows, cols, ng)
    }

    /// Adds a `1 x n` row vector (bias) to every row of `a`.
    ///
    /// Rows are split across threads for large activations; each row is
    /// updated independently, so the result is bitwise identical to a
    /// serial pass.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let r = self.value(row);
        assert_eq!(r.rows(), 1, "add_row expects a 1 x n row vector");
        assert_eq!(r.cols(), self.value(a).cols(), "add_row width mismatch");
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a) || self.needs(row);
        self.record(Op::AddRow(a, row), rows, cols, ng)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a) || self.needs(b);
        self.record(Op::Sub(a, b), rows, cols, ng)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a) || self.needs(b);
        self.record(Op::Mul(a, b), rows, cols, ng)
    }

    /// Multiplies each row of `a` (`B x n`) by the per-row scalar `c` (`B x 1`).
    pub fn mul_col(&mut self, a: Var, c: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        assert_eq!(self.value(c).shape(), (rows, 1), "mul_col expects a B x 1 column");
        let ng = self.needs(a) || self.needs(c);
        self.record(Op::MulCol(a, c), rows, cols, ng)
    }

    /// Multiplies by a compile-time scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a);
        self.record(Op::Scale(a, s), rows, cols, ng)
    }

    /// Adds a compile-time scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a);
        self.record(Op::AddScalar(a, s), rows, cols, ng)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a);
        self.record(Op::Tanh(a), rows, cols, ng)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a);
        self.record(Op::Sigmoid(a), rows, cols, ng)
    }

    /// Elementwise leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a);
        self.record(Op::LeakyRelu(a, alpha), rows, cols, ng)
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax(&mut self, a: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a);
        self.record(Op::Softmax(a), rows, cols, ng)
    }

    /// Elementwise square root. Inputs should be strictly positive; callers
    /// typically `add_scalar` a small epsilon first.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        let ng = self.needs(a);
        self.record(Op::Sqrt(a), rows, cols, ng)
    }

    /// Sum over all elements (`1 x 1` result).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let ng = self.needs(a);
        self.record(Op::SumAll(a), 1, 1, ng)
    }

    /// Mean over all elements (`1 x 1` result).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let ng = self.needs(a);
        self.record(Op::MeanAll(a), 1, 1, ng)
    }

    /// Per-row sums (`B x 1` result).
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let rows = self.value(a).rows();
        let ng = self.needs(a);
        self.record(Op::SumRows(a), rows, 1, ng)
    }

    /// Horizontal concatenation of several vars.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one var");
        let rows = self.value(parts[0]).rows();
        assert!(parts.iter().all(|&p| self.value(p).rows() == rows), "concat_cols requires equal row counts");
        let cols: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let ng = parts.iter().any(|&p| self.needs(p));
        let start = self.plan.parts.len();
        self.plan.parts.extend_from_slice(parts);
        self.record(Op::ConcatCols { start, len: parts.len() }, rows, cols, ng)
    }

    /// Fused `concat_cols(parts) * w` without materializing the
    /// concatenation (the LSTM gate product `[x, h] * W`). Bitwise identical
    /// to `matmul(concat_cols(parts), w)` — each part's partial product
    /// extends the same ascending-`k` accumulation chain — but skips one
    /// `rows x sum(cols)` tensor per step.
    ///
    /// # Panics
    /// Panics if `parts` is empty, row counts differ, or the concatenated
    /// width does not match `w`'s row count.
    pub fn concat_matmul(&mut self, parts: &[Var], w: Var) -> Var {
        assert!(!parts.is_empty(), "concat_matmul needs at least one var");
        let rows = self.value(parts[0]).rows();
        assert!(
            parts.iter().all(|&p| self.value(p).rows() == rows),
            "concat_matmul requires equal row counts"
        );
        let ktot: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        assert_eq!(
            ktot,
            self.value(w).rows(),
            "concat_matmul inner-dimension mismatch: parts concatenate to width {ktot}"
        );
        let cols = self.value(w).cols();
        let ng = parts.iter().any(|&p| self.needs(p)) || self.needs(w);
        let start = self.plan.parts.len();
        self.plan.parts.extend_from_slice(parts);
        self.record(Op::ConcatMatMul { start, len: parts.len(), w }, rows, cols, ng)
    }

    /// Columns `[start, end)` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let rows = self.value(a).rows();
        assert!(start <= end && end <= self.value(a).cols(), "slice_cols out of range");
        let ng = self.needs(a);
        self.record(Op::SliceCols(a, start, end), rows, end - start, ng)
    }

    /// Convenience: elementwise square via `mul`.
    pub fn square(&mut self, a: Var) -> Var {
        self.mul(a, a)
    }

    /// Fused row-wise softmax + cross-entropy against constant `targets`
    /// (rows summing to 1). Produces the mean loss over rows.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: Tensor) -> Var {
        assert_eq!(self.value(logits).shape(), targets.shape(), "softmax_cross_entropy shape mismatch");
        let ng = self.needs(logits);
        self.record(Op::SoftmaxCrossEntropy { logits, targets }, 1, 1, ng)
    }

    // ---- backward --------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward requires a scalar loss");
        self.backward_seeded(loss, 1.0);
    }

    /// Runs reverse-mode differentiation seeding `d(loss) = seed`.
    pub fn backward_seeded(&mut self, loss: Var, seed: f32) {
        self.assert_live(loss);
        backward_impl(&self.plan, &self.values, &mut self.grads, &mut self.ws, loss, seed);
    }

    /// Collects gradients of every parameter leaf into a [`GradMap`].
    pub fn param_grads(&self) -> GradMap {
        collect_param_grads(&self.plan, &self.grads)
    }

    /// Flattens every node value followed by every node gradient into one
    /// vector, in node order. Used by the determinism checker to compare two
    /// executions bitwise.
    pub(crate) fn flat_state(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for v in &self.values {
            out.extend_from_slice(v.as_slice());
        }
        for gr in self.grads.iter().flatten() {
            out.extend_from_slice(gr.as_slice());
        }
        out
    }
}

/// Replays a recorded [`Plan`] on fresh leaf values without re-recording:
/// the topology, shapes and buffers are fixed after recording, so repeated
/// [`PlanExecutor::run`] calls perform zero tensor allocations.
///
/// Built via [`Graph::into_executor`]; the recorded forward values are kept,
/// so the first results can be read without calling `run`.
pub struct PlanExecutor {
    plan: Plan,
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    ws: Workspace,
}

impl PlanExecutor {
    /// Overwrites the value of a leaf node (shape must match the recording).
    ///
    /// # Panics
    /// Panics if `v` is not a leaf or the shape differs.
    pub fn set_input(&mut self, v: Var, value: &Tensor) {
        assert!(matches!(self.plan.nodes[v.0].op, Op::Leaf { .. }), "set_input expects a leaf node");
        self.values[v.0].copy_from(value);
    }

    /// Number of rebindable input slots registered during recording
    /// ([`Graph::input_slot`]).
    pub fn input_slots(&self) -> usize {
        self.plan.inputs.len()
    }

    /// Recorded shape of input slot `i` (registration order).
    pub fn input_slot_shape(&self, i: usize) -> (usize, usize) {
        self.plan.shape(self.plan.inputs[i])
    }

    /// Binds `value` into input slot `i` (registration order) ahead of the
    /// next [`PlanExecutor::run`].
    ///
    /// # Panics
    /// Panics if the shape differs from the recording — slot shapes are
    /// baked into the plan.
    pub fn set_input_slot(&mut self, i: usize, value: &Tensor) {
        let v = self.plan.inputs[i];
        assert_eq!(self.plan.shape(v), value.shape(), "input slot {i} shape mismatch (recorded vs bound)");
        self.values[v.0].copy_from(value);
    }

    /// Reloads every parameter leaf from `store` (e.g. after an optimizer
    /// step or a serving hot-reload). Drops cached per-parameter weight
    /// packings (bf16 and frozen f32 panels): they were derived from the
    /// old values.
    pub fn refresh_params(&mut self, store: &ParamStore) {
        self.ws.clear_param_caches();
        for (node, val) in self.plan.nodes.iter().zip(&mut self.values) {
            if let Op::Leaf { param: Some(id) } = node.op {
                val.copy_from(store.get(id));
            }
        }
    }

    /// Like [`PlanExecutor::refresh_params`], but validates first that every
    /// parameter leaf resolves in `store` with its recorded shape. Returns
    /// `false` (leaving the executor untouched) when any leaf is missing or
    /// differently shaped — the caller should re-record against the new
    /// model instead of replaying a stale plan.
    pub fn try_refresh_params(&mut self, store: &ParamStore) -> bool {
        for node in &self.plan.nodes {
            if let Op::Leaf { param: Some(id) } = node.op {
                if id.0 >= store.len() || store.get(id).shape() != (node.rows, node.cols) {
                    return false;
                }
            }
        }
        self.refresh_params(store);
        true
    }

    /// Recomputes every non-leaf value in place from the current leaf
    /// values. Runs the exact kernels the eager recording ran, so the
    /// results are bitwise identical to re-recording the graph.
    pub fn run(&mut self) {
        for slot in &mut self.grads {
            if let Some(g) = slot.take() {
                self.ws.reclaim(g);
            }
        }
        for i in 0..self.plan.nodes.len() {
            if matches!(self.plan.nodes[i].op, Op::Leaf { .. }) {
                continue;
            }
            let (prior, rest) = self.values.split_at_mut(i);
            let out = &mut rest[0];
            // No clearing: every forward rule fully overwrites its output.
            eval_op_into(
                &self.plan.nodes[i].op,
                &self.plan.nodes,
                &self.plan.parts,
                prior,
                out,
                &mut self.ws,
            );
        }
        self.ws.end_cycle();
    }

    /// The forward value of a node (from the last `run`, or the recording).
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.0]
    }

    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward requires a scalar loss");
        backward_impl(&self.plan, &self.values, &mut self.grads, &mut self.ws, loss, 1.0);
    }

    /// The accumulated gradient of a node (after [`PlanExecutor::backward`]).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }

    /// Collects gradients of every parameter leaf into a [`GradMap`].
    pub fn param_grads(&self) -> GradMap {
        collect_param_grads(&self.plan, &self.grads)
    }
}

fn collect_param_grads(plan: &Plan, grads: &[Option<Tensor>]) -> GradMap {
    let mut map = GradMap::with_capacity(0);
    for (node, grad) in plan.nodes.iter().zip(grads) {
        if let Op::Leaf { param: Some(id) } = node.op {
            if let Some(g) = grad {
                map.accumulate(id, g);
            }
        }
    }
    map
}

/// Worker count for an elementwise kernel over `len` elements: the
/// workspace override when set, otherwise the size-based default. The count
/// only decides how many row chunks the persistent pool wakes
/// ([`parallel::run_row_chunks`]) — results are bitwise identical at every
/// width.
fn elem_threads(ws: &Workspace, len: usize) -> usize {
    ws.override_or(if len >= PARALLEL_ELEMS { parallel::num_threads() } else { 1 })
}

/// Worker count for a matmul-shaped kernel of `macs` multiply-accumulates:
/// the workspace override when set, otherwise the gradual
/// [`tensor::matmul_threads`] ramp (one worker per `MACS_PER_WORKER` of
/// work above the `PARALLEL_MACS` floor).
fn mac_threads(ws: &Workspace, macs: usize) -> usize {
    ws.override_or(tensor::matmul_threads(macs))
}

/// The parameter bound to `v` when `v` is a parameter leaf — the key under
/// which the workspace caches bf16 weight packings.
fn leaf_param(nodes: &[PlanNode], v: Var) -> Option<ParamId> {
    match nodes.get(v.0)?.op {
        Op::Leaf { param } => param,
        _ => None,
    }
}

/// The parameter bound to `v` when `v` is a *frozen* parameter leaf
/// ([`Graph::frozen_param`]: bound to a `ParamId` but excluded from
/// gradient flow). This is the key under which the workspace caches f32
/// `MatMulBT` panels — trainable parameter leaves must never match, since
/// the optimizer mutates them between steps while a cached panel would not
/// notice.
fn leaf_frozen_param(nodes: &[PlanNode], v: Var) -> Option<ParamId> {
    let node = nodes.get(v.0)?;
    match node.op {
        Op::Leaf { param } if !node.needs_grad => param,
        _ => None,
    }
}

/// Evaluates one non-leaf op into `out` (correctly shaped; contents may be
/// stale — every rule fully overwrites it), reading operands from `values`.
/// Shared by eager recording and plan replay, so both paths run identical
/// kernels with identical threading. `nodes` carries the operand ops so the
/// bf16 arms can recognize parameter leaves and reuse their cached packing.
fn eval_op_into(
    op: &Op,
    nodes: &[PlanNode],
    parts: &[Var],
    values: &[Tensor],
    out: &mut Tensor,
    ws: &mut Workspace,
) {
    match op {
        Op::Leaf { .. } => unreachable!("leaves have no forward rule"),
        Op::MatMul(a, b) => {
            let (va, vb) = (&values[a.0], &values[b.0]);
            let th = mac_threads(ws, va.rows() * va.cols() * vb.cols());
            // The workspace precision (inference-only; training workspaces
            // are always F32) routes the forward GEMM family. Backward
            // rules have no bf16 variant by design — inference never
            // records gradients.
            if ws.precision() == Precision::Bf16 {
                // Weight operands (parameter leaves) hit the workspace's
                // packed-B cache: generation re-multiplies the same
                // parameters every timestep, and the O(k*n) per-call pack
                // would otherwise rival the GEMM itself at serving batch
                // sizes. Activation operands still pack per call.
                if let Some(id) = leaf_param(nodes, *b) {
                    let packed = ws.packed_bf16(id, Bf16Layout::RowMajor, vb);
                    va.matmul_into_bf16_packed(packed, vb.cols(), out, th, kernels::active());
                } else {
                    let mut scratch = ws.take_u16();
                    va.matmul_into_bf16(vb, out, th, kernels::active(), &mut scratch);
                    ws.put_u16(scratch);
                }
            } else {
                va.matmul_into(vb, out, th);
            }
        }
        Op::MatMulBT(a, b) => {
            let (va, vb) = (&values[a.0], &values[b.0]);
            let th = mac_threads(ws, va.rows() * va.cols() * vb.rows());
            if ws.precision() == Precision::Bf16 {
                if let Some(id) = leaf_param(nodes, *b) {
                    let packed = ws.packed_bf16(id, Bf16Layout::Transposed, vb);
                    va.matmul_bt_into_bf16_packed(packed, vb.rows(), out, th, kernels::active());
                } else {
                    let mut panel = ws.take_u16();
                    va.matmul_bt_into_bf16(vb, out, th, kernels::active(), &mut panel);
                    ws.put_u16(panel);
                }
            } else {
                // Frozen parameter operands inside a replayed plan hit the
                // workspace's f32 panel cache: the `O(k*n)` `pack_bt` is
                // paid once per plan life instead of once per call. Gated on
                // the same `PACK_MIN_ROWS` condition the fresh-pack entry
                // points use, so cached and fresh paths run the identical
                // kernel chain (bitwise-equal outputs).
                let use_panel = va.rows() >= kernels::PACK_MIN_ROWS && va.cols() * vb.rows() > 0;
                let frozen =
                    (use_panel && ws.frozen_panels()).then(|| leaf_frozen_param(nodes, *b)).flatten();
                if let Some(id) = frozen {
                    let panel = ws.packed_f32(id, vb);
                    va.matmul_bt_into_f32_packed(panel, vb.rows(), out, th, kernels::active());
                } else {
                    let mut panel = ws.take_raw(va.cols(), vb.rows());
                    va.matmul_bt_into_with_panel(vb, out, th, &mut panel);
                    ws.reclaim(panel);
                }
            }
        }
        Op::Add(a, b) => {
            let (va, vb) = (&values[a.0], &values[b.0]);
            va.zip_into(vb, out, elem_threads(ws, va.len()), |x, y| x + y);
        }
        Op::AddRow(a, row) => {
            let va = &values[a.0];
            out.copy_from(va);
            let rslice = values[row.0].as_slice();
            let cols = out.cols().max(1);
            let th = elem_threads(ws, out.len());
            parallel::run_row_chunks(out.as_mut_slice(), cols, th, |_row0, chunk| {
                for vrow in chunk.chunks_mut(cols) {
                    for (x, rv) in vrow.iter_mut().zip(rslice) {
                        *x += rv;
                    }
                }
            });
        }
        Op::Sub(a, b) => {
            let (va, vb) = (&values[a.0], &values[b.0]);
            va.zip_into(vb, out, elem_threads(ws, va.len()), |x, y| x - y);
        }
        Op::Mul(a, b) => {
            let (va, vb) = (&values[a.0], &values[b.0]);
            va.zip_into(vb, out, elem_threads(ws, va.len()), |x, y| x * y);
        }
        Op::MulCol(a, c) => {
            let va = &values[a.0];
            out.copy_from(va);
            let cs = values[c.0].as_slice();
            let cols = out.cols().max(1);
            let th = elem_threads(ws, out.len());
            parallel::run_row_chunks(out.as_mut_slice(), cols, th, |row0, chunk| {
                for (i, vrow) in chunk.chunks_mut(cols).enumerate() {
                    let s = cs[row0 + i];
                    for x in vrow {
                        *x *= s;
                    }
                }
            });
        }
        Op::Scale(a, s) => {
            let va = &values[a.0];
            let s = *s;
            va.map_into(out, elem_threads(ws, va.len()), |x| x * s);
        }
        Op::AddScalar(a, s) => {
            let va = &values[a.0];
            let s = *s;
            va.map_into(out, elem_threads(ws, va.len()), |x| x + s);
        }
        Op::Tanh(a) => {
            let va = &values[a.0];
            va.map_into(out, elem_threads(ws, va.len()), f32::tanh);
        }
        Op::Sigmoid(a) => {
            let va = &values[a.0];
            va.map_into(out, elem_threads(ws, va.len()), |x| 1.0 / (1.0 + (-x).exp()));
        }
        Op::LeakyRelu(a, alpha) => {
            let va = &values[a.0];
            let alpha = *alpha;
            va.map_into(out, elem_threads(ws, va.len()), |x| if x > 0.0 { x } else { alpha * x });
        }
        Op::Softmax(a) => {
            let va = &values[a.0];
            softmax_rows_into(va, out, elem_threads(ws, va.len()));
        }
        Op::Sqrt(a) => {
            let va = &values[a.0];
            va.map_into(out, elem_threads(ws, va.len()), |x| x.max(0.0).sqrt());
        }
        Op::SumAll(a) => {
            out.as_mut_slice()[0] = values[a.0].sum();
        }
        Op::MeanAll(a) => {
            out.as_mut_slice()[0] = values[a.0].mean();
        }
        Op::SumRows(a) => {
            values[a.0].sum_rows_into(out);
        }
        Op::ConcatCols { start, len } => {
            let ps = &parts[*start..*start + *len];
            for r in 0..out.rows() {
                let orow = out.row_slice_mut(r);
                let mut off = 0;
                for &p in ps {
                    let t = &values[p.0];
                    orow[off..off + t.cols()].copy_from_slice(t.row_slice(r));
                    off += t.cols();
                }
            }
        }
        Op::SliceCols(a, start, end) => {
            values[a.0].slice_cols_into(*start, *end, out);
        }
        Op::ConcatMatMul { start, len, w } => {
            let ps = &parts[*start..*start + *len];
            let wv = &values[w.0];
            let (ktot, n) = wv.shape();
            let th = mac_threads(ws, out.rows() * ktot * n);
            let kind = kernels::active();
            if ktot == 0 {
                // Degenerate zero-width concat: the product is all zeros and
                // the per-part loop below never touches `out`.
                out.as_mut_slice().fill(0.0);
                return;
            }
            // Each part multiplies against its block of W's rows; parts in
            // ascending order extend one ascending-k accumulation chain per
            // output element, so this is bitwise identical to materializing
            // the concatenation and doing one matmul. Under Bf16 the whole
            // W is packed once and the per-part blocks are sliced from the
            // u16 panel — same chain structure, bf16-rounded operands.
            if ws.precision() == Precision::Bf16 {
                // Parameter W replays its cached packing (see the MatMul
                // arm); a non-leaf W falls back to a per-call pack into the
                // pooled scratch.
                let mut scratch = None;
                let w16: &[u16] = if let Some(id) = leaf_param(nodes, *w) {
                    ws.packed_bf16(id, Bf16Layout::RowMajor, wv)
                } else {
                    let mut buf = ws.take_u16();
                    kernels::pack_bf16(wv.as_slice(), &mut buf);
                    scratch.insert(buf)
                };
                let mut off = 0;
                for (pi, &p) in ps.iter().enumerate() {
                    let vp = &values[p.0];
                    let kp = vp.cols();
                    let wblock = &w16[off * n..(off + kp) * n];
                    kernels::gemm_nn_bf16(kind, vp.as_slice(), wblock, out.as_mut_slice(), kp, n, th, pi > 0);
                    off += kp;
                }
                if let Some(buf) = scratch {
                    ws.put_u16(buf);
                }
            } else {
                let mut off = 0;
                for (pi, &p) in ps.iter().enumerate() {
                    let vp = &values[p.0];
                    let kp = vp.cols();
                    let wblock = &wv.as_slice()[off * n..(off + kp) * n];
                    kernels::gemm_nn(kind, vp.as_slice(), wblock, out.as_mut_slice(), kp, n, th, pi > 0);
                    off += kp;
                }
            }
        }
        Op::SoftmaxCrossEntropy { logits, targets } => {
            let vl = &values[logits.0];
            let th = elem_threads(ws, vl.len());
            let mut probs = ws.take_raw(vl.rows(), vl.cols());
            softmax_rows_into(vl, &mut probs, th);
            let mut loss = 0.0;
            for r in 0..probs.rows() {
                for (p, t) in probs.row_slice(r).iter().zip(targets.row_slice(r)) {
                    if *t > 0.0 {
                        loss -= t * p.max(1e-12).ln();
                    }
                }
            }
            loss /= probs.rows().max(1) as f32;
            ws.reclaim(probs);
            out.as_mut_slice()[0] = loss;
        }
    }
}

/// Accumulates an owned gradient into `grads[v]`, reclaiming the buffer
/// when the slot already holds one.
fn acc_owned(plan: &Plan, grads: &mut [Option<Tensor>], ws: &mut Workspace, v: Var, g: Tensor) {
    debug_assert_eq!(g.shape(), plan.shape(v));
    match &mut grads[v.0] {
        Some(slot) => {
            slot.add_assign(&g);
            ws.reclaim(g);
        }
        slot @ None => *slot = Some(g),
    }
}

/// Accumulates a borrowed gradient into `grads[v]`, copying into pooled
/// storage only when the slot is empty.
fn acc_copy(plan: &Plan, grads: &mut [Option<Tensor>], ws: &mut Workspace, v: Var, g: &Tensor) {
    debug_assert_eq!(g.shape(), plan.shape(v));
    match &mut grads[v.0] {
        Some(slot) => slot.add_assign(g),
        slot @ None => {
            let mut t = ws.take_raw(g.rows(), g.cols());
            t.copy_from(g);
            *slot = Some(t);
        }
    }
}

/// Reverse-mode differentiation over a recorded plan. Free-standing so the
/// plan, value storage, gradient storage and workspace can be borrowed
/// disjointly — no op or gradient buffer is ever cloned.
fn backward_impl(
    plan: &Plan,
    values: &[Tensor],
    grads: &mut [Option<Tensor>],
    ws: &mut Workspace,
    loss: Var,
    seed: f32,
) {
    if let Some(old) = grads[loss.0].take() {
        ws.reclaim(old);
    }
    let mut s = ws.take_raw(1, 1);
    s.as_mut_slice()[0] = seed;
    grads[loss.0] = Some(s);

    for i in (0..=loss.0).rev() {
        if !plan.nodes[i].needs_grad {
            continue;
        }
        let Some(out_grad) = grads[i].take() else { continue };
        match &plan.nodes[i].op {
            Op::Leaf { .. } => {}
            Op::MatMul(a, b) => {
                if plan.needs(*a) {
                    let vb = &values[b.0];
                    let th = mac_threads(ws, out_grad.rows() * out_grad.cols() * vb.rows());
                    let mut g = ws.take_raw(out_grad.rows(), vb.rows());
                    let mut panel = ws.take_raw(out_grad.cols(), vb.rows());
                    out_grad.matmul_bt_into_with_panel(vb, &mut g, th, &mut panel);
                    ws.reclaim(panel);
                    acc_owned(plan, grads, ws, *a, g);
                }
                if plan.needs(*b) {
                    let va = &values[a.0];
                    let th = mac_threads(ws, va.rows() * va.cols() * out_grad.cols());
                    let mut g = ws.take_raw(va.cols(), out_grad.cols());
                    va.matmul_at_into(&out_grad, &mut g, th);
                    acc_owned(plan, grads, ws, *b, g);
                }
            }
            Op::MatMulBT(a, b) => {
                // c = a b^T  =>  da = dc * b ; db = dc^T * a
                if plan.needs(*a) {
                    let vb = &values[b.0];
                    let th = mac_threads(ws, out_grad.rows() * out_grad.cols() * vb.cols());
                    let mut g = ws.take_raw(out_grad.rows(), vb.cols());
                    out_grad.matmul_into(vb, &mut g, th);
                    acc_owned(plan, grads, ws, *a, g);
                }
                if plan.needs(*b) {
                    let va = &values[a.0];
                    let th = mac_threads(ws, out_grad.rows() * out_grad.cols() * va.cols());
                    let mut g = ws.take_raw(out_grad.cols(), va.cols());
                    out_grad.matmul_at_into(va, &mut g, th);
                    acc_owned(plan, grads, ws, *b, g);
                }
            }
            Op::Add(a, b) => {
                if plan.needs(*a) {
                    acc_copy(plan, grads, ws, *a, &out_grad);
                }
                if plan.needs(*b) {
                    acc_copy(plan, grads, ws, *b, &out_grad);
                }
            }
            Op::AddRow(a, row) => {
                if plan.needs(*a) {
                    acc_copy(plan, grads, ws, *a, &out_grad);
                }
                if plan.needs(*row) {
                    // sum_cols_into accumulates into zero-filled storage.
                    let mut g = ws.take_zeroed(1, out_grad.cols());
                    out_grad.sum_cols_into(&mut g);
                    acc_owned(plan, grads, ws, *row, g);
                }
            }
            Op::Sub(a, b) => {
                if plan.needs(*a) {
                    acc_copy(plan, grads, ws, *a, &out_grad);
                }
                if plan.needs(*b) {
                    let s = -1.0_f32;
                    let th = elem_threads(ws, out_grad.len());
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.map_into(&mut g, th, |x| x * s);
                    acc_owned(plan, grads, ws, *b, g);
                }
            }
            Op::Mul(a, b) => {
                if a == b {
                    // square: d = 2 * a * dout
                    let va = &values[a.0];
                    let th = elem_threads(ws, out_grad.len());
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.zip_into(va, &mut g, th, |d, y| (d * y) * 2.0);
                    acc_owned(plan, grads, ws, *a, g);
                } else {
                    if plan.needs(*a) {
                        let vb = &values[b.0];
                        let th = elem_threads(ws, out_grad.len());
                        let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                        out_grad.zip_into(vb, &mut g, th, |d, y| d * y);
                        acc_owned(plan, grads, ws, *a, g);
                    }
                    if plan.needs(*b) {
                        let va = &values[a.0];
                        let th = elem_threads(ws, out_grad.len());
                        let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                        out_grad.zip_into(va, &mut g, th, |d, y| d * y);
                        acc_owned(plan, grads, ws, *b, g);
                    }
                }
            }
            Op::MulCol(a, c) => {
                if plan.needs(*a) {
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    g.copy_from(&out_grad);
                    let cs = values[c.0].as_slice();
                    for (r, &s) in cs.iter().enumerate() {
                        for x in g.row_slice_mut(r) {
                            *x *= s;
                        }
                    }
                    acc_owned(plan, grads, ws, *a, g);
                }
                if plan.needs(*c) {
                    let va = &values[a.0];
                    let th = elem_threads(ws, out_grad.len());
                    let mut prod = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.zip_into(va, &mut prod, th, |d, y| d * y);
                    let mut g = ws.take_raw(prod.rows(), 1);
                    prod.sum_rows_into(&mut g);
                    ws.reclaim(prod);
                    acc_owned(plan, grads, ws, *c, g);
                }
            }
            Op::Scale(a, s) => {
                if plan.needs(*a) {
                    let s = *s;
                    let th = elem_threads(ws, out_grad.len());
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.map_into(&mut g, th, |x| x * s);
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::AddScalar(a, _) => {
                if plan.needs(*a) {
                    acc_copy(plan, grads, ws, *a, &out_grad);
                }
            }
            Op::Tanh(a) => {
                if plan.needs(*a) {
                    let y = &values[i];
                    let th = elem_threads(ws, out_grad.len());
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.zip_into(y, &mut g, th, |d, y| d * (1.0 - y * y));
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::Sigmoid(a) => {
                if plan.needs(*a) {
                    let y = &values[i];
                    let th = elem_threads(ws, out_grad.len());
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.zip_into(y, &mut g, th, |d, y| d * y * (1.0 - y));
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::LeakyRelu(a, alpha) => {
                if plan.needs(*a) {
                    let x = &values[a.0];
                    let alpha = *alpha;
                    let th = elem_threads(ws, out_grad.len());
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.zip_into(x, &mut g, th, |d, x| if x > 0.0 { d } else { alpha * d });
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::Softmax(a) => {
                if plan.needs(*a) {
                    let y = &values[i];
                    let th = elem_threads(ws, out_grad.len());
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.zip_into(y, &mut g, th, |d, y| d * y);
                    let mut rowsum = ws.take_raw(g.rows(), 1);
                    g.sum_rows_into(&mut rowsum);
                    for r in 0..g.rows() {
                        let s = rowsum.get(r, 0);
                        for (gx, yx) in g.row_slice_mut(r).iter_mut().zip(y.row_slice(r)) {
                            *gx -= s * yx;
                        }
                    }
                    ws.reclaim(rowsum);
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::Sqrt(a) => {
                if plan.needs(*a) {
                    let y = &values[i];
                    let th = elem_threads(ws, out_grad.len());
                    let mut g = ws.take_raw(out_grad.rows(), out_grad.cols());
                    out_grad.zip_into(y, &mut g, th, |d, y| d * 0.5 / y.max(1e-12));
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::SumAll(a) => {
                if plan.needs(*a) {
                    let d = out_grad.get(0, 0);
                    let (r, c) = plan.shape(*a);
                    let mut g = ws.take_raw(r, c);
                    g.as_mut_slice().fill(d);
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::MeanAll(a) => {
                if plan.needs(*a) {
                    let (r, c) = plan.shape(*a);
                    let d = out_grad.get(0, 0) / (r * c).max(1) as f32;
                    let mut g = ws.take_raw(r, c);
                    g.as_mut_slice().fill(d);
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::SumRows(a) => {
                if plan.needs(*a) {
                    let (r, c) = plan.shape(*a);
                    let mut g = ws.take_raw(r, c);
                    for rr in 0..r {
                        let d = out_grad.get(rr, 0);
                        for x in g.row_slice_mut(rr) {
                            *x = d;
                        }
                    }
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::ConcatCols { start, len } => {
                let mut off = 0;
                for &p in &plan.parts[*start..*start + *len] {
                    let w = plan.nodes[p.0].cols;
                    if plan.needs(p) {
                        let mut g = ws.take_raw(out_grad.rows(), w);
                        out_grad.slice_cols_into(off, off + w, &mut g);
                        acc_owned(plan, grads, ws, p, g);
                    }
                    off += w;
                }
            }
            Op::ConcatMatMul { start, len, w } => {
                // c = [p0 | p1 | ...] W  =>  dp_i = dc * W_i^T (W_i = the
                // block of W's rows matching part i) and dW_i = p_i^T * dc.
                // Both are the same chains the unfused ConcatCols+MatMul
                // backward runs, so gradients stay bitwise identical.
                let ps = &plan.parts[*start..*start + *len];
                let wv = &values[w.0];
                let n = wv.cols();
                let ktot = wv.rows();
                let m = out_grad.rows();
                let kind = kernels::active();
                let mut off = 0;
                for &p in ps {
                    let kp = plan.nodes[p.0].cols;
                    if plan.needs(p) && kp > 0 {
                        // dp = dc * W_p^T over the row block, packed exactly
                        // like the dedicated MatMulBT forward (dot path for
                        // tiny m, bitwise identical either way).
                        let th = mac_threads(ws, m * n * kp);
                        let wblock = &wv.as_slice()[off * n..(off + kp) * n];
                        let mut g = ws.take_raw(m, kp);
                        if m >= kernels::PACK_MIN_ROWS && n * kp > 0 {
                            let mut panel = ws.take_raw(n, kp);
                            kernels::gemm_nt_packed(
                                kind,
                                out_grad.as_slice(),
                                wblock,
                                g.as_mut_slice(),
                                n,
                                kp,
                                th,
                                panel.as_mut_slice(),
                            );
                            ws.reclaim(panel);
                        } else {
                            kernels::gemm_nt_dot(out_grad.as_slice(), wblock, g.as_mut_slice(), n, kp, th);
                        }
                        acc_owned(plan, grads, ws, p, g);
                    }
                    off += kp;
                }
                if plan.needs(*w) {
                    let th = mac_threads(ws, m * ktot * n);
                    let mut gw = ws.take_raw(ktot, n);
                    let mut off = 0;
                    for &p in ps {
                        let vp = &values[p.0];
                        let kp = vp.cols();
                        if kp > 0 {
                            // dW block = p^T * dc into the matching row block
                            // of the full [ktot, n] gradient.
                            let sub = &mut gw.as_mut_slice()[off * n..(off + kp) * n];
                            kernels::gemm_tn(
                                kind,
                                vp.as_slice(),
                                out_grad.as_slice(),
                                sub,
                                kp,
                                m,
                                n,
                                th,
                                false,
                            );
                        }
                        off += kp;
                    }
                    acc_owned(plan, grads, ws, *w, gw);
                }
            }
            Op::SliceCols(a, start, end) => {
                if plan.needs(*a) {
                    let (r, c) = plan.shape(*a);
                    // Only columns [start, end) are written below — the rest
                    // of the gradient must be zero, so zeroed storage stays.
                    let mut g = ws.take_zeroed(r, c);
                    for rr in 0..r {
                        g.row_slice_mut(rr)[*start..*end].copy_from_slice(out_grad.row_slice(rr));
                    }
                    acc_owned(plan, grads, ws, *a, g);
                }
            }
            Op::SoftmaxCrossEntropy { logits, targets } => {
                if plan.needs(*logits) {
                    let vl = &values[logits.0];
                    let th = elem_threads(ws, vl.len());
                    let mut probs = ws.take_raw(vl.rows(), vl.cols());
                    softmax_rows_into(vl, &mut probs, th);
                    let scale = out_grad.get(0, 0) / probs.rows().max(1) as f32;
                    let mut g = ws.take_raw(probs.rows(), probs.cols());
                    probs.zip_into(targets, &mut g, th, |p, t| (p - t) * scale);
                    ws.reclaim(probs);
                    acc_owned(plan, grads, ws, *logits, g);
                }
            }
        }
        // Re-insert so callers can still read intermediate grads.
        grads[i] = Some(out_grad);
    }
}

/// Numerically-stable row-wise softmax on plain tensors.
///
/// Rows are normalized independently (split across threads for large
/// inputs), so the result is bitwise identical to a serial pass.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.rows(), x.cols());
    let threads = if x.len() >= PARALLEL_ELEMS { parallel::num_threads() } else { 1 };
    softmax_rows_into(x, &mut out, threads);
    out
}

/// [`softmax_rows`] into caller-provided storage with an explicit worker
/// count (every element is overwritten). Same kernel, hence bitwise
/// identical output.
pub fn softmax_rows_into(x: &Tensor, out: &mut Tensor, threads: usize) {
    assert_eq!(x.shape(), out.shape(), "softmax_rows_into output shape mismatch");
    out.copy_from(x);
    let cols = out.cols().max(1);
    parallel::run_row_chunks(out.as_mut_slice(), cols, threads, |_row0, chunk| {
        for row in chunk.chunks_mut(cols) {
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - mx).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `d loss / d x` for the `input` leaf.
    fn finite_diff_check(build: impl Fn(&mut Graph, Var) -> Var, x0: Tensor, tol: f32) {
        // Analytic gradient.
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).expect("input should receive a gradient").clone();

        // Numeric gradient (central differences, f64-friendly epsilon for f32).
        let eps = 1e-3_f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.as_mut_slice()[i] += eps;
            let mut gp = Graph::new();
            let v = gp.input(xp);
            let lp = build(&mut gp, v);
            let fp = gp.value(lp).get(0, 0);

            let mut xm = x0.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut gm = Graph::new();
            let v = gm.input(xm);
            let lm = build(&mut gm, v);
            let fm = gm.value(lm).get(0, 0);

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn sample_x() -> Tensor {
        Tensor::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.05, -1.4, 0.9])
    }

    #[test]
    fn grad_matmul() {
        let w = Tensor::from_vec(3, 2, vec![0.2, -0.4, 0.9, 0.1, -0.3, 0.8]);
        finite_diff_check(
            move |g, x| {
                let wv = g.constant(w.clone());
                let y = g.matmul(x, wv);
                g.sum_all(y)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_bt() {
        let w = Tensor::from_vec(2, 3, vec![0.2, -0.4, 0.9, 0.1, -0.3, 0.8]);
        finite_diff_check(
            move |g, x| {
                let wv = g.constant(w.clone());
                let y = g.matmul_bt(x, wv);
                let s = g.square(y);
                g.mean_all(s)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_right_factor() {
        // Check gradient wrt the *right* matmul factor too.
        let a = Tensor::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.25]);
        finite_diff_check(
            move |g, x| {
                let av = g.constant(a.clone());
                let y = g.matmul(av, x);
                let s = g.square(y);
                g.sum_all(s)
            },
            Tensor::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.05, -1.4, 0.9]),
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for act in ["tanh", "sigmoid", "leaky", "softmax", "sqrt"] {
            let a = act.to_string();
            finite_diff_check(
                move |g, x| {
                    let y = match a.as_str() {
                        "tanh" => g.tanh(x),
                        "sigmoid" => g.sigmoid(x),
                        "leaky" => g.leaky_relu(x, 0.2),
                        "softmax" => g.softmax(x),
                        "sqrt" => {
                            let p = g.square(x);
                            let p = g.add_scalar(p, 0.5);
                            g.sqrt(p)
                        }
                        _ => unreachable!(),
                    };
                    let s = g.square(y);
                    g.mean_all(s)
                },
                sample_x(),
                2e-2,
            );
        }
    }

    #[test]
    fn grad_arithmetic_chain() {
        let b = Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.1, -0.2, -0.3]);
        finite_diff_check(
            move |g, x| {
                let bv = g.constant(b.clone());
                let y = g.add(x, bv);
                let y = g.scale(y, 1.7);
                let y = g.add_scalar(y, -0.3);
                let z = g.mul(y, x);
                let z = g.sub(z, x);
                g.mean_all(z)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_mul_col_and_sum_rows() {
        finite_diff_check(
            |g, x| {
                let s = g.sum_rows(x); // B x 1
                let y = g.mul_col(x, s);
                g.sum_all(y)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_slice() {
        finite_diff_check(
            |g, x| {
                let a = g.slice_cols(x, 0, 2);
                let b = g.slice_cols(x, 1, 3);
                let c = g.concat_cols(&[a, b]);
                let s = g.square(c);
                g.sum_all(s)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_add_row_bias() {
        finite_diff_check(
            |g, x| {
                // Use x's first row as a bias onto a constant.
                let base = g.constant(Tensor::ones(4, 3));
                let bias = g.slice_cols(x, 0, 3); // still 2x3; take row via matmul trick
                let pick = g.constant(Tensor::from_vec(1, 2, vec![1.0, 0.0]));
                let row = g.matmul(pick, bias); // 1 x 3
                let y = g.add_row(base, row);
                let s = g.square(y);
                g.sum_all(s)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_cross_entropy() {
        let targets = Tensor::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        finite_diff_check(move |g, x| g.softmax_cross_entropy(x, targets.clone()), sample_x(), 1e-2);
    }

    #[test]
    fn param_grads_collect_by_id() {
        let mut store = ParamStore::new();
        let wid = store.add("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new();
        let w = g.param(&store, wid);
        let x = g.constant(Tensor::from_vec(1, 2, vec![1.0, 1.0]));
        let y = g.matmul(x, w);
        let loss = g.sum_all(y);
        g.backward(loss);
        let grads = g.param_grads();
        // d/dw of sum(x*w) with x = [1,1] is all-ones.
        assert_eq!(grads.get(wid).unwrap().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn constants_do_not_allocate_grads() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones(2, 2));
        let b = g.constant(Tensor::ones(2, 2));
        let c = g.add(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        assert!(g.grad(a).is_none());
        assert!(g.grad(c).is_none());
    }

    #[test]
    fn softmax_rows_is_simplex() {
        let x = Tensor::from_vec(2, 3, vec![1000.0, 1001.0, 999.0, -5.0, 0.0, 5.0]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row_slice(r).iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn grad_shared_subexpression_accumulates() {
        // loss = sum(x) + mean(x); both paths hit x.
        finite_diff_check(
            |g, x| {
                let s = g.sum_all(x);
                let m = g.mean_all(x);
                g.add(s, m)
            },
            sample_x(),
            1e-2,
        );
    }

    // ---- workspace / executor tests --------------------------------------

    /// One representative computation exercising most ops.
    fn demo_program(g: &mut Graph, x0: &Tensor, w0: &Tensor) -> (Var, Var) {
        let x = g.input(x0.clone());
        let w = g.constant(w0.clone());
        let h = g.matmul(x, w);
        let h = g.tanh(h);
        let s = g.sum_rows(h);
        let m = g.mul_col(h, s);
        let c = g.concat_cols(&[h, m]);
        let sq = g.square(c);
        let loss = g.mean_all(sq);
        (x, loss)
    }

    #[test]
    fn pooled_reuse_is_bitwise_identical_to_fresh() {
        let x0 = sample_x();
        let w0 = Tensor::from_vec(3, 3, vec![0.2, -0.4, 0.9, 0.1, -0.3, 0.8, 0.5, 0.0, -0.6]);

        // Fresh-allocation reference.
        let mut fresh = Graph::with_workspace(Workspace::unpooled());
        let (fx, floss) = demo_program(&mut fresh, &x0, &w0);
        fresh.backward(floss);
        let ref_loss = fresh.value(floss).clone();
        let ref_grad = fresh.grad(fx).unwrap().clone();

        // Three consecutive pooled cycles through one workspace.
        let mut ws = Workspace::new();
        for cycle in 0..3 {
            let mut g = Graph::with_workspace(ws);
            let (x, loss) = demo_program(&mut g, &x0, &w0);
            g.backward(loss);
            assert_eq!(g.value(loss), &ref_loss, "loss diverged in cycle {cycle}");
            assert_eq!(g.grad(x).unwrap(), &ref_grad, "grad diverged in cycle {cycle}");
            ws = g.finish();
        }
        assert!(ws.stats().hits > 0, "pool was never hit across reuse cycles");
    }

    #[test]
    fn finish_records_node_count_as_capacity_hint() {
        let mut g = Graph::with_workspace(Workspace::new());
        let a = g.constant(Tensor::ones(2, 2));
        let b = g.tanh(a);
        let _ = g.sum_all(b);
        let n = g.len();
        let ws = g.finish();
        assert_eq!(ws.node_hint(), n);
    }

    #[test]
    fn take_value_moves_the_tensor_out() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::full(2, 2, 3.0));
        let b = g.scale(a, 2.0);
        let t = g.take_value(b);
        assert_eq!(t.as_slice(), &[6.0; 4]);
        // Other nodes stay readable.
        assert_eq!(g.value(a).as_slice(), &[3.0; 4]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "after its value was taken")]
    fn reading_a_consumed_node_panics_in_debug() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones(1, 1));
        let _ = g.take_value(a);
        let _ = g.value(a);
    }

    #[test]
    fn executor_replays_bitwise_identically() {
        let x0 = sample_x();
        let w0 = Tensor::from_vec(3, 3, vec![0.2, -0.4, 0.9, 0.1, -0.3, 0.8, 0.5, 0.0, -0.6]);
        let x1 = Tensor::from_vec(2, 3, vec![-0.9, 0.4, 0.0, 1.3, 0.2, -0.5]);

        let mut g = Graph::new();
        let (x, loss) = demo_program(&mut g, &x0, &w0);
        let mut exec = g.into_executor();

        // Replaying with new inputs matches a fresh recording bitwise.
        exec.set_input(x, &x1);
        exec.run();
        exec.backward(loss);
        let mut g2 = Graph::new();
        let (x2, loss2) = demo_program(&mut g2, &x1, &w0);
        g2.backward(loss2);
        assert_eq!(exec.value(loss), g2.value(loss2));
        assert_eq!(exec.grad(x).unwrap(), g2.grad(x2).unwrap());

        // And replaying the original inputs again reproduces the original.
        exec.set_input(x, &x0);
        exec.run();
        let mut g3 = Graph::new();
        let (_, loss3) = demo_program(&mut g3, &x0, &w0);
        assert_eq!(exec.value(loss), g3.value(loss3));
    }

    #[test]
    fn executor_refresh_params_reloads_from_store() {
        let mut store = ParamStore::new();
        let wid = store.add("w", Tensor::full(1, 2, 2.0));
        let mut g = Graph::new();
        let w = g.param(&store, wid);
        let s = g.sum_all(w);
        let mut exec = g.into_executor();
        assert_eq!(exec.value(s).get(0, 0), 4.0);
        store.get_mut(wid).as_mut_slice().fill(5.0);
        exec.refresh_params(&store);
        exec.run();
        assert_eq!(exec.value(s).get(0, 0), 10.0);
    }

    #[test]
    fn concat_matmul_matches_unfused_bitwise() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes chosen to exercise ragged kernel tails: parts of width
        // 5 + 3 + 9 against a 17 x 7 weight.
        let x = Tensor::randn(6, 5, 1.0, &mut rng);
        let h = Tensor::randn(6, 3, 1.0, &mut rng);
        let z = Tensor::randn(6, 9, 1.0, &mut rng);
        let w = Tensor::randn(17, 7, 1.0, &mut rng);

        let run = |fused: bool| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let hv = g.input(h.clone());
            let zv = g.input(z.clone());
            let wv = g.input(w.clone());
            let y = if fused {
                g.concat_matmul(&[xv, hv, zv], wv)
            } else {
                let cat = g.concat_cols(&[xv, hv, zv]);
                g.matmul(cat, wv)
            };
            let s = g.square(y);
            let loss = g.sum_all(s);
            g.backward(loss);
            (
                g.value(y).clone(),
                g.grad(xv).unwrap().clone(),
                g.grad(hv).unwrap().clone(),
                g.grad(zv).unwrap().clone(),
                g.grad(wv).unwrap().clone(),
            )
        };
        let fused = run(true);
        let unfused = run(false);
        assert_eq!(fused.0, unfused.0, "fused forward must be bitwise identical");
        assert_eq!(fused.1, unfused.1, "d/dx must be bitwise identical");
        assert_eq!(fused.2, unfused.2, "d/dh must be bitwise identical");
        assert_eq!(fused.3, unfused.3, "d/dz must be bitwise identical");
        assert_eq!(fused.4, unfused.4, "d/dW must be bitwise identical");
    }

    #[test]
    fn concat_matmul_fused_replay_and_threading_are_bitwise_stable() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::randn(4, 5, 1.0, &mut rng);
        let h = Tensor::randn(4, 6, 1.0, &mut rng);
        let w = Tensor::randn(11, 8, 1.0, &mut rng);

        let run = |threads: usize| {
            let mut g = Graph::with_workspace(Workspace::new().with_thread_override(threads));
            let xv = g.input(x.clone());
            let hv = g.input(h.clone());
            let wv = g.input(w.clone());
            let y = g.concat_matmul(&[xv, hv], wv);
            let loss = g.sum_all(y);
            g.backward(loss);
            (g.value(y).clone(), g.grad(wv).unwrap().clone())
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "threads={threads} must match serial bitwise");
        }
    }

    #[test]
    fn grad_concat_matmul_finite_diff() {
        let h = Tensor::from_vec(2, 2, vec![0.4, -0.2, 0.7, 1.1]);
        let w = Tensor::from_vec(5, 2, vec![0.2, -0.4, 0.9, 0.1, -0.3, 0.8, 0.5, 0.0, -0.6, 0.3]);
        finite_diff_check(
            move |g, x| {
                let hv = g.constant(h.clone());
                let wv = g.constant(w.clone());
                let y = g.concat_matmul(&[x, hv], wv);
                let s = g.square(y);
                g.mean_all(s)
            },
            sample_x(),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_matmul_weight_finite_diff() {
        let x = Tensor::from_vec(2, 2, vec![0.3, -0.7, 1.2, 0.05]);
        let h = Tensor::from_vec(2, 1, vec![0.6, -0.9]);
        finite_diff_check(
            move |g, wx| {
                let xv = g.constant(x.clone());
                let hv = g.constant(h.clone());
                let y = g.concat_matmul(&[xv, hv], wx);
                let s = g.square(y);
                g.sum_all(s)
            },
            Tensor::from_vec(3, 2, vec![0.2, -0.4, 0.9, 0.1, -0.3, 0.8]),
            1e-2,
        );
    }

    /// Deterministic pseudo-random fill (no RNG dep in unit tests).
    fn wavy(rows: usize, cols: usize, phase: f32) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| ((i as f32 * 0.7129 + phase).sin()) * 1.3).collect(),
        )
    }

    #[test]
    fn bf16_weight_packing_cache_is_bitwise_invisible_and_engages_for_frozen_params() {
        use crate::kernels::Precision;
        let mut store = ParamStore::new();
        // x[3,5] * w_nn[5,7] -> a[3,7]; a * w_bt[4,7]^T -> b[3,4];
        // concat([b, h[3,3]])[3,7] * w_cm[7,6] -> c[3,6].
        let w_nn = store.add("w_nn", wavy(5, 7, 0.1));
        let w_bt = store.add("w_bt", wavy(4, 7, 0.2));
        let w_cm = store.add("w_cm", wavy(7, 6, 0.3));
        let x = wavy(3, 5, 0.4);
        let h = wavy(3, 3, 0.5);

        // `frozen` toggles between param-bound leaves (cache engages) and
        // anonymous constants (per-op pack) — both must agree bitwise.
        let run = |frozen: bool, timesteps: usize| -> (Vec<f32>, usize) {
            let mut ws = Workspace::new().with_precision(Precision::Bf16);
            let mut last = Vec::new();
            let mut entries = 0;
            for _ in 0..2 {
                // two pooled cycles: cache must survive graph reuse
                let mut g = Graph::with_workspace(std::mem::take(&mut ws));
                let xv = g.constant(x.clone());
                let hv = g.constant(h.clone());
                let mut acc = None;
                for _ in 0..timesteps {
                    let (wn, wb, wc) = if frozen {
                        (
                            g.frozen_param(&store, w_nn),
                            g.frozen_param(&store, w_bt),
                            g.frozen_param(&store, w_cm),
                        )
                    } else {
                        (
                            g.constant_copied(store.get(w_nn)),
                            g.constant_copied(store.get(w_bt)),
                            g.constant_copied(store.get(w_cm)),
                        )
                    };
                    let a = g.matmul(xv, wn);
                    let b = g.matmul_bt(a, wb);
                    let c = g.concat_matmul(&[b, hv], wc);
                    acc = Some(match acc {
                        None => c,
                        Some(prev) => g.add(prev, c),
                    });
                }
                last = g.value(acc.expect("at least one timestep")).as_slice().to_vec();
                entries = g.workspace().packed_bf16_entries();
                ws = g.finish();
            }
            (last, entries)
        };

        let (cached, entries) = run(true, 4);
        let (uncached, no_entries) = run(false, 4);
        assert_eq!(entries, 3, "each frozen weight should be packed exactly once (RowMajor x2 + Transposed)");
        assert_eq!(no_entries, 0, "anonymous constants must not populate the cache");
        assert!(
            cached.iter().zip(&uncached).all(|(a, b)| a.to_bits() == b.to_bits()),
            "cached weight packing must be bitwise invisible"
        );
    }

    /// Records `x @ w1 @ w2^T + b` with `x` in a rebindable slot and returns
    /// `(executor, out_var)`.
    fn slot_net(store: &ParamStore, ids: (ParamId, ParamId, ParamId), x0: &Tensor) -> (PlanExecutor, Var) {
        let mut g = Graph::with_workspace(Workspace::new());
        let x = g.input_slot(x0.clone());
        let w1 = g.frozen_param(store, ids.0);
        let w2 = g.frozen_param(store, ids.1);
        let b = g.frozen_param(store, ids.2);
        let h = g.matmul(x, w1);
        let y = g.matmul_bt(h, w2);
        let out = g.add_row(y, b);
        (g.into_executor(), out)
    }

    /// The same net recorded eagerly from scratch (the reference bytes).
    fn slot_net_fresh(store: &ParamStore, ids: (ParamId, ParamId, ParamId), x0: &Tensor) -> Vec<f32> {
        let mut g = Graph::new();
        let x = g.constant(x0.clone());
        let w1 = g.frozen_param(store, ids.0);
        let w2 = g.frozen_param(store, ids.1);
        let b = g.frozen_param(store, ids.2);
        let h = g.matmul(x, w1);
        let y = g.matmul_bt(h, w2);
        let out = g.add_row(y, b);
        g.value(out).as_slice().to_vec()
    }

    #[test]
    fn input_slots_replay_bitwise_matches_rerecording_and_pack_panels_once() {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", wavy(5, 7, 0.1));
        let w2 = store.add("w2", wavy(4, 7, 0.2));
        let b = store.add("b", wavy(1, 4, 0.3));
        let ids = (w1, w2, b);

        let x0 = wavy(3, 5, 0.4);
        let (mut exec, out) = slot_net(&store, ids, &x0);
        assert_eq!(exec.input_slots(), 1);
        assert_eq!(exec.input_slot_shape(0), (3, 5));
        // The recording itself already holds the right bytes for x0.
        assert_eq!(exec.value(out).as_slice(), slot_net_fresh(&store, ids, &x0).as_slice());

        for round in 0..4 {
            let x = wavy(3, 5, 1.0 + round as f32);
            exec.set_input_slot(0, &x);
            exec.run();
            let fresh = slot_net_fresh(&store, ids, &x);
            assert!(
                exec.value(out).as_slice().iter().zip(&fresh).all(|(a, b)| a.to_bits() == b.to_bits()),
                "replayed bytes must be bitwise identical to re-recording (round {round})"
            );
        }
        // One MatMulBT against one frozen param: exactly one cached panel,
        // packed on the first replay and reused thereafter.
        assert_eq!(exec.ws.packed_f32_entries(), 1, "frozen A*B^T panel should be packed exactly once");
    }

    #[test]
    fn f32_panel_cache_stays_off_in_eager_graphs() {
        let mut store = ParamStore::new();
        let w = store.add("w", wavy(4, 7, 0.2));
        let mut g = Graph::new();
        let x = g.constant(wavy(3, 7, 0.4));
        let wv = g.frozen_param(&store, w);
        let _ = g.matmul_bt(x, wv);
        assert_eq!(
            g.workspace().packed_f32_entries(),
            0,
            "eager recording must not populate the frozen panel cache"
        );
    }

    #[test]
    fn refresh_params_drops_cached_panels_and_replays_new_weights() {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", wavy(5, 7, 0.1));
        let w2 = store.add("w2", wavy(4, 7, 0.2));
        let b = store.add("b", wavy(1, 4, 0.3));
        let ids = (w1, w2, b);
        let x = wavy(3, 5, 0.4);

        let (mut exec, out) = slot_net(&store, ids, &x);
        exec.run();
        assert_eq!(exec.ws.packed_f32_entries(), 1);

        // Mutate the frozen weights (a hot-reload) and refresh: the stale
        // panel must be dropped and the replay must match a fresh recording
        // against the new store.
        *store.get_mut(w2) = wavy(4, 7, 9.9);
        exec.refresh_params(&store);
        assert_eq!(exec.ws.packed_f32_entries(), 0, "refresh_params must drop stale panels");
        exec.set_input_slot(0, &x);
        exec.run();
        let fresh = slot_net_fresh(&store, ids, &x);
        assert!(
            exec.value(out).as_slice().iter().zip(&fresh).all(|(a, b)| a.to_bits() == b.to_bits()),
            "post-refresh replay must match re-recording against the new weights"
        );
    }

    #[test]
    fn try_refresh_params_rejects_shape_and_id_mismatches() {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", wavy(5, 7, 0.1));
        let w2 = store.add("w2", wavy(4, 7, 0.2));
        let b = store.add("b", wavy(1, 4, 0.3));
        let x = wavy(3, 5, 0.4);
        let (mut exec, out) = slot_net(&store, (w1, w2, b), &x);
        let before = exec.value(out).as_slice().to_vec();

        // Same ids, different shape: must refuse and leave values untouched.
        let mut reshaped = ParamStore::new();
        reshaped.add("w1", wavy(5, 7, 0.1));
        reshaped.add("w2", wavy(4, 8, 0.2));
        reshaped.add("b", wavy(1, 4, 0.3));
        assert!(!exec.try_refresh_params(&reshaped));
        assert_eq!(exec.value(out).as_slice(), before.as_slice());

        // Fewer params than the recorded ids: must refuse, not panic.
        let mut short = ParamStore::new();
        short.add("w1", wavy(5, 7, 0.1));
        assert!(!exec.try_refresh_params(&short));

        // Compatible store: accepted.
        assert!(exec.try_refresh_params(&store));
    }
}
