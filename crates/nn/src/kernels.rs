//! Register-tiled, cache-blocked f32 GEMM microkernels with runtime dispatch.
//!
//! This module is the single home of every matmul inner loop in the
//! workspace (and, by CI decree, the only module allowed to touch
//! `std::arch`). Three dispatch tiers share one bitwise contract:
//!
//! * **Scalar** — the untiled `i-k-j` reference kernel. One output row at a
//!   time, streaming rows of `B`; branch-free (no zero-skip: dense data
//!   mispredicts, and skipping changes FLOP counts under benchmarking).
//! * **Portable** — the register-tiled kernel: `MR = 4` output rows x
//!   `NR = 8` columns held in a `[[f32; NR]; MR]` accumulator block that the
//!   autovectorizer keeps in SIMD registers. Works on every target.
//! * **Native** — the same tiling written with explicit AVX2 intrinsics
//!   (`_mm256_mul_ps` + `_mm256_add_ps`), selected at runtime via
//!   `is_x86_feature_detected!`. Falls back to Portable when AVX2 is absent
//!   or the target is not x86.
//!
//! # The bitwise contract
//!
//! Every output element `(i, j)` is computed as a single accumulation chain
//!
//! ```text
//! acc = init;  for kk in 0..k { acc += a(i, kk) * b(kk, j) }   // ascending kk
//! ```
//!
//! with a **separate rounding for the multiply and the add** (no FMA — a
//! fused multiply-add rounds once and cannot be matched bitwise by non-FMA
//! hardware, and `f32::mul_add` falls back to a slow libm call there; Rust
//! never auto-contracts floating point, so the portable tier is safe). Tiling
//! only changes *which elements are resident in registers together*, never
//! the per-element chain, and the row-chunk fan-out in [`crate::parallel`]
//! only changes which thread owns a row. Hence: every tier, every `MR`/`NR`
//! blocking, every thread count, and the ragged scalar tails all produce
//! bitwise-identical results. The tiled serial kernel is the reference by
//! *definition*; [`crate::gradcheck::check_kernel_equivalence`] enforces the
//! contract empirically.
//!
//! # One strided microkernel, three transpose variants
//!
//! The A operand is read through a `(rstride, kstride)` view — the
//! coefficient for output row `r` at step `kk` lives at
//! `a[r * rstride + kk * kstride]` — so one kernel serves all three variants:
//!
//! | variant          | A view                  | B operand                  |
//! |------------------|-------------------------|----------------------------|
//! | `A·B`            | `rstride = k, kstride=1`| `B` row-major `[k, n]` as-is (identity packing — already contiguous in `kk`) |
//! | `Aᵀ·B`           | `rstride = 1, kstride=m`| `B` row-major `[k, n]` as-is |
//! | `A·Bᵀ`           | `rstride = k, kstride=1`| packed panel `Bᵀ` `[k, n]` built by [`pack_bt`] |
//!
//! Only `A·Bᵀ` needs a physical pack (its natural B walk is column-strided);
//! the panel is `O(k·n)` work amortized over `O(m·k·n)` kernel work, so it
//! pays for itself whenever `m >= 2` ([`PACK_MIN_ROWS`]). Below that, a
//! per-element dot kernel ([`gemm_nt_dot`]) computes the identical ascending-k
//! chain without the pack.
//!
//! # Dispatch
//!
//! The process-wide tier is chosen once from the `DG_KERNEL` environment
//! variable (`scalar` | `portable` | `native`), defaulting to Native when
//! AVX2 is detected and Portable otherwise. `native` on a non-AVX2 host
//! resolves to Portable. Because all tiers are bitwise identical, `DG_KERNEL`
//! is a debugging/benchmarking knob, not a reproducibility hazard.
//!
//! # The bf16 inference tier
//!
//! [`Precision::Bf16`] selects a second kernel family (`gemm_*_bf16`):
//! bf16-*stored*, f32-*accumulated* GEMM. Both operands are rounded to
//! bfloat16 (round-to-nearest-even, [`bf16_round`]) — `B` is physically
//! packed to `u16` once per matrix and widened in-kernel, `A` is rounded
//! into a per-`KC`-panel f32 staging buffer — and every accumulation chain
//! runs in f32. The contract is deliberately weaker than the f32 family's:
//!
//! * Within one resolved tier, results are still deterministic across thread
//!   counts and `KC`/`NC` panel blocking (seams remain exact f32
//!   store/reloads), and the Scalar and Portable bf16 tiers are bitwise
//!   identical to each other (same separate-mul-then-add chain).
//! * The Native bf16 tier requires AVX2 **and FMA**
//!   ([`native_bf16_available`]) and uses `_mm256_fmadd_ps` — one rounding
//!   per MAC. Freed from the cross-tier bitwise contract, it reclaims the 2x
//!   FLOP peak that the f32 family forgoes, and the `u16` B operand halves
//!   B-side memory traffic; that combination is the speedup. It matches the
//!   other bf16 tiers (and the f32 family) in *distribution*, not bits.
//!
//! No training path ever dispatches bf16: the mode rides on the inference
//! workspace (`dg-core`'s `Sampler` sets it for generation only), and the
//! acceptance bar is fidelity-level validation — autocorrelation /
//! Wasserstein / correlation deltas on same-seed output — mirroring the
//! paper's own distribution-level evaluation of generated data.

// GEMM entry points genuinely need (kind, operands, dims, threads,
// accumulate): bundling them into structs would obscure the BLAS-style
// call shape without removing any parameter.
#![allow(clippy::too_many_arguments)]

use crate::parallel;
use std::sync::OnceLock;

/// Register-tile height: output rows accumulated concurrently per block.
pub const MR: usize = 4;
/// Register-tile width: accumulator lane count (one 8-wide f32 SIMD vector).
pub const NR: usize = 8;

/// Minimum `m` (output rows) for which `A·Bᵀ` packs a Bᵀ panel; below this
/// the dot kernel is cheaper (pack cost `k·n` vs kernel work `m·k·n`).
pub const PACK_MIN_ROWS: usize = 2;

/// L2 panel depth: the `k` dimension is processed [`KC`] steps at a time so
/// the live `KC x NC` window of `B` stays cache-resident while a row chunk
/// streams over it. `256 x 256 x 4 B = 256 KiB` — sized for the smallest
/// common L2 (see DESIGN.md §13). Blocking is bitwise-free: each output
/// element is still one ascending-`k` chain, merely checkpointed through an
/// exact f32 store/reload at panel seams (`accumulate = true` for every
/// panel after the first).
pub const KC: usize = 256;

/// L2 panel width: columns are processed [`NC`] at a time (same sizing
/// argument as [`KC`]). Shapes with `k <= KC && n <= NC` — including the
/// bench's 256³ probe and every current model GEMM — take a single panel
/// and pay zero blocking overhead.
pub const NC: usize = 256;

/// The kernel dispatch tiers. All tiers are bitwise identical (module docs);
/// they differ only in throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Untiled `i-k-j` reference kernel (what the autovectorizer makes of it).
    Scalar,
    /// Register-tiled `MR x NR` kernel, portable Rust.
    Portable,
    /// Register-tiled AVX2 intrinsics kernel (x86/x86_64 with AVX2 only).
    Native,
}

impl KernelKind {
    /// Parses a `DG_KERNEL` value (case-insensitive).
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "portable" => Some(KernelKind::Portable),
            "native" => Some(KernelKind::Native),
            _ => None,
        }
    }

    /// Stable lowercase name (round-trips through [`KernelKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Portable => "portable",
            KernelKind::Native => "native",
        }
    }
}

/// The numeric-format axis, orthogonal to [`KernelKind`]: which GEMM family
/// a consumer dispatches. [`Precision::F32`] is the bitwise-deterministic
/// family every training/eval/checkpoint path uses; [`Precision::Bf16`] is
/// the inference-only reduced-precision family (module docs, "The bf16
/// inference tier"). Only generation paths may select `Bf16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full-precision f32 storage and accumulation (the bitwise contract).
    #[default]
    F32,
    /// bf16-stored / f32-accumulated inference tier, validated by
    /// distribution rather than bits.
    Bf16,
}

impl Precision {
    /// Parses a `--precision` / `DG_PRECISION` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Precision> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "bf16" => Some(Precision::Bf16),
            _ => None,
        }
    }

    /// Stable lowercase name (round-trips through [`Precision::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
        }
    }
}

/// True when the Native (AVX2) tier can run on this host.
pub fn native_available() -> bool {
    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
    {
        false
    }
}

/// Maps a requested tier to the tier that will actually run:
/// `Native` resolves to `Portable` when AVX2 is unavailable.
pub fn resolve(kind: KernelKind) -> KernelKind {
    match kind {
        KernelKind::Native if !native_available() => KernelKind::Portable,
        k => k,
    }
}

/// The process-wide dispatch tier: `DG_KERNEL` when set (panics on an
/// unrecognized value — it is a debugging knob and a typo should be loud),
/// otherwise Native when AVX2 is detected, else Portable. Cached for the
/// lifetime of the process.
pub fn active() -> KernelKind {
    static K: OnceLock<KernelKind> = OnceLock::new();
    *K.get_or_init(|| {
        if let Ok(v) = std::env::var("DG_KERNEL") {
            let kind = KernelKind::parse(&v)
                .unwrap_or_else(|| panic!("DG_KERNEL={v:?} is not one of scalar|portable|native"));
            return resolve(kind);
        }
        if native_available() {
            KernelKind::Native
        } else {
            KernelKind::Portable
        }
    })
}

/// Computes a contiguous chunk of output rows of a strided-A GEMM.
///
/// `out` backs rows `[row0, row0 + out.len()/n)` of the logical `m x n`
/// output; the A coefficient for logical row `r` at step `kk` is
/// `a[r * rstride + kk * kstride]`; `b` is row-major `[k, n]`. When
/// `accumulate` is false every output element is **overwritten** (no
/// zero-filled precondition); when true the chain starts from the existing
/// value. Either way each element accumulates in ascending-`kk` order — the
/// bitwise contract of the module docs — for every dispatch tier.
///
/// Work is blocked into `KC x NC` panels of `B` (columns outer, `k` inner
/// and ascending) so large operands stay L2-resident; panels after the
/// first continue the chain via `accumulate = true`, which is an exact f32
/// store/reload and therefore invisible to the bitwise contract.
///
/// # Panics
/// Panics when the A view or B would be read out of bounds.
pub fn gemm_chunk(
    kind: KernelKind,
    a: &[f32],
    rstride: usize,
    kstride: usize,
    b: &[f32],
    out: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    if n == 0 || out.is_empty() {
        return;
    }
    debug_assert_eq!(out.len() % n, 0, "gemm_chunk requires whole output rows");
    let rows = out.len() / n;
    if k == 0 {
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    assert!(
        (row0 + rows - 1) * rstride + (k - 1) * kstride < a.len(),
        "gemm_chunk: A view out of bounds (rows {row0}..{} rstride {rstride} kstride {kstride} k {k} len {})",
        row0 + rows,
        a.len()
    );
    assert!(b.len() >= k * n, "gemm_chunk: B has {} elements, needs {}", b.len(), k * n);
    let kind = resolve(kind);
    for j0 in (0..n).step_by(NC) {
        let nc = NC.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            let acc = accumulate || k0 > 0;
            let koff = k0 * kstride;
            let bsub = &b[k0 * n + j0..];
            let osub = &mut out[j0..];
            match kind {
                KernelKind::Scalar => {
                    gemm_chunk_scalar(a, rstride, kstride, koff, bsub, n, osub, n, row0, rows, kc, nc, acc)
                }
                KernelKind::Portable => {
                    gemm_chunk_portable(a, rstride, kstride, koff, bsub, n, osub, n, row0, rows, kc, nc, acc)
                }
                KernelKind::Native => {
                    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
                    // SAFETY: `resolve` returns Native only when AVX2 was
                    // detected at runtime; slice bounds were asserted above
                    // and the panel offsets stay inside them.
                    unsafe {
                        avx2::gemm_chunk_avx2(
                            a, rstride, kstride, koff, bsub, n, osub, n, row0, rows, kc, nc, acc,
                        )
                    }
                    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
                    unreachable!("Native resolves to Portable off x86")
                }
            }
        }
    }
}

/// The Scalar tier: one row at a time, `kk` middle loop streaming rows of
/// `b`, branch-free inner loop. Operates on one `kc x nc` panel: `b` and
/// `out` are pre-offset to the panel origin and walked with `bstride` /
/// `ostride` row pitches; `koff` shifts the A view to the panel's first
/// `k` step.
fn gemm_chunk_scalar(
    a: &[f32],
    rstride: usize,
    kstride: usize,
    koff: usize,
    b: &[f32],
    bstride: usize,
    out: &mut [f32],
    ostride: usize,
    row0: usize,
    rows: usize,
    kc: usize,
    nc: usize,
    accumulate: bool,
) {
    for i in 0..rows {
        let roff = (row0 + i) * rstride + koff;
        let orow = &mut out[i * ostride..i * ostride + nc];
        if !accumulate {
            orow.fill(0.0);
        }
        for kk in 0..kc {
            let av = a[roff + kk * kstride];
            let brow = &b[kk * bstride..kk * bstride + nc];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// The Portable tier: blocks of up to `MR` rows through the register-tiled
/// strip kernel. Same panel-view parameters as [`gemm_chunk_scalar`].
fn gemm_chunk_portable(
    a: &[f32],
    rstride: usize,
    kstride: usize,
    koff: usize,
    b: &[f32],
    bstride: usize,
    out: &mut [f32],
    ostride: usize,
    row0: usize,
    rows: usize,
    kc: usize,
    nc: usize,
    accumulate: bool,
) {
    let mut i = 0;
    while i < rows {
        let take = (rows - i).min(MR);
        let block = &mut out[i * ostride..];
        let roff = (row0 + i) * rstride + koff;
        match take {
            4 => tile_rows::<4>(a, roff, rstride, kstride, b, bstride, block, ostride, kc, nc, accumulate),
            3 => tile_rows::<3>(a, roff, rstride, kstride, b, bstride, block, ostride, kc, nc, accumulate),
            2 => tile_rows::<2>(a, roff, rstride, kstride, b, bstride, block, ostride, kc, nc, accumulate),
            _ => tile_rows::<1>(a, roff, rstride, kstride, b, bstride, block, ostride, kc, nc, accumulate),
        }
        i += take;
    }
}

/// Portable register-tiled strip kernel: `R` output rows x `NR`-wide strips.
/// The `[[f32; NR]; R]` accumulator block lives in SIMD registers after
/// autovectorization; the mul and add stay separate ops (no contraction), so
/// each lane runs the exact scalar-tier chain. Ragged column tails fall back
/// to the per-element scalar chain — same order, same bits.
#[inline(always)]
fn tile_rows<const R: usize>(
    a: &[f32],
    roff: usize,
    rstride: usize,
    kstride: usize,
    b: &[f32],
    bstride: usize,
    out: &mut [f32],
    ostride: usize,
    kc: usize,
    nc: usize,
    accumulate: bool,
) {
    let mut j = 0;
    while j + NR <= nc {
        let mut acc = [[0.0_f32; NR]; R];
        if accumulate {
            for (r, accr) in acc.iter_mut().enumerate() {
                accr.copy_from_slice(&out[r * ostride + j..r * ostride + j + NR]);
            }
        }
        for kk in 0..kc {
            let bv: &[f32; NR] = b[kk * bstride + j..kk * bstride + j + NR].try_into().unwrap();
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = a[roff + r * rstride + kk * kstride];
                for (l, lane) in accr.iter_mut().enumerate() {
                    *lane += av * bv[l];
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out[r * ostride + j..r * ostride + j + NR].copy_from_slice(accr);
        }
        j += NR;
    }
    while j < nc {
        for r in 0..R {
            let mut s = if accumulate { out[r * ostride + j] } else { 0.0 };
            for kk in 0..kc {
                s += a[roff + r * rstride + kk * kstride] * b[kk * bstride + j];
            }
            out[r * ostride + j] = s;
        }
        j += 1;
    }
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
mod avx2 {
    //! The Native tier: the portable tiling rewritten with AVX2 intrinsics.
    //! Deliberately `_mm256_mul_ps` + `_mm256_add_ps`, **not**
    //! `_mm256_fmadd_ps` — FMA rounds once and would break bitwise equality
    //! with the scalar and portable tiers.

    use super::{MR, NR};
    #[cfg(target_arch = "x86")]
    use std::arch::x86::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };

    /// # Safety
    /// AVX2 must be available, and the caller must have validated (as
    /// [`super::gemm_chunk`] does) that the A view covers every
    /// `(row0 + i) * rstride + koff + kk * kstride` it will read, and that
    /// the pre-offset `b` / `out` panels cover `kc` / `rows` rows of
    /// `bstride` / `ostride` pitch with `nc` live columns.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_chunk_avx2(
        a: &[f32],
        rstride: usize,
        kstride: usize,
        koff: usize,
        b: &[f32],
        bstride: usize,
        out: &mut [f32],
        ostride: usize,
        row0: usize,
        rows: usize,
        kc: usize,
        nc: usize,
        accumulate: bool,
    ) {
        let mut i = 0;
        while i < rows {
            let take = (rows - i).min(MR);
            let block = &mut out[i * ostride..];
            let roff = (row0 + i) * rstride + koff;
            match take {
                4 => tile_rows_avx2::<4>(
                    a, roff, rstride, kstride, b, bstride, block, ostride, kc, nc, accumulate,
                ),
                3 => tile_rows_avx2::<3>(
                    a, roff, rstride, kstride, b, bstride, block, ostride, kc, nc, accumulate,
                ),
                2 => tile_rows_avx2::<2>(
                    a, roff, rstride, kstride, b, bstride, block, ostride, kc, nc, accumulate,
                ),
                _ => tile_rows_avx2::<1>(
                    a, roff, rstride, kstride, b, bstride, block, ostride, kc, nc, accumulate,
                ),
            }
            i += take;
        }
    }

    /// # Safety
    /// Same contract as [`gemm_chunk_avx2`]; additionally `out` must hold
    /// `R` rows of `ostride` pitch (`nc` live columns each).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn tile_rows_avx2<const R: usize>(
        a: &[f32],
        roff: usize,
        rstride: usize,
        kstride: usize,
        b: &[f32],
        bstride: usize,
        out: &mut [f32],
        ostride: usize,
        kc: usize,
        nc: usize,
        accumulate: bool,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        // Double-width strips first: two vectors per row means 2*R
        // independent accumulation chains, enough to cover the FP-add
        // latency on cores that issue adds and muls on separate pipes.
        // Each lane still runs the exact per-element ascending-k chain, so
        // the wider tiling cannot change a single bit of the result.
        while j + 2 * NR <= nc {
            let mut acc0 = [_mm256_setzero_ps(); R];
            let mut acc1 = [_mm256_setzero_ps(); R];
            if accumulate {
                for r in 0..R {
                    acc0[r] = _mm256_loadu_ps(op.add(r * ostride + j));
                    acc1[r] = _mm256_loadu_ps(op.add(r * ostride + j + NR));
                }
            }
            for kk in 0..kc {
                let bv0 = _mm256_loadu_ps(bp.add(kk * bstride + j));
                let bv1 = _mm256_loadu_ps(bp.add(kk * bstride + j + NR));
                for r in 0..R {
                    let av = _mm256_set1_ps(*ap.add(roff + r * rstride + kk * kstride));
                    acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(av, bv0));
                    acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(av, bv1));
                }
            }
            for r in 0..R {
                _mm256_storeu_ps(op.add(r * ostride + j), acc0[r]);
                _mm256_storeu_ps(op.add(r * ostride + j + NR), acc1[r]);
            }
            j += 2 * NR;
        }
        while j + NR <= nc {
            let mut acc = [_mm256_setzero_ps(); R];
            if accumulate {
                for (r, accr) in acc.iter_mut().enumerate() {
                    *accr = _mm256_loadu_ps(op.add(r * ostride + j));
                }
            }
            for kk in 0..kc {
                let bv = _mm256_loadu_ps(bp.add(kk * bstride + j));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*ap.add(roff + r * rstride + kk * kstride));
                    *accr = _mm256_add_ps(*accr, _mm256_mul_ps(av, bv));
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(op.add(r * ostride + j), *accr);
            }
            j += NR;
        }
        // Ragged column tail: identical scalar chain to the other tiers (the
        // compiler cannot contract `s += a * b` into an FMA — Rust never
        // enables floating-point contraction).
        while j < nc {
            for r in 0..R {
                let mut s = if accumulate { out[r * ostride + j] } else { 0.0 };
                for kk in 0..kc {
                    s += a[roff + r * rstride + kk * kstride] * b[kk * bstride + j];
                }
                out[r * ostride + j] = s;
            }
            j += 1;
        }
    }
}

/// Packs `b` — an `n x k` row-major matrix — into `panel` as its transpose
/// (`k x n` row-major), i.e. `panel[kk * n + j] = b[j * k + kk]`. Every panel
/// element is written, so the panel buffer needs no initialization (it can
/// come straight from [`crate::workspace::Workspace::take_raw`]).
///
/// # Panics
/// Panics unless `panel.len() == k * n` and `b.len() >= n * k`.
pub fn pack_bt(b: &[f32], n: usize, k: usize, panel: &mut [f32]) {
    assert_eq!(panel.len(), k * n, "pack_bt panel length mismatch");
    assert!(b.len() >= n * k, "pack_bt source too small");
    for j in 0..n {
        let brow = &b[j * k..(j + 1) * k];
        for (kk, &v) in brow.iter().enumerate() {
            panel[kk * n + j] = v;
        }
    }
}

/// Threaded `C[m,n] = A[m,k] · B[k,n]` (or `C += A·B` when `accumulate`).
/// Every output element is overwritten unless `accumulate` is set; `B` is
/// used as-is (identity packing — a row-major `[k, n]` matrix is already
/// contiguous along the `kk` stream). Bitwise identical for every `kind` and
/// `threads` value.
pub fn gemm_nn(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    threads: usize,
    accumulate: bool,
) {
    parallel::run_row_chunks(out, n, threads, |row0, chunk| {
        gemm_chunk(kind, a, k, 1, b, chunk, row0, k, n, accumulate);
    });
}

/// Threaded `C[m,n] = A[k,m]ᵀ · B[k,n]` (or `C += AᵀB` when `accumulate`)
/// without materializing the transpose: the strided A view (`rstride = 1`,
/// `kstride = m`) walks column `r` of `A` directly.
pub fn gemm_tn(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    accumulate: bool,
) {
    debug_assert_eq!(out.len(), m * n, "gemm_tn output shape mismatch");
    parallel::run_row_chunks(out, n, threads, |row0, chunk| {
        gemm_chunk(kind, a, 1, m, b, chunk, row0, k, n, accumulate);
    });
}

/// Threaded `C[m,n] = A[m,k] · (B[n,k])ᵀ` through a packed `Bᵀ` panel
/// (`panel.len() == k * n`, fully overwritten). Bitwise identical to
/// [`gemm_nt_dot`] — same per-element ascending-`k` chain.
pub fn gemm_nt_packed(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    threads: usize,
    panel: &mut [f32],
) {
    pack_bt(b, n, k, panel);
    gemm_nt_prepacked(kind, a, panel, out, k, n, threads);
}

/// [`gemm_nt_packed`] over a panel the caller already packed with
/// [`pack_bt`] — the replay path for frozen weights, where the `O(k·n)`
/// pack is paid once per plan life instead of once per call. Runs the
/// exact multiply loop `gemm_nt_packed` runs after its pack, so the output
/// is bitwise identical to packing fresh.
pub fn gemm_nt_prepacked(
    kind: KernelKind,
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(panel.len(), k * n, "gemm_nt_prepacked panel length mismatch");
    parallel::run_row_chunks(out, n, threads, |row0, chunk| {
        gemm_chunk(kind, a, k, 1, panel, chunk, row0, k, n, false);
    });
}

/// Threaded `C[m,n] = A[m,k] · (B[n,k])ᵀ` as per-element row dots — the
/// pack-free path for tiny `m` (< [`PACK_MIN_ROWS`]), where a `k·n` panel
/// would cost more than it saves. Kind-independent: the scalar dot *is* the
/// ascending-`k` chain, so this is bitwise identical to [`gemm_nt_packed`].
pub fn gemm_nt_dot(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, threads: usize) {
    parallel::run_row_chunks(out, n, threads, |row0, chunk| {
        let rows = chunk.len() / n.max(1);
        for i in 0..rows {
            let arow = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let orow = &mut chunk[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut s = 0.0_f32;
                for (x, y) in arow.iter().zip(brow) {
                    s += x * y;
                }
                *o = s;
            }
        }
    });
}

// ===================== bf16 inference tier =====================

/// Rounds an f32 to its nearest bfloat16 representation, returned as the raw
/// 16-bit pattern (the top half of the f32 bits). Round-to-nearest-even, the
/// same rounding hardware bf16 units use. NaNs are quieted rather than
/// rounded so a payload can never carry into the exponent and turn into Inf.
#[inline]
pub fn bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) | 0x0040) as u16;
    }
    // RNE: add half an ulp of the kept field, plus the tie-break bit.
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// Widens a raw bf16 bit pattern back to f32 (exact — bf16 is a strict
/// prefix of the f32 format).
#[inline]
pub fn bf16_from_bits(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// `bf16_from_bits(bf16_bits(x))`: the value an operand actually contributes
/// once stored in bf16. Idempotent.
#[inline]
pub fn bf16_round(x: f32) -> f32 {
    bf16_from_bits(bf16_bits(x))
}

/// Rounds `src` elementwise into a bf16 buffer (resized to match).
pub fn pack_bf16(src: &[f32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.extend(src.iter().map(|&v| bf16_bits(v)));
}

/// [`pack_bt`] fused with bf16 rounding: packs `b` — an `n x k` row-major
/// matrix — into `panel` as its bf16 transpose (`k x n` row-major `u16`).
///
/// # Panics
/// Panics unless `b.len() >= n * k`.
pub fn pack_bt_bf16(b: &[f32], n: usize, k: usize, panel: &mut Vec<u16>) {
    assert!(b.len() >= n * k, "pack_bt_bf16 source too small");
    panel.clear();
    panel.resize(k * n, 0);
    for j in 0..n {
        let brow = &b[j * k..(j + 1) * k];
        for (kk, &v) in brow.iter().enumerate() {
            panel[kk * n + j] = bf16_bits(v);
        }
    }
}

/// True when the Native bf16 tier (AVX2 + FMA intrinsics) can run here.
pub fn native_bf16_available() -> bool {
    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
    {
        false
    }
}

/// Maps a requested tier to the bf16 tier that will actually run: `Native`
/// resolves to `Portable` unless both AVX2 and FMA are available.
pub fn resolve_bf16(kind: KernelKind) -> KernelKind {
    match kind {
        KernelKind::Native if !native_bf16_available() => KernelKind::Portable,
        k => k,
    }
}

/// bf16 counterpart of [`gemm_chunk`]: computes a contiguous chunk of output
/// rows with both operands rounded to bf16 and all accumulation in f32.
/// `b` is the pre-packed `u16` `[k, n]` operand; the strided `A` view is
/// rounded into a per-`KC`-panel staging buffer (an `O(rows * kc)` pack
/// amortized over `O(rows * kc * nc)` kernel work, which also absorbs the
/// stride so the inner loops read `A` contiguously).
///
/// Determinism: per resolved tier, independent of thread count and blocking
/// (panel seams are exact f32 store/reloads, and the `k0`-outer /
/// `j0`-inner loop order only changes when a panel's chain segment runs,
/// never its per-element order). Scalar and Portable are bitwise identical;
/// Native (FMA) agrees in distribution only.
///
/// # Panics
/// Panics when the A view or B would be read out of bounds.
pub fn gemm_chunk_bf16(
    kind: KernelKind,
    a: &[f32],
    rstride: usize,
    kstride: usize,
    b: &[u16],
    out: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    if n == 0 || out.is_empty() {
        return;
    }
    debug_assert_eq!(out.len() % n, 0, "gemm_chunk_bf16 requires whole output rows");
    let rows = out.len() / n;
    if k == 0 {
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    assert!(
        (row0 + rows - 1) * rstride + (k - 1) * kstride < a.len(),
        "gemm_chunk_bf16: A view out of bounds (rows {row0}..{} rstride {rstride} kstride {kstride} k {k} len {})",
        row0 + rows,
        a.len()
    );
    assert!(b.len() >= k * n, "gemm_chunk_bf16: B has {} elements, needs {}", b.len(), k * n);
    let kind = resolve_bf16(kind);
    // Rounded-A staging panel, reused across the j0 sweep of each k panel
    // and across calls (thread-local: each pool worker stages its own rows,
    // so no sharing — and sizing is per-call, so no cross-shape aliasing).
    thread_local! {
        static APANEL: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    APANEL.with(|cell| {
        let mut apanel = cell.borrow_mut();
        // Grow-only, no clear: every panel fully writes the `[rows, kc]` slots
        // it later reads, so stale contents from a previous call are dead.
        if apanel.len() < rows * KC.min(k) {
            apanel.resize(rows * KC.min(k), 0.0);
        }
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            for i in 0..rows {
                let base = (row0 + i) * rstride + k0 * kstride;
                let dst = &mut apanel[i * kc..i * kc + kc];
                for (t, d) in dst.iter_mut().enumerate() {
                    *d = bf16_round(a[base + t * kstride]);
                }
            }
            let acc = accumulate || k0 > 0;
            for j0 in (0..n).step_by(NC) {
                let nc = NC.min(n - j0);
                let bsub = &b[k0 * n + j0..];
                let osub = &mut out[j0..];
                match kind {
                    KernelKind::Scalar => bf16_chunk_scalar(&apanel, kc, bsub, n, osub, n, rows, nc, acc),
                    KernelKind::Portable => bf16_chunk_portable(&apanel, kc, bsub, n, osub, n, rows, nc, acc),
                    KernelKind::Native => {
                        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
                        // SAFETY: `resolve_bf16` returns Native only when AVX2
                        // and FMA were detected at runtime; slice bounds were
                        // asserted above and the panel offsets stay inside them.
                        unsafe {
                            avx2fma::bf16_chunk_fma(&apanel, kc, bsub, n, osub, n, rows, nc, acc)
                        }
                        #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
                        unreachable!("Native bf16 resolves to Portable off x86")
                    }
                }
            }
        }
    });
}

/// Scalar bf16 tier: the [`gemm_chunk_scalar`] loop over a rounded-A panel
/// (`[rows, kc]` f32, contiguous) and a `u16` B panel widened per element.
/// Separate mul and add — bitwise identical to the Portable bf16 tier.
fn bf16_chunk_scalar(
    a: &[f32],
    kc: usize,
    b: &[u16],
    bstride: usize,
    out: &mut [f32],
    ostride: usize,
    rows: usize,
    nc: usize,
    accumulate: bool,
) {
    for i in 0..rows {
        let arow = &a[i * kc..(i + 1) * kc];
        let orow = &mut out[i * ostride..i * ostride + nc];
        if !accumulate {
            orow.fill(0.0);
        }
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * bstride..kk * bstride + nc];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bf16_from_bits(bv);
            }
        }
    }
}

/// Portable bf16 tier: `MR x NR` register tiling over the rounded-A panel.
fn bf16_chunk_portable(
    a: &[f32],
    kc: usize,
    b: &[u16],
    bstride: usize,
    out: &mut [f32],
    ostride: usize,
    rows: usize,
    nc: usize,
    accumulate: bool,
) {
    let mut i = 0;
    while i < rows {
        let take = (rows - i).min(MR);
        let apanel = &a[i * kc..];
        let block = &mut out[i * ostride..];
        match take {
            4 => bf16_tile_rows::<4>(apanel, kc, b, bstride, block, ostride, nc, accumulate),
            3 => bf16_tile_rows::<3>(apanel, kc, b, bstride, block, ostride, nc, accumulate),
            2 => bf16_tile_rows::<2>(apanel, kc, b, bstride, block, ostride, nc, accumulate),
            _ => bf16_tile_rows::<1>(apanel, kc, b, bstride, block, ostride, nc, accumulate),
        }
        i += take;
    }
}

/// Portable bf16 strip kernel: same shape as [`tile_rows`], A read from the
/// contiguous rounded panel, B widened from `u16` per strip. Mul and add
/// stay separate ops so every lane matches the scalar bf16 chain bitwise.
#[inline(always)]
fn bf16_tile_rows<const R: usize>(
    a: &[f32],
    kc: usize,
    b: &[u16],
    bstride: usize,
    out: &mut [f32],
    ostride: usize,
    nc: usize,
    accumulate: bool,
) {
    let mut j = 0;
    while j + NR <= nc {
        let mut acc = [[0.0_f32; NR]; R];
        if accumulate {
            for (r, accr) in acc.iter_mut().enumerate() {
                accr.copy_from_slice(&out[r * ostride + j..r * ostride + j + NR]);
            }
        }
        for kk in 0..kc {
            let braw: &[u16; NR] = b[kk * bstride + j..kk * bstride + j + NR].try_into().unwrap();
            let mut bv = [0.0_f32; NR];
            for (l, &h) in braw.iter().enumerate() {
                bv[l] = bf16_from_bits(h);
            }
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = a[r * kc + kk];
                for (l, lane) in accr.iter_mut().enumerate() {
                    *lane += av * bv[l];
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out[r * ostride + j..r * ostride + j + NR].copy_from_slice(accr);
        }
        j += NR;
    }
    while j < nc {
        for r in 0..R {
            let mut s = if accumulate { out[r * ostride + j] } else { 0.0 };
            for kk in 0..kc {
                s += a[r * kc + kk] * bf16_from_bits(b[kk * bstride + j]);
            }
            out[r * ostride + j] = s;
        }
        j += 1;
    }
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
mod avx2fma {
    //! The Native bf16 tier: AVX2 + FMA. Unlike the f32 Native tier this one
    //! *is* allowed `_mm256_fmadd_ps` — the bf16 family is validated by
    //! distribution, not bits (module docs) — which doubles peak FLOPs on
    //! cores with two FMA pipes. B is widened from `u16` in-register
    //! (`_mm256_cvtepu16_epi32` + a 16-bit shift is an exact bf16 -> f32
    //! conversion).

    use super::{bf16_from_bits, MR, NR};
    #[cfg(target_arch = "x86")]
    use std::arch::x86::{
        __m128i, __m256, _mm256_castsi256_ps, _mm256_cvtepu16_epi32, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_set1_ps, _mm256_setzero_ps, _mm256_slli_epi32, _mm256_storeu_ps, _mm_loadu_si128,
    };
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::{
        __m128i, __m256, _mm256_castsi256_ps, _mm256_cvtepu16_epi32, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_set1_ps, _mm256_setzero_ps, _mm256_slli_epi32, _mm256_storeu_ps, _mm_loadu_si128,
    };

    /// Widens 8 bf16 values to an f32 vector (exact).
    ///
    /// # Safety
    /// `p` must be readable for 16 bytes.
    #[inline(always)]
    unsafe fn load_bf16x8(p: *const u16) -> __m256 {
        let h = _mm_loadu_si128(p as *const __m128i);
        _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(h)))
    }

    /// # Safety
    /// AVX2 and FMA must be available; `a` must hold `rows * kc` panel
    /// elements, the pre-offset `b` / `out` panels must cover `kc` / `rows`
    /// rows of `bstride` / `ostride` pitch with `nc` live columns.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn bf16_chunk_fma(
        a: &[f32],
        kc: usize,
        b: &[u16],
        bstride: usize,
        out: &mut [f32],
        ostride: usize,
        rows: usize,
        nc: usize,
        accumulate: bool,
    ) {
        let mut i = 0;
        while i < rows {
            let take = (rows - i).min(MR);
            let apanel = &a[i * kc..];
            let block = &mut out[i * ostride..];
            match take {
                4 => bf16_tile_fma::<4>(apanel, kc, b, bstride, block, ostride, nc, accumulate),
                3 => bf16_tile_fma::<3>(apanel, kc, b, bstride, block, ostride, nc, accumulate),
                2 => bf16_tile_fma::<2>(apanel, kc, b, bstride, block, ostride, nc, accumulate),
                _ => bf16_tile_fma::<1>(apanel, kc, b, bstride, block, ostride, nc, accumulate),
            }
            i += take;
        }
    }

    /// # Safety
    /// Same contract as [`bf16_chunk_fma`]; additionally `out` must hold `R`
    /// rows of `ostride` pitch (`nc` live columns each).
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn bf16_tile_fma<const R: usize>(
        a: &[f32],
        kc: usize,
        b: &[u16],
        bstride: usize,
        out: &mut [f32],
        ostride: usize,
        nc: usize,
        accumulate: bool,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        // Double-width strips: 2*R independent FMA chains cover the FMA
        // latency. Chain order per element is fixed (ascending k), so the
        // tier is deterministic across thread counts and blocking even
        // though it does not match the mul+add tiers bitwise.
        while j + 2 * NR <= nc {
            let mut acc0 = [_mm256_setzero_ps(); R];
            let mut acc1 = [_mm256_setzero_ps(); R];
            if accumulate {
                for r in 0..R {
                    acc0[r] = _mm256_loadu_ps(op.add(r * ostride + j));
                    acc1[r] = _mm256_loadu_ps(op.add(r * ostride + j + NR));
                }
            }
            for kk in 0..kc {
                let bv0 = load_bf16x8(bp.add(kk * bstride + j));
                let bv1 = load_bf16x8(bp.add(kk * bstride + j + NR));
                for r in 0..R {
                    let av = _mm256_set1_ps(*ap.add(r * kc + kk));
                    acc0[r] = _mm256_fmadd_ps(av, bv0, acc0[r]);
                    acc1[r] = _mm256_fmadd_ps(av, bv1, acc1[r]);
                }
            }
            for r in 0..R {
                _mm256_storeu_ps(op.add(r * ostride + j), acc0[r]);
                _mm256_storeu_ps(op.add(r * ostride + j + NR), acc1[r]);
            }
            j += 2 * NR;
        }
        while j + NR <= nc {
            let mut acc = [_mm256_setzero_ps(); R];
            if accumulate {
                for (r, accr) in acc.iter_mut().enumerate() {
                    *accr = _mm256_loadu_ps(op.add(r * ostride + j));
                }
            }
            for kk in 0..kc {
                let bv = load_bf16x8(bp.add(kk * bstride + j));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*ap.add(r * kc + kk));
                    *accr = _mm256_fmadd_ps(av, bv, *accr);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(op.add(r * ostride + j), *accr);
            }
            j += NR;
        }
        // Ragged column tail: `mul_add` keeps the one-rounding-per-MAC
        // behavior of the vector lanes (with FMA enabled it compiles to
        // vfmadd, not a libm call). Which columns land in the tail depends
        // only on nc, never on threading, so determinism per tier holds.
        while j < nc {
            for r in 0..R {
                let mut s = if accumulate { out[r * ostride + j] } else { 0.0 };
                for kk in 0..kc {
                    s = a[r * kc + kk].mul_add(bf16_from_bits(b[kk * bstride + j]), s);
                }
                out[r * ostride + j] = s;
            }
            j += 1;
        }
    }
}

/// Threaded bf16 `C[m,n] = A[m,k] · B[k,n]` (or `C += A·B` when
/// `accumulate`); `b` is the pre-packed `u16` operand (see [`pack_bf16`]).
/// Deterministic per resolved tier for every `threads` value.
pub fn gemm_nn_bf16(
    kind: KernelKind,
    a: &[f32],
    b: &[u16],
    out: &mut [f32],
    k: usize,
    n: usize,
    threads: usize,
    accumulate: bool,
) {
    parallel::run_row_chunks(out, n, threads, |row0, chunk| {
        gemm_chunk_bf16(kind, a, k, 1, b, chunk, row0, k, n, accumulate);
    });
}

/// Threaded bf16 `C[m,n] = A[k,m]ᵀ · B[k,n]` without materializing the
/// transpose (strided A view, as [`gemm_tn`]).
pub fn gemm_tn_bf16(
    kind: KernelKind,
    a: &[f32],
    b: &[u16],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    accumulate: bool,
) {
    debug_assert_eq!(out.len(), m * n, "gemm_tn_bf16 output shape mismatch");
    parallel::run_row_chunks(out, n, threads, |row0, chunk| {
        gemm_chunk_bf16(kind, a, 1, m, b, chunk, row0, k, n, accumulate);
    });
}

/// Threaded bf16 `C[m,n] = A[m,k] · (B[n,k])ᵀ` through a bf16-packed `Bᵀ`
/// panel ([`pack_bt_bf16`], resized by this call). The bf16 family always
/// packs — the pack doubles as the rounding pass, so there is no dot-path
/// split like [`gemm_nt_dot`].
pub fn gemm_nt_bf16(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    threads: usize,
    panel: &mut Vec<u16>,
) {
    pack_bt_bf16(b, n, k, panel);
    gemm_nt_bf16_packed(kind, a, panel, out, k, n, threads);
}

/// [`gemm_nt_bf16`] with the `Bᵀ` panel already packed ([`pack_bt_bf16`]) —
/// for callers that cache weight panels across calls (the workspace's
/// per-parameter packing cache) instead of re-rounding `B` every GEMM.
pub fn gemm_nt_bf16_packed(
    kind: KernelKind,
    a: &[f32],
    panel: &[u16],
    out: &mut [f32],
    k: usize,
    n: usize,
    threads: usize,
) {
    parallel::run_row_chunks(out, n, threads, |row0, chunk| {
        gemm_chunk_bf16(kind, a, k, 1, panel, chunk, row0, k, n, false);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0_f32..2.0)).collect()
    }

    fn all_kinds() -> [KernelKind; 3] {
        [KernelKind::Scalar, KernelKind::Portable, KernelKind::Native]
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        for k in all_kinds() {
            assert_eq!(KernelKind::parse(k.name()), Some(k));
        }
        assert_eq!(KernelKind::parse(" Native "), Some(KernelKind::Native));
        assert_eq!(KernelKind::parse("avx512"), None);
    }

    #[test]
    fn resolve_only_rewrites_native() {
        assert_eq!(resolve(KernelKind::Scalar), KernelKind::Scalar);
        assert_eq!(resolve(KernelKind::Portable), KernelKind::Portable);
        let r = resolve(KernelKind::Native);
        if native_available() {
            assert_eq!(r, KernelKind::Native);
        } else {
            assert_eq!(r, KernelKind::Portable);
        }
    }

    #[test]
    fn pack_bt_is_a_transpose() {
        // b: 2x3 (n=2 rows of k=3)
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut panel = vec![0.0; 6];
        pack_bt(&b, 2, 3, &mut panel);
        assert_eq!(panel, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn all_tiers_are_bitwise_identical_on_ragged_shapes() {
        let mut rng = StdRng::seed_from_u64(9);
        // Shapes straddling the MR x NR tile: exact multiples, ragged rows,
        // ragged cols, sub-tile, degenerate k.
        for &(m, k, n) in &[
            (8usize, 16usize, 16usize),
            (5, 7, 9),
            (1, 13, 8),
            (13, 1, 1),
            (4, 32, 8),
            (3, 5, 23),
            (9, 0, 7),
        ] {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let mut reference = vec![f32::NAN; m * n];
            gemm_nn(KernelKind::Scalar, &a, &b, &mut reference, k, n, 1, false);
            for kind in all_kinds() {
                for threads in [1usize, 2, 3, 16] {
                    let mut out = vec![f32::NAN; m * n];
                    gemm_nn(kind, &a, &b, &mut out, k, n, threads, false);
                    assert!(
                        out.iter().zip(&reference).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "{} t={threads} {m}x{k}x{n} diverged from scalar serial",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn accumulate_extends_the_chain() {
        let mut rng = StdRng::seed_from_u64(10);
        let (m, k, n) = (6usize, 11usize, 10usize);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);
        let init = randv(&mut rng, m * n);
        let mut reference = init.clone();
        gemm_chunk(KernelKind::Scalar, &a, k, 1, &b, &mut reference, 0, k, n, true);
        for kind in all_kinds() {
            let mut out = init.clone();
            gemm_nn(kind, &a, &b, &mut out, k, n, 2, true);
            assert!(
                out.iter().zip(&reference).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{} accumulate diverged",
                kind.name()
            );
        }
    }

    #[test]
    fn packed_and_dot_nt_paths_are_bitwise_identical() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[(1usize, 9usize, 5usize), (2, 9, 5), (7, 13, 11), (4, 8, 8)] {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, n * k);
            let mut dot = vec![f32::NAN; m * n];
            gemm_nt_dot(&a, &b, &mut dot, k, n, 1);
            for kind in all_kinds() {
                let mut panel = vec![f32::NAN; k * n];
                let mut packed = vec![f32::NAN; m * n];
                gemm_nt_packed(kind, &a, &b, &mut packed, k, n, 2, &mut panel);
                assert!(
                    packed.iter().zip(&dot).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{} packed nt diverged from dot path at {m}x{k}x{n}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn tn_matches_explicit_transpose_times_b() {
        let mut rng = StdRng::seed_from_u64(12);
        let (m, k, n) = (7usize, 9usize, 13usize); // a is k x m
        let a = randv(&mut rng, k * m);
        let b = randv(&mut rng, k * n);
        // Explicit transpose then nn through the scalar tier.
        let mut at = vec![0.0; m * k];
        for r in 0..k {
            for c in 0..m {
                at[c * k + r] = a[r * m + c];
            }
        }
        let mut want = vec![f32::NAN; m * n];
        gemm_nn(KernelKind::Scalar, &at, &b, &mut want, k, n, 1, false);
        for kind in all_kinds() {
            let mut got = vec![f32::NAN; m * n];
            gemm_tn(kind, &a, &b, &mut got, m, k, n, 3, false);
            assert!(
                got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{} tn diverged",
                kind.name()
            );
        }
    }

    #[test]
    fn panel_blocking_is_bitwise_invisible_across_kc_nc_seams() {
        // Shapes that straddle the KC/NC panel seams (one short, exact
        // multiples, one over). The reference is a naive unblocked triple
        // loop holding the full ascending-k chain in a register — the
        // blocked kernels checkpoint the same chain through an f32
        // store/reload at each seam, which must not change a single bit.
        let mut rng = StdRng::seed_from_u64(14);
        for &(m, k, n) in
            &[(3usize, KC + 7, NC + 5), (2, 2 * KC, NC), (5, KC - 1, NC + NR + 1), (6, KC, 2 * NC + 3)]
        {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let init = randv(&mut rng, m * n);
            for &accumulate in &[false, true] {
                let mut want = if accumulate { init.clone() } else { vec![0.0; m * n] };
                for i in 0..m {
                    for j in 0..n {
                        let mut s = want[i * n + j];
                        for kk in 0..k {
                            s += a[i * k + kk] * b[kk * n + j];
                        }
                        want[i * n + j] = s;
                    }
                }
                for kind in all_kinds() {
                    for threads in [1usize, 2, 4] {
                        let mut out = if accumulate { init.clone() } else { vec![f32::NAN; m * n] };
                        gemm_nn(kind, &a, &b, &mut out, k, n, threads, accumulate);
                        assert!(
                            out.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                            "{} t={threads} acc={accumulate} {m}x{k}x{n} diverged across panel seams",
                            kind.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn overwrite_semantics_ignore_stale_output_contents() {
        let mut rng = StdRng::seed_from_u64(13);
        let (m, k, n) = (5usize, 6usize, 7usize);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);
        let mut clean = vec![0.0; m * n];
        gemm_nn(KernelKind::Scalar, &a, &b, &mut clean, k, n, 1, false);
        for kind in all_kinds() {
            let mut dirty = vec![f32::NAN; m * n];
            gemm_nn(kind, &a, &b, &mut dirty, k, n, 1, false);
            assert!(
                dirty.iter().zip(&clean).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{} read stale output despite overwrite semantics",
                kind.name()
            );
        }
    }

    #[test]
    fn precision_parse_round_trips() {
        for p in [Precision::F32, Precision::Bf16] {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse(" BF16 "), Some(Precision::Bf16));
        assert_eq!(Precision::parse("fp16"), None);
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn bf16_round_is_nearest_even_and_total() {
        // Exactly representable values survive.
        for v in [0.0_f32, -0.0, 1.0, -2.5, 256.0] {
            assert_eq!(bf16_round(v).to_bits(), v.to_bits(), "{v} not preserved");
        }
        // 1 + 2^-9 is the exact midpoint between bf16(1.0) and the next
        // bf16 up; RNE keeps the even mantissa (1.0).
        assert_eq!(bf16_round(f32::from_bits(0x3F80_8000)), 1.0);
        // The midpoint above an odd mantissa rounds up.
        assert_eq!(bf16_round(f32::from_bits(0x3F81_8000)), f32::from_bits(0x3F82_0000));
        // Just past a midpoint rounds up regardless of parity.
        assert!(bf16_round(f32::from_bits(0x3F80_8001)) > 1.0);
        // Idempotent, and specials stay themselves.
        let r = bf16_round(std::f32::consts::PI);
        assert_eq!(bf16_round(r), r);
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
        // Overflow into the exponent is correct rounding, not corruption.
        assert_eq!(bf16_round(f32::from_bits(0x7F7F_FFFF)), f32::INFINITY);
    }

    /// Scalar-tier bf16 GEMM on raw operands must equal f32 scalar GEMM on
    /// pre-rounded operands bitwise: same chain, same values.
    #[test]
    fn bf16_scalar_equals_f32_on_prerounded_operands() {
        let mut rng = StdRng::seed_from_u64(20);
        for &(m, k, n) in &[(5usize, 7usize, 9usize), (1, 13, 8), (4, 32, 8), (9, 0, 7)] {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let ar: Vec<f32> = a.iter().map(|&v| bf16_round(v)).collect();
            let br: Vec<f32> = b.iter().map(|&v| bf16_round(v)).collect();
            let mut want = vec![f32::NAN; m * n];
            gemm_nn(KernelKind::Scalar, &ar, &br, &mut want, k, n, 1, false);
            let mut b16 = Vec::new();
            pack_bf16(&b, &mut b16);
            let mut got = vec![f32::NAN; m * n];
            gemm_nn_bf16(KernelKind::Scalar, &a, &b16, &mut got, k, n, 1, false);
            assert!(
                got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                "bf16 scalar != f32-on-rounded at {m}x{k}x{n}"
            );
        }
    }

    /// Scalar and Portable bf16 tiers are bitwise identical, thread- and
    /// blocking-invariant (including shapes straddling the KC/NC seams);
    /// the Native tier is bitwise self-consistent across thread counts.
    #[test]
    fn bf16_tier_determinism_contract() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in &[(5usize, 7usize, 9usize), (3, KC + 7, NC + 5), (6, 2 * KC, 17), (13, 1, 1)] {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let mut b16 = Vec::new();
            pack_bf16(&b, &mut b16);
            let mut reference = vec![f32::NAN; m * n];
            gemm_nn_bf16(KernelKind::Scalar, &a, &b16, &mut reference, k, n, 1, false);
            for kind in [KernelKind::Scalar, KernelKind::Portable] {
                for threads in [1usize, 2, 3, 16] {
                    let mut out = vec![f32::NAN; m * n];
                    gemm_nn_bf16(kind, &a, &b16, &mut out, k, n, threads, false);
                    assert!(
                        out.iter().zip(&reference).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "bf16 {} t={threads} {m}x{k}x{n} diverged from scalar serial",
                        kind.name()
                    );
                }
            }
            if native_bf16_available() {
                let mut native1 = vec![f32::NAN; m * n];
                gemm_nn_bf16(KernelKind::Native, &a, &b16, &mut native1, k, n, 1, false);
                for threads in [2usize, 3, 16] {
                    let mut out = vec![f32::NAN; m * n];
                    gemm_nn_bf16(KernelKind::Native, &a, &b16, &mut out, k, n, threads, false);
                    assert!(
                        out.iter().zip(&native1).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "bf16 native t={threads} {m}x{k}x{n} not thread-invariant"
                    );
                }
                // And the FMA tier agrees with the mul+add tiers within
                // accumulation tolerance (distribution-level contract).
                let tol = 1e-3_f32 * (k as f32).max(1.0).sqrt();
                assert!(
                    native1.iter().zip(&reference).all(|(x, y)| (x - y).abs() <= tol * (1.0 + y.abs())),
                    "bf16 native drifted past tolerance vs scalar at {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn bf16_accumulate_and_transpose_variants_match_reference() {
        let mut rng = StdRng::seed_from_u64(22);
        let (m, k, n) = (6usize, 11usize, 10usize);
        // tn: a is k x m, reference via explicit transpose of rounded a.
        let a = randv(&mut rng, k * m);
        let b = randv(&mut rng, k * n);
        let init = randv(&mut rng, m * n);
        let mut at = vec![0.0; m * k];
        for r in 0..k {
            for c in 0..m {
                at[c * k + r] = bf16_round(a[r * m + c]);
            }
        }
        let br: Vec<f32> = b.iter().map(|&v| bf16_round(v)).collect();
        let mut want = init.clone();
        gemm_nn(KernelKind::Scalar, &at, &br, &mut want, k, n, 1, true);
        let mut b16 = Vec::new();
        pack_bf16(&b, &mut b16);
        let mut got = init.clone();
        gemm_tn_bf16(KernelKind::Scalar, &a, &b16, &mut got, m, k, n, 2, true);
        assert!(
            got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
            "bf16 tn accumulate diverged"
        );
        // nt: b is n x k; reference is rounded-operand f32 nt.
        let bnt = randv(&mut rng, n * k);
        let ant = randv(&mut rng, m * k);
        let antr: Vec<f32> = ant.iter().map(|&v| bf16_round(v)).collect();
        let bntr: Vec<f32> = bnt.iter().map(|&v| bf16_round(v)).collect();
        let mut want_nt = vec![f32::NAN; m * n];
        gemm_nt_dot(&antr, &bntr, &mut want_nt, k, n, 1);
        let mut panel = Vec::new();
        let mut got_nt = vec![f32::NAN; m * n];
        gemm_nt_bf16(KernelKind::Scalar, &ant, &bnt, &mut got_nt, k, n, 2, &mut panel);
        assert!(
            got_nt.iter().zip(&want_nt).all(|(x, y)| x.to_bits() == y.to_bits()),
            "bf16 nt diverged from rounded-operand dot reference"
        );
    }
}
