//! Named, serializable parameter storage shared by all models.
//!
//! A [`ParamStore`] owns every trainable tensor of a model. Computation
//! graphs reference parameters through stable [`ParamId`]s, which lets the
//! DoppelGANger trainer retrain *subsets* of parameters (e.g. only the
//! attribute generator, for the paper's flexibility/privacy mechanism) and
//! lets optimizers keep per-parameter state across steps.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Stable handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Param {
    name: String,
    value: Tensor,
}

/// Owns the trainable tensors of one or more models.
///
/// The paper's workflow (Fig. 2) releases *model parameters* from the data
/// holder to the data consumer; [`ParamStore`] is the unit of that release
/// and is (de)serializable with serde.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor under `name`, returning its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.params.len());
        self.params.push(Param { name: name.into(), value });
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Immutable access to a parameter tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter tensor.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// The registration name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Iterates over `(id, name, tensor)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p.name.as_str(), &p.value))
    }

    /// Mutable iteration over every parameter tensor in id order.
    ///
    /// Used by the checkpoint codec, which zeroes non-finite scalars for
    /// JSON transport and patches their original bit patterns back on load.
    pub fn tensors_mut(&mut self) -> impl Iterator<Item = &mut Tensor> {
        self.params.iter_mut().map(|p| &mut p.value)
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Copies parameter values from `other` for the given ids.
    ///
    /// Used by the flexibility mechanism to transplant a retrained attribute
    /// generator back into a full model.
    ///
    /// # Panics
    /// Panics if shapes differ or an id is out of range for either store.
    pub fn copy_from(&mut self, other: &ParamStore, ids: &[ParamId]) {
        for &id in ids {
            let src = other.get(id);
            let dst = self.get_mut(id);
            assert_eq!(src.shape(), dst.shape(), "copy_from shape mismatch for {:?}", id);
            *dst = src.clone();
        }
    }
}

/// Gradients accumulated by one backward pass, indexed by [`ParamId`].
#[derive(Debug, Clone, Default)]
pub struct GradMap {
    grads: Vec<Option<Tensor>>,
}

impl GradMap {
    /// Creates an empty map sized for `n` parameters.
    pub fn with_capacity(n: usize) -> Self {
        GradMap { grads: vec![None; n] }
    }

    /// Accumulates `grad` into the slot for `id`.
    pub fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        if self.grads.len() <= id.0 {
            self.grads.resize(id.0 + 1, None);
        }
        match &mut self.grads[id.0] {
            Some(g) => g.add_assign(grad),
            slot @ None => *slot = Some(grad.clone()),
        }
    }

    /// The gradient for `id`, if any path reached it.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(|g| g.as_ref())
    }

    /// Iterates over present gradients.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.grads.iter().enumerate().filter_map(|(i, g)| g.as_ref().map(|t| (ParamId(i), t)))
    }

    /// Iterates mutably over present gradients (e.g. for DP noise
    /// injection).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Tensor)> {
        self.grads.iter_mut().enumerate().filter_map(|(i, g)| g.as_mut().map(|t| (ParamId(i), t)))
    }

    /// Merges another map into this one (used when a step sums several losses
    /// computed on separate graphs).
    pub fn merge(&mut self, other: &GradMap) {
        for (id, g) in other.iter() {
            self.accumulate(id, g);
        }
    }

    /// Scales every gradient in place.
    pub fn scale(&mut self, s: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.map_inplace(|x| x * s);
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads.iter().flatten().map(|g| g.sq_norm()).sum::<f32>().sqrt()
    }

    /// Clips gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }

    /// True when no gradient is present.
    pub fn is_empty(&self) -> bool {
        self.grads.iter().all(|g| g.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_roundtrip() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::ones(2, 2));
        let b = s.add("b", Tensor::zeros(1, 2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "w");
        assert_eq!(s.get(b).shape(), (1, 2));
        s.get_mut(a).set(0, 0, 5.0);
        assert_eq!(s.get(a).get(0, 0), 5.0);
        assert_eq!(s.num_scalars(), 6);
    }

    #[test]
    fn store_serde_roundtrip() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let json = serde_json::to_string(&s).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get(ParamId(0)).as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(back.name(ParamId(0)), "w");
    }

    #[test]
    fn gradmap_accumulates_and_clips() {
        let mut m = GradMap::with_capacity(2);
        m.accumulate(ParamId(0), &Tensor::from_vec(1, 2, vec![3.0, 0.0]));
        m.accumulate(ParamId(0), &Tensor::from_vec(1, 2, vec![0.0, 4.0]));
        assert_eq!(m.get(ParamId(0)).unwrap().as_slice(), &[3.0, 4.0]);
        assert!((m.global_norm() - 5.0).abs() < 1e-6);
        let pre = m.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((m.global_norm() - 1.0).abs() < 1e-5);
        assert!(m.get(ParamId(1)).is_none());
    }

    #[test]
    fn gradmap_merge_sums() {
        let mut a = GradMap::with_capacity(1);
        a.accumulate(ParamId(0), &Tensor::ones(1, 2));
        let mut b = GradMap::with_capacity(1);
        b.accumulate(ParamId(0), &Tensor::ones(1, 2));
        a.merge(&b);
        assert_eq!(a.get(ParamId(0)).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn copy_from_transplants_values() {
        let mut src = ParamStore::new();
        let id = src.add("w", Tensor::full(2, 2, 3.0));
        let mut dst = ParamStore::new();
        let id2 = dst.add("w", Tensor::zeros(2, 2));
        assert_eq!(id, id2);
        dst.copy_from(&src, &[id]);
        assert_eq!(dst.get(id).as_slice(), &[3.0; 4]);
    }
}
