//! # dg-nn — the neural substrate of the DoppelGANger reproduction
//!
//! A small, dependency-light deep-learning engine written for this
//! reproduction of *"Using GANs for Sharing Networked Time Series Data"*
//! (Lin et al., IMC 2020). The paper's models are built from three
//! ingredients, all provided here:
//!
//! * [`tensor::Tensor`] — dense row-major `f32` matrices whose matmuls run
//!   through the register-tiled microkernels of [`kernels`] (runtime
//!   scalar/portable/AVX2 dispatch, all tiers bitwise identical) and split
//!   rows across threads via [`parallel`] with a fixed chunking scheme
//!   (parallel output is bitwise identical to serial);
//! * [`graph::Graph`] — an eager reverse-mode autodiff tape with the op set
//!   needed by MLPs, LSTMs and Wasserstein losses. Under the hood it records
//!   a [`graph::Plan`] (op topology + shapes) whose buffers come from a
//!   reusable [`workspace::Workspace`] pool, so per-step tapes can run
//!   without re-allocating (see [`graph::PlanExecutor`]);
//! * [`layers`] / [`optim`] — Linear/MLP/LSTM layers over a serializable
//!   [`params::ParamStore`], plus SGD and Adam.
//!
//! The one genuinely tricky piece is [`penalty`]: WGAN-GP needs the
//! *gradient of a gradient*. Because every discriminator in the paper is an
//! MLP (§4.2), and we fix their hidden activations to leaky-ReLU
//! (piecewise-linear), the input gradient `∇x D(x)` can be spelled out as a
//! chain of masked transposed matmuls whose masks are piecewise-constant in
//! `x`. Differentiating that expression with the ordinary tape gives the
//! exact second derivative almost everywhere — no higher-order autodiff
//! machinery required.
//!
//! ## Example
//!
//! ```
//! use dg_nn::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "f", 2, 16, 1, 1, Activation::Tanh, Activation::Linear, &mut rng);
//! let mut opt = Adam::new(0.01);
//!
//! // Fit f(x) = x0 + x1 on a fixed batch.
//! let x = Tensor::randn(32, 2, 1.0, &mut rng);
//! let t = Tensor::from_vec(32, 1, x.as_slice().chunks(2).map(|c| c[0] + c[1]).collect());
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let xv = g.constant(x.clone());
//!     let pred = mlp.forward(&mut g, &store, xv);
//!     let tv = g.constant(t.clone());
//!     let d = g.sub(pred, tv);
//!     let sq = g.square(d);
//!     let loss = g.mean_all(sq);
//!     g.backward(loss);
//!     opt.step(&mut store, &g.param_grads());
//! }
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod graph;
pub mod kernels;
pub mod layers;
pub mod optim;
pub mod parallel;
pub mod params;
pub mod penalty;
pub mod tensor;
pub mod workspace;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::graph::{Graph, PlanExecutor, Var};
    pub use crate::kernels::{KernelKind, Precision};
    pub use crate::layers::{Activation, Linear, LstmCell, LstmState, Mlp};
    pub use crate::optim::{Adam, Sgd};
    pub use crate::parallel::num_threads;
    pub use crate::params::{GradMap, ParamId, ParamStore};
    pub use crate::penalty::{gradient_penalty, input_gradient};
    pub use crate::tensor::Tensor;
    pub use crate::workspace::Workspace;
}
