//! Shape-keyed buffer pool backing reusable computation graphs.
//!
//! Training step shapes are static across a run (fixed batch size, fixed
//! unroll length), so the tensors a [`Graph`](crate::graph::Graph) allocates
//! in step `t + 1` are shape-for-shape the tensors it freed at the end of
//! step `t`. A [`Workspace`] exploits that: it keeps the backing `Vec<f32>`
//! buffers of finished graphs in a pool keyed by `(rows, cols)` and hands
//! them back out instead of hitting the allocator again — either zero-filled
//! ([`Workspace::take_zeroed`], for consumers that accumulate) or with
//! unspecified contents ([`Workspace::take_raw`], for outputs every kernel
//! fully overwrites; this is the hot path, since the matmul `*_into` family
//! has overwrite semantics and needs no memset per hand-out).
//!
//! Determinism: pooling only changes *where* the bytes live, never any
//! arithmetic — `take_zeroed` buffers start from zero and `take_raw` buffers
//! are fully overwritten before first read — so pooled execution is bitwise
//! identical to fresh allocation for any thread count (see
//! [`crate::gradcheck::check_workspace_determinism`]; under
//! `debug_assertions` pooled `take_raw` buffers are NaN-poisoned so a stale
//! read cannot pass silently).
//!
//! The pool is trimmed at every cycle boundary ([`Workspace::end_cycle`],
//! called by `Graph::finish`) to the high-water mark of buffers actually
//! taken per cycle, so tensors adopted from outside (e.g. a fresh data batch
//! passed to `Graph::constant`) cannot grow the pool without bound.

use crate::kernels::{self, Precision};
use crate::params::ParamId;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cumulative counters describing how a [`Workspace`] has been used.
///
/// Serializable so training-run telemetry (heartbeat events in a JSONL run
/// log) can embed pool-health counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkspaceStats {
    /// Buffer requests served from the pool (no heap allocation).
    pub hits: u64,
    /// Buffer requests that fell through to the allocator.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub reclaimed: u64,
    /// Buffers dropped by cycle-boundary trimming.
    pub dropped: u64,
}

/// Memory layout of a cached bf16 weight packing (see
/// [`Workspace::packed_bf16`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bf16Layout {
    /// `[k, n]` row-major `u16` — the `B` operand of `MatMul` and the `W`
    /// of `ConcatMatMul` ([`kernels::pack_bf16`]).
    RowMajor,
    /// `B[n, k]` packed as its `[k, n]` transpose — the `MatMulBT` panel
    /// ([`kernels::pack_bt_bf16`]).
    Transposed,
}

#[derive(Debug, Default)]
struct ShapePool {
    free: Vec<Vec<f32>>,
    taken_in_cycle: usize,
    peak_taken: usize,
}

/// A reusable, shape-keyed pool of tensor storage plus per-graph execution
/// hints (node-count capacity, optional thread override).
///
/// The intended lifecycle is a hand-off loop — the workspace survives the
/// graphs it feeds:
///
/// ```
/// use dg_nn::graph::Graph;
/// use dg_nn::tensor::Tensor;
/// use dg_nn::workspace::Workspace;
///
/// let mut ws = Workspace::new();
/// for _step in 0..3 {
///     let mut g = Graph::with_workspace(ws);
///     let x = g.constant(Tensor::ones(4, 4));
///     let y = g.tanh(x);
///     let _ = g.value(y);
///     ws = g.finish(); // buffers return to the pool for the next step
/// }
/// assert!(ws.stats().hits > 0);
/// ```
///
/// In the batch-level fan-outs (DP-SGD per-sample passes, generation
/// rollouts) each pool task owns its own workspace, pre-split like the RNG
/// seeds before the dispatch, so no buffer is ever shared between
/// executors and the serial/parallel bitwise-equality guarantee of
/// DESIGN.md §9 is preserved regardless of which parked worker serves a
/// task.
#[derive(Debug)]
pub struct Workspace {
    pool: HashMap<(usize, usize), ShapePool>,
    pooling: bool,
    node_hint: usize,
    thread_override: Option<usize>,
    /// GEMM numeric format for graphs executed against this workspace.
    /// Defaults to [`Precision::F32`]; only inference paths (`dg-core`'s
    /// `Sampler`) ever set [`Precision::Bf16`] — training code builds
    /// default workspaces and therefore cannot dispatch the bf16 family.
    precision: Precision,
    /// Scratch for bf16-packed `B` operands, reused across ops (empty and
    /// unused under `Precision::F32`).
    u16_scratch: Vec<u16>,
    /// Per-parameter bf16 weight packings ([`Workspace::packed_bf16`]).
    /// Inference re-multiplies the same weights every timestep; without this
    /// cache the `O(k*n)` pack would rival the GEMM itself at serving batch
    /// sizes.
    packed_bf16: HashMap<(ParamId, Bf16Layout), Vec<u16>>,
    /// Per-parameter f32 `MatMulBT` panel packings ([`Workspace::packed_f32`]):
    /// `B[n, k]` stored as its `[k, n]` transpose via [`kernels::pack_bt`].
    /// Only consulted when [`Workspace::frozen_panels`] is on — i.e. inside a
    /// replayed [`crate::graph::PlanExecutor`], where *frozen* parameters are
    /// immutable for the plan's life. Training never enables the flag, so its
    /// per-step weight updates can neither populate nor read this cache.
    packed_f32: HashMap<ParamId, Vec<f32>>,
    /// Whether frozen-parameter f32 panel caching is active (enabled by
    /// `Graph::into_executor`, never by the eager training path).
    frozen_panels: bool,
    stats: WorkspaceStats,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// Creates a workspace with buffer pooling enabled.
    pub fn new() -> Self {
        Workspace {
            pool: HashMap::new(),
            pooling: true,
            node_hint: 0,
            thread_override: None,
            precision: Precision::F32,
            u16_scratch: Vec::new(),
            packed_bf16: HashMap::new(),
            packed_f32: HashMap::new(),
            frozen_panels: false,
            stats: WorkspaceStats::default(),
        }
    }

    /// Creates a workspace that never pools: every request allocates and
    /// every reclaim drops. This is the fresh-allocation reference used by
    /// determinism checks and allocation benchmarks.
    pub fn unpooled() -> Self {
        Workspace { pooling: false, ..Workspace::new() }
    }

    /// True when buffer pooling is enabled.
    pub fn pooling_enabled(&self) -> bool {
        self.pooling
    }

    /// Forces every graph op recorded against this workspace to use exactly
    /// `threads` workers, overriding the size-based heuristics. Exposed for
    /// determinism tests that drive small graphs through many thread counts.
    pub fn with_thread_override(mut self, threads: usize) -> Self {
        self.thread_override = Some(threads.max(1));
        self
    }

    /// Current thread override, if any.
    pub fn thread_override(&self) -> Option<usize> {
        self.thread_override
    }

    /// Selects the GEMM numeric format for graphs executed against this
    /// workspace. Inference-only: see [`Workspace::precision`].
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the GEMM numeric format in place (same contract as
    /// [`Workspace::with_precision`]). Switching format drops any cached
    /// weight packings.
    pub fn set_precision(&mut self, precision: Precision) {
        if precision != self.precision {
            self.clear_param_caches();
        }
        self.precision = precision;
    }

    /// The GEMM numeric format graphs executed against this workspace
    /// dispatch. [`Precision::Bf16`] routes `MatMul`/`MatMulBT`/
    /// `ConcatMatMul` forward evaluation through the bf16-stored /
    /// f32-accumulated kernel family; everything else (elementwise ops,
    /// backward passes — which inference never records) stays f32.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Borrows the pooled `u16` scratch buffer for a bf16 `B`-operand pack,
    /// leaving an empty vec in its place ([`Workspace::put_u16`] returns
    /// it). Swap-out rather than borrow so the caller can hold the scratch
    /// across other `&mut self` pool calls.
    pub fn take_u16(&mut self) -> Vec<u16> {
        std::mem::take(&mut self.u16_scratch)
    }

    /// Returns the `u16` scratch taken by [`Workspace::take_u16`] (contents
    /// are scratch — nothing reads them between ops).
    pub fn put_u16(&mut self, buf: Vec<u16>) {
        self.u16_scratch = buf;
    }

    /// The bf16 packing of parameter `id` in `layout`: packs `src` on the
    /// first request and serves the cached panel afterwards.
    ///
    /// Contract: `src` must be the tensor bound to `id` for this
    /// workspace's whole lifetime. That holds everywhere bf16 can run —
    /// parameters are immutable during inference, and training (the only
    /// thing that mutates them) builds default-F32 workspaces, so its
    /// per-step updates can neither populate nor read this cache. Callers
    /// that do swap models must use a fresh workspace (the `Sampler` builds
    /// one per generation pass).
    pub fn packed_bf16(&mut self, id: ParamId, layout: Bf16Layout, src: &Tensor) -> &[u16] {
        self.packed_bf16.entry((id, layout)).or_insert_with(|| {
            let mut buf = Vec::new();
            match layout {
                Bf16Layout::RowMajor => kernels::pack_bf16(src.as_slice(), &mut buf),
                Bf16Layout::Transposed => {
                    kernels::pack_bt_bf16(src.as_slice(), src.rows(), src.cols(), &mut buf)
                }
            }
            buf
        })
    }

    /// Number of weight packings currently cached (observability for tests).
    pub fn packed_bf16_entries(&self) -> usize {
        self.packed_bf16.len()
    }

    /// Enables the frozen-parameter f32 panel cache for this workspace.
    /// Called by `Graph::into_executor` only: a `PlanExecutor`'s frozen
    /// parameters are immutable until `refresh_params` (which clears the
    /// cache), so their `pack_bt` panels can be packed once per plan life.
    pub fn enable_frozen_panels(&mut self) {
        self.frozen_panels = true;
    }

    /// True when frozen-parameter f32 panel caching is active.
    pub fn frozen_panels(&self) -> bool {
        self.frozen_panels
    }

    /// The f32 `MatMulBT` panel packing of frozen parameter `id`: packs
    /// `src` (the `B[n, k]` operand, stored as its `[k, n]` transpose) on
    /// the first request and serves the cached panel afterwards.
    ///
    /// Contract: `src` must be the tensor bound to `id` for the cache's
    /// whole life — guaranteed because only frozen (non-trainable) parameter
    /// leaves inside a `PlanExecutor` reach this path, and every parameter
    /// rebind (`refresh_params`, precision switch) clears the cache via
    /// [`Workspace::clear_param_caches`].
    pub fn packed_f32(&mut self, id: ParamId, src: &Tensor) -> &[f32] {
        self.packed_f32.entry(id).or_insert_with(|| {
            let mut panel = vec![0.0f32; src.rows() * src.cols()];
            kernels::pack_bt(src.as_slice(), src.rows(), src.cols(), &mut panel);
            panel
        })
    }

    /// Number of f32 panel packings currently cached (observability for
    /// tests).
    pub fn packed_f32_entries(&self) -> usize {
        self.packed_f32.len()
    }

    /// Drops every cached per-parameter packing (bf16 and f32). Must be
    /// called whenever the tensors behind the cached `ParamId`s may have
    /// changed: `PlanExecutor::refresh_params` and precision switches.
    pub fn clear_param_caches(&mut self) {
        self.packed_bf16.clear();
        self.packed_f32.clear();
    }

    /// The thread override when set, `default` otherwise.
    pub(crate) fn override_or(&self, default: usize) -> usize {
        self.thread_override.unwrap_or(default)
    }

    /// Node-count capacity hint for the next graph (the node count of the
    /// last finished graph — exact for static step shapes).
    pub fn node_hint(&self) -> usize {
        self.node_hint
    }

    /// Records the node count of a finished graph as the capacity hint for
    /// the next one.
    pub fn set_node_hint(&mut self, nodes: usize) {
        self.node_hint = nodes;
    }

    /// Hands out a zero-filled `rows x cols` tensor, reusing pooled storage
    /// when a buffer of that exact shape is free.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        let mut t = self.take_raw(rows, cols);
        t.as_mut_slice().fill(0.0);
        t
    }

    /// Hands out a `rows x cols` tensor with **unspecified contents**,
    /// reusing pooled storage when a buffer of that exact shape is free.
    ///
    /// This is the allocation path for outputs that every kernel fully
    /// overwrites (the `*_into` matmul family, elementwise maps, copies):
    /// skipping the zero fill removes one memset per buffer hand-out from
    /// the training hot loop. Callers that *accumulate* into the buffer
    /// (e.g. `sum_cols_into`) must use [`Workspace::take_zeroed`] instead.
    ///
    /// Under `debug_assertions` a pooled buffer is poisoned with NaN before
    /// hand-out, so a consumer that wrongly reads stale contents fails the
    /// test suite loudly instead of silently reusing old values.
    pub fn take_raw(&mut self, rows: usize, cols: usize) -> Tensor {
        let len = rows * cols;
        if !self.pooling || len == 0 {
            if len > 0 {
                self.stats.misses += 1;
            }
            return Tensor::zeros(rows, cols);
        }
        let entry = self.pool.entry((rows, cols)).or_default();
        entry.taken_in_cycle += 1;
        match entry.free.pop() {
            Some(mut buf) => {
                self.stats.hits += 1;
                if cfg!(debug_assertions) {
                    buf.fill(f32::NAN);
                }
                Tensor::from_vec(rows, cols, buf)
            }
            None => {
                self.stats.misses += 1;
                Tensor::zeros(rows, cols)
            }
        }
    }

    /// Returns a tensor's storage to the pool (drops it when pooling is
    /// disabled or the tensor is empty).
    pub fn reclaim(&mut self, t: Tensor) {
        if !self.pooling || t.is_empty() {
            return;
        }
        let (rows, cols) = t.shape();
        self.stats.reclaimed += 1;
        self.pool.entry((rows, cols)).or_default().free.push(t.into_vec());
    }

    /// Marks a cycle boundary (one graph record/backward/finish round trip):
    /// updates each shape's take high-water mark and trims its free list to
    /// that mark, so adopted external buffers cannot grow the pool without
    /// bound.
    pub fn end_cycle(&mut self) {
        for p in self.pool.values_mut() {
            p.peak_taken = p.peak_taken.max(p.taken_in_cycle);
            if p.free.len() > p.peak_taken {
                self.stats.dropped += (p.free.len() - p.peak_taken) as u64;
                p.free.truncate(p.peak_taken);
            }
            p.taken_in_cycle = 0;
        }
    }

    /// Cumulative usage counters.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Total number of buffers currently held in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.values().map(|p| p.free.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_matches_fresh_zeros() {
        let mut ws = Workspace::new();
        let mut t = ws.take_zeroed(2, 3);
        t.as_mut_slice().fill(7.0);
        ws.reclaim(t);
        let t2 = ws.take_zeroed(2, 3);
        assert_eq!(t2, Tensor::zeros(2, 3), "pooled buffer must come back zeroed");
        assert_eq!(ws.stats().hits, 1);
        assert_eq!(ws.stats().misses, 1);
    }

    #[test]
    fn take_raw_reuses_without_zeroing_guarantee() {
        let mut ws = Workspace::new();
        let mut t = ws.take_raw(2, 3);
        t.as_mut_slice().fill(7.0);
        ws.reclaim(t);
        let t2 = ws.take_raw(2, 3);
        assert_eq!(t2.shape(), (2, 3));
        assert_eq!(ws.stats().hits, 1);
        if cfg!(debug_assertions) {
            // Pooled raw buffers are NaN-poisoned in debug builds so stale
            // reads blow up in tests.
            assert!(t2.as_slice().iter().all(|x| x.is_nan()));
        }
        // Fresh (miss-path) raw buffers are plain allocations.
        let t3 = ws.take_raw(9, 9);
        assert_eq!(t3.as_slice(), &[0.0; 81]);
    }

    #[test]
    fn unpooled_never_reuses() {
        let mut ws = Workspace::unpooled();
        let t = ws.take_zeroed(2, 2);
        ws.reclaim(t);
        let _ = ws.take_zeroed(2, 2);
        assert_eq!(ws.stats().hits, 0);
        assert_eq!(ws.pooled_buffers(), 0);
    }

    #[test]
    fn empty_tensors_bypass_the_pool() {
        let mut ws = Workspace::new();
        let t = ws.take_zeroed(4, 0);
        assert_eq!(t.shape(), (4, 0));
        ws.reclaim(t);
        assert_eq!(ws.pooled_buffers(), 0);
        assert_eq!(ws.stats().misses, 0);
    }

    #[test]
    fn end_cycle_trims_to_peak_taken() {
        let mut ws = Workspace::new();
        // Cycle 1: take 2 buffers of one shape, give back 5 (3 adopted).
        let a = ws.take_zeroed(1, 4);
        let b = ws.take_zeroed(1, 4);
        ws.reclaim(a);
        ws.reclaim(b);
        ws.reclaim(Tensor::zeros(1, 4));
        ws.reclaim(Tensor::zeros(1, 4));
        ws.reclaim(Tensor::zeros(1, 4));
        assert_eq!(ws.pooled_buffers(), 5);
        ws.end_cycle();
        assert_eq!(ws.pooled_buffers(), 2, "trimmed to the 2-buffer high-water mark");
        assert_eq!(ws.stats().dropped, 3);
        // Cycle 2: both requests hit the pool.
        let hits_before = ws.stats().hits;
        let a = ws.take_zeroed(1, 4);
        let b = ws.take_zeroed(1, 4);
        assert_eq!(ws.stats().hits - hits_before, 2);
        ws.reclaim(a);
        ws.reclaim(b);
        ws.end_cycle();
        assert_eq!(ws.pooled_buffers(), 2);
    }

    #[test]
    fn precision_defaults_to_f32_and_scratch_round_trips() {
        let mut ws = Workspace::new();
        assert_eq!(ws.precision(), Precision::F32, "training-safe default");
        ws.set_precision(Precision::Bf16);
        assert_eq!(ws.precision(), Precision::Bf16);
        let ws2 = Workspace::new().with_precision(Precision::Bf16);
        assert_eq!(ws2.precision(), Precision::Bf16);
        let mut buf = ws.take_u16();
        buf.resize(64, 7);
        ws.put_u16(buf);
        assert_eq!(ws.take_u16().len(), 64, "scratch capacity survives the round trip");
    }

    #[test]
    fn thread_override_is_reported() {
        let ws = Workspace::new().with_thread_override(5);
        assert_eq!(ws.thread_override(), Some(5));
        assert_eq!(ws.override_or(1), 5);
        let ws = Workspace::new();
        assert_eq!(ws.override_or(3), 3);
    }
}
