//! Finite-difference gradient checking and determinism checking utilities.
//!
//! Exposed publicly so downstream crates (and this workspace's property
//! tests) can verify custom graph constructions against numerical
//! derivatives — the standard way to validate an autodiff engine — and can
//! assert that the threaded kernels in [`crate::parallel`] stay bitwise
//! reproducible for any worker count.

use crate::graph::{Graph, Var};
use crate::kernels::{self, KernelKind};
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute deviation between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest deviation relative to `1 + |numeric|`.
    pub max_rel_err: f32,
    /// Index of the worst element.
    pub worst_index: usize,
}

impl GradCheckReport {
    /// True when the relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err < tol
    }
}

/// Checks `d loss / d x` at `x0` for a scalar-valued graph builder using
/// central finite differences with step `eps`.
///
/// `build` must be a pure function of its input var (it is re-invoked on a
/// fresh graph for every probe).
pub fn check_input_gradient(
    build: impl Fn(&mut Graph, Var) -> Var,
    x0: &Tensor,
    eps: f32,
) -> GradCheckReport {
    let mut g = Graph::new();
    let x = g.input(x0.clone());
    let loss = build(&mut g, x);
    assert_eq!(g.value(loss).shape(), (1, 1), "gradient checks need a scalar loss");
    g.backward(loss);
    let analytic = g.grad(x).expect("input did not receive a gradient — did the loss depend on it?").clone();

    let eval = |xt: Tensor| -> f32 {
        let mut g = Graph::new();
        let v = g.input(xt);
        let l = build(&mut g, v);
        g.value(l).get(0, 0)
    };

    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0, worst_index: 0 };
    for i in 0..x0.len() {
        let mut xp = x0.clone();
        xp.as_mut_slice()[i] += eps;
        let fp = eval(xp);
        let mut xm = x0.clone();
        xm.as_mut_slice()[i] -= eps;
        let fm = eval(xm);
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let abs = (a - numeric).abs();
        let rel = abs / (1.0 + numeric.abs());
        if rel > report.max_rel_err {
            report.max_rel_err = rel;
            report.max_abs_err = abs;
            report.worst_index = i;
        }
    }
    report
}

/// Checks that the three matmul kernels are **bitwise** identical to their
/// serial references (`threads = 1`) for an `m x k x n` problem across all
/// of `thread_counts`. Returns the first discrepancy as a human-readable
/// message, or `None` when everything matches exactly.
pub fn check_matmul_determinism(
    m: usize,
    k: usize,
    n: usize,
    thread_counts: &[usize],
    seed: u64,
) -> Option<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let bt = Tensor::randn(n, k, 1.0, &mut rng); // right factor for a * bt^T
    let at = Tensor::randn(m, n, 1.0, &mut rng); // right factor for a^T * at

    let ref_mm = a.matmul_threaded(&b, 1);
    let ref_bt = a.matmul_bt_threaded(&bt, 1);
    let ref_at = a.matmul_at_threaded(&at, 1);
    for &t in thread_counts {
        for (name, got, want) in [
            ("matmul", a.matmul_threaded(&b, t), &ref_mm),
            ("matmul_bt", a.matmul_bt_threaded(&bt, t), &ref_bt),
            ("matmul_at", a.matmul_at_threaded(&at, t), &ref_at),
        ] {
            if got.as_slice() != want.as_slice() {
                return Some(format!("{name} {m}x{k}x{n} with {t} threads is not bitwise equal to serial"));
            }
        }
    }
    None
}

/// Checks that every dispatch tier ([`KernelKind::Scalar`] /
/// [`KernelKind::Portable`] / [`KernelKind::Native`]) produces **bitwise**
/// identical results for all three matmul transpose variants (including both
/// `A·Bᵀ` code paths — packed panel and pack-free dot) across every worker
/// count in `thread_counts`, for an `m x k x n` problem. The reference is
/// the serial scalar kernel. Returns the first discrepancy as a
/// human-readable message, or `None` when everything matches exactly.
///
/// On hosts without AVX2 the `Native` tier resolves to `Portable`; the check
/// still runs (and must still pass) — it just exercises two distinct code
/// paths instead of three.
pub fn check_kernel_equivalence(
    m: usize,
    k: usize,
    n: usize,
    thread_counts: &[usize],
    seed: u64,
) -> Option<String> {
    check_kernel_equivalence_cycles(m, k, n, thread_counts, 1, seed)
}

/// [`check_kernel_equivalence`] repeated for `cycles` consecutive rounds
/// against the same process-wide worker pool.
///
/// Every threaded call in a round is served by the *same* parked workers as
/// the previous round (the pool is persistent — see [`crate::parallel`]), so
/// this checks that dispatcher reuse — mailbox hand-off, executor striding,
/// wake/latch cycling — cannot perturb a single bit across rounds, not just
/// within one. Returns the first discrepancy, or `None`.
pub fn check_kernel_equivalence_cycles(
    m: usize,
    k: usize,
    n: usize,
    thread_counts: &[usize],
    cycles: usize,
    seed: u64,
) -> Option<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let bt = Tensor::randn(n, k, 1.0, &mut rng); // right factor for a * bt^T
    let at = Tensor::randn(m, n, 1.0, &mut rng); // right factor for a^T * at

    let ref_mm = a.matmul_with_kind(&b, 1, KernelKind::Scalar);
    let ref_bt = a.matmul_bt_with_kind(&bt, 1, KernelKind::Scalar);
    let ref_at = a.matmul_at_with_kind(&at, 1, KernelKind::Scalar);
    let kinds = [KernelKind::Scalar, KernelKind::Portable, KernelKind::Native];
    for cycle in 0..cycles.max(1) {
        for kind in kinds {
            for &t in thread_counts {
                for (name, got, want) in [
                    ("matmul", a.matmul_with_kind(&b, t, kind), &ref_mm),
                    ("matmul_bt", a.matmul_bt_with_kind(&bt, t, kind), &ref_bt),
                    ("matmul_at", a.matmul_at_with_kind(&at, t, kind), &ref_at),
                ] {
                    if got.as_slice() != want.as_slice() {
                        return Some(format!(
                            "{name} {m}x{k}x{n} kind={} threads={t} cycle={cycle} is not bitwise equal to serial scalar",
                            kind.name()
                        ));
                    }
                }
                // Force both A·Bᵀ paths regardless of the PACK_MIN_ROWS
                // heuristic: the pack-free dot and an explicitly packed panel.
                if k * n > 0 {
                    let mut dot = Tensor::zeros(m, bt.rows());
                    kernels::gemm_nt_dot(a.as_slice(), bt.as_slice(), dot.as_mut_slice(), k, bt.rows(), t);
                    if dot.as_slice() != ref_bt.as_slice() {
                        return Some(format!(
                            "gemm_nt_dot {m}x{k}x{n} threads={t} cycle={cycle} is not bitwise equal to serial scalar"
                        ));
                    }
                    let mut packed = Tensor::zeros(m, bt.rows());
                    let mut panel = vec![0.0_f32; k * bt.rows()];
                    kernels::gemm_nt_packed(
                        kind,
                        a.as_slice(),
                        bt.as_slice(),
                        packed.as_mut_slice(),
                        k,
                        bt.rows(),
                        t,
                        &mut panel,
                    );
                    if packed.as_slice() != ref_bt.as_slice() {
                        return Some(format!(
                            "gemm_nt_packed {m}x{k}x{n} kind={} threads={t} cycle={cycle} is not bitwise equal to serial scalar",
                            kind.name()
                        ));
                    }
                }
            }
        }
    }
    None
}

/// Checks the bf16 inference family's determinism contract for an
/// `m x k x n` problem: Scalar and Portable are **bitwise** identical to the
/// serial scalar bf16 reference across every worker count (all three
/// transpose variants), the scalar bf16 result equals the f32 scalar kernel
/// run on pre-rounded operands (the family is "storage-only" bf16), and the
/// Native (FMA) tier — when available — is bitwise self-consistent across
/// worker counts while staying within accumulation tolerance of the scalar
/// reference. Returns the first discrepancy, or `None`.
pub fn check_bf16_kernel_equivalence(
    m: usize,
    k: usize,
    n: usize,
    thread_counts: &[usize],
    seed: u64,
) -> Option<String> {
    use crate::kernels::bf16_round;

    let mut rng = StdRng::seed_from_u64(seed);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let bt = Tensor::randn(n, k, 1.0, &mut rng); // right factor for a * bt^T
    let at = Tensor::randn(m, n, 1.0, &mut rng); // right factor for a^T * at

    let run = |kind: KernelKind, t: usize| -> [Tensor; 3] {
        let mut scratch = Vec::new();
        let mut mm = Tensor::zeros(m, n);
        a.matmul_into_bf16(&b, &mut mm, t, kind, &mut scratch);
        let mut ntv = Tensor::zeros(m, bt.rows());
        a.matmul_bt_into_bf16(&bt, &mut ntv, t, kind, &mut scratch);
        let mut tn = Tensor::zeros(k, at.cols());
        a.matmul_at_into_bf16(&at, &mut tn, t, kind, &mut scratch);
        [mm, ntv, tn]
    };
    let names = ["matmul", "matmul_bt", "matmul_at"];
    let reference = run(KernelKind::Scalar, 1);

    // Anchor: scalar bf16 == f32 scalar kernel on pre-rounded operands.
    if k > 0 && n > 0 {
        let ar = Tensor::from_vec(m, k, a.as_slice().iter().map(|&v| bf16_round(v)).collect());
        let br = Tensor::from_vec(k, n, b.as_slice().iter().map(|&v| bf16_round(v)).collect());
        let want = ar.matmul_with_kind(&br, 1, KernelKind::Scalar);
        if want.as_slice().iter().zip(reference[0].as_slice()).any(|(x, y)| x.to_bits() != y.to_bits()) {
            return Some(format!("bf16 scalar {m}x{k}x{n} != f32 scalar on pre-rounded operands"));
        }
    }

    for kind in [KernelKind::Scalar, KernelKind::Portable] {
        for &t in thread_counts {
            let got = run(kind, t);
            for ((name, g), r) in names.iter().zip(&got).zip(&reference) {
                if g.as_slice().iter().zip(r.as_slice()).any(|(x, y)| x.to_bits() != y.to_bits()) {
                    return Some(format!(
                        "bf16 {name} {m}x{k}x{n} kind={} threads={t} is not bitwise equal to serial scalar",
                        kind.name()
                    ));
                }
            }
        }
    }
    if kernels::native_bf16_available() {
        let native_ref = run(KernelKind::Native, 1);
        for &t in thread_counts {
            let got = run(KernelKind::Native, t);
            for ((name, g), r) in names.iter().zip(&got).zip(&native_ref) {
                if g.as_slice().iter().zip(r.as_slice()).any(|(x, y)| x.to_bits() != y.to_bits()) {
                    return Some(format!(
                        "bf16 {name} {m}x{k}x{n} native threads={t} is not bitwise self-consistent"
                    ));
                }
            }
        }
        let tol = 1e-3 * (k as f32).max(1.0).sqrt();
        for ((name, g), r) in names.iter().zip(&native_ref).zip(&reference) {
            if g.as_slice().iter().zip(r.as_slice()).any(|(x, y)| (x - y).abs() > tol * (1.0 + y.abs())) {
                return Some(format!("bf16 {name} {m}x{k}x{n} native drifted past tolerance vs scalar"));
            }
        }
    }
    None
}

/// Checks that a forward-only graph program behaves per the precision
/// contract: under [`crate::kernels::Precision::Bf16`] the result is
/// deterministic across every worker count in `thread_counts` (and across
/// pooled-workspace reuse `cycles`), and — when `expect_differs` — actually
/// differs from the f32 execution (i.e. the switch reaches the kernels).
/// `program` records a graph and returns the output var whose value is
/// compared. Returns the first discrepancy, or `None`.
pub fn check_graph_precision_determinism(
    program: impl Fn(&mut Graph) -> Var,
    cycles: usize,
    thread_counts: &[usize],
    expect_differs: bool,
) -> Option<String> {
    use crate::kernels::Precision;

    let run = |ws: Workspace| -> (Vec<f32>, Workspace) {
        let mut g = Graph::with_workspace(ws);
        let out = program(&mut g);
        let v = g.value(out).as_slice().to_vec();
        (v, g.finish())
    };

    let (f32_ref, _) = run(Workspace::unpooled());
    let (reference, _) = run(Workspace::unpooled().with_precision(Precision::Bf16));
    if expect_differs && reference.iter().zip(&f32_ref).all(|(x, y)| x.to_bits() == y.to_bits()) {
        return Some(
            "bf16 execution is bitwise identical to f32 — the precision switch did not reach the kernels"
                .into(),
        );
    }
    for &threads in thread_counts {
        let mut ws = Workspace::new().with_precision(Precision::Bf16).with_thread_override(threads);
        for cycle in 0..cycles.max(1) {
            let state;
            (state, ws) = run(ws);
            if state.len() != reference.len() {
                return Some(format!(
                    "bf16 threads={threads} cycle={cycle}: {} values, expected {}",
                    state.len(),
                    reference.len()
                ));
            }
            if let Some(i) = (0..state.len()).find(|&i| state[i].to_bits() != reference[i].to_bits()) {
                return Some(format!(
                    "bf16 threads={threads} cycle={cycle}: diverged at element {i}: {} vs {}",
                    state[i], reference[i]
                ));
            }
        }
    }
    None
}

/// Checks the plan-replay contract: a tape recorded once with rebindable
/// input slots ([`Graph::input_slot`]) and replayed via
/// [`crate::graph::PlanExecutor`] must produce **bitwise** identical output
/// to re-recording the graph from scratch for every input set, at every
/// worker count in `thread_counts`, under `precision`.
///
/// `program` records the computation, calling `g.input_slot(...)` once per
/// tensor of the given input set (in order) and returning the output var.
/// `input_sets[0]` is the recording set; every set (including a repeat of
/// the first — cache-reuse cycle) is then bound, replayed and compared
/// against an eager re-record. Returns the first discrepancy, or `None`.
pub fn check_plan_replay_equivalence(
    program: impl Fn(&mut Graph, &[Tensor]) -> Var,
    input_sets: &[Vec<Tensor>],
    thread_counts: &[usize],
    precision: kernels::Precision,
) -> Option<String> {
    let first = input_sets.first()?;
    for &threads in thread_counts {
        let fresh = |set: &[Tensor]| -> Vec<f32> {
            let mut g = Graph::with_workspace(
                Workspace::new().with_precision(precision).with_thread_override(threads),
            );
            let out = program(&mut g, set);
            g.value(out).as_slice().to_vec()
        };

        let mut g =
            Graph::with_workspace(Workspace::new().with_precision(precision).with_thread_override(threads));
        let out = program(&mut g, first);
        let mut exec = g.into_executor();
        if exec.input_slots() != first.len() {
            return Some(format!(
                "program registered {} input slots for {} input tensors",
                exec.input_slots(),
                first.len()
            ));
        }
        // Replay every set twice: the second pass reuses warmed caches
        // (pooled buffers, frozen f32 panels, bf16 packings).
        for cycle in 0..2 {
            for (si, set) in input_sets.iter().enumerate() {
                for (i, t) in set.iter().enumerate() {
                    exec.set_input_slot(i, t);
                }
                exec.run();
                let want = fresh(set);
                let got = exec.value(out).as_slice();
                if got.len() != want.len() {
                    return Some(format!(
                        "threads={threads} precision={precision:?} set={si} cycle={cycle}: {} values, expected {}",
                        got.len(),
                        want.len()
                    ));
                }
                if let Some(i) = (0..got.len()).find(|&i| got[i].to_bits() != want[i].to_bits()) {
                    return Some(format!(
                        "threads={threads} precision={precision:?} set={si} cycle={cycle}: replay diverged from re-record at element {i}: {} vs {}",
                        got[i], want[i]
                    ));
                }
            }
        }
    }
    None
}

/// Checks that executing `program` out of a pooled, reused [`Workspace`] is
/// **bitwise** identical to fresh allocation, across consecutive reuse
/// `cycles` and every worker count in `thread_counts`.
///
/// `program` records an arbitrary graph (drawing constants however it likes,
/// as long as it is deterministic) and returns a scalar loss var; the checker
/// runs forward + backward and compares every node value and gradient against
/// an unpooled reference execution. Returns the first discrepancy as a
/// human-readable message, or `None` when everything matches exactly.
pub fn check_workspace_determinism(
    program: impl Fn(&mut Graph) -> Var,
    cycles: usize,
    thread_counts: &[usize],
) -> Option<String> {
    let run = |ws: Workspace| -> (Vec<f32>, Workspace) {
        let mut g = Graph::with_workspace(ws);
        let loss = program(&mut g);
        g.backward(loss);
        let state = g.flat_state();
        (state, g.finish())
    };

    let (reference, _) = run(Workspace::unpooled());
    for &threads in thread_counts {
        let mut ws = Workspace::new().with_thread_override(threads);
        for cycle in 0..cycles.max(1) {
            let state;
            (state, ws) = run(ws);
            if state.len() != reference.len() {
                return Some(format!(
                    "threads={threads} cycle={cycle}: {} state values, expected {}",
                    state.len(),
                    reference.len()
                ));
            }
            if let Some(i) = (0..state.len()).find(|&i| state[i].to_bits() != reference[i].to_bits()) {
                return Some(format!(
                    "threads={threads} cycle={cycle}: pooled execution diverged at element {i}: {} vs {}",
                    state[i], reference[i]
                ));
            }
        }
    }
    None
}

/// Runs `f` several times and checks every run returns **bitwise** identical
/// output (useful for end-to-end determinism checks such as two identically
/// seeded training steps). Returns the first mismatch description, if any.
pub fn check_bitwise_repeatable(mut f: impl FnMut() -> Vec<f32>, runs: usize) -> Option<String> {
    let reference = f();
    for run in 1..runs.max(1) {
        let got = f();
        if got.len() != reference.len() {
            return Some(format!("run {run} returned {} values, expected {}", got.len(), reference.len()));
        }
        if let Some(i) = (0..got.len()).find(|&i| got[i].to_bits() != reference[i].to_bits()) {
            return Some(format!("run {run} diverged at element {i}: {} vs {}", got[i], reference[i]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_a_correct_graph() {
        let x0 = Tensor::from_vec(2, 2, vec![0.3, -0.4, 0.9, 0.1]);
        let report = check_input_gradient(
            |g, x| {
                let t = g.tanh(x);
                let s = g.square(t);
                g.mean_all(s)
            },
            &x0,
            1e-3,
        );
        assert!(report.passes(1e-2), "report: {report:?}");
    }

    #[test]
    fn detects_a_wrong_gradient() {
        // A deliberately wrong construction: scale the loss in the forward
        // value but compare against an unscaled analytic path by checking
        // with a huge tolerance boundary. We emulate "wrong" by comparing a
        // different function: build computes mean(x^2) while the analytic
        // gradient we probe is from mean(x^2) * 2 via scale — the checker
        // itself is consistent, so instead verify that a *nonzero* mismatch
        // is reported when eps is absurdly large (finite-difference error).
        let x0 = Tensor::from_vec(1, 3, vec![0.5, -0.2, 0.8]);
        let report = check_input_gradient(
            |g, x| {
                let c = g.tanh(x);
                let s = g.square(c);
                g.mean_all(s)
            },
            &x0,
            0.5, // huge step => visible truncation error
        );
        assert!(report.max_abs_err > 1e-4, "large-step FD should disagree: {report:?}");
    }

    #[test]
    fn parallel_matmuls_are_bitwise_deterministic_across_odd_shapes() {
        // Odd, prime-ish and degenerate shapes: uneven chunk splits, chunks
        // larger than the row count, single rows/cols.
        let shapes = [
            (1usize, 1usize, 1usize),
            (2, 3, 1),
            (3, 5, 2),
            (7, 13, 11),
            (64, 3, 9),
            (33, 129, 17),
            (129, 17, 33),
        ];
        let threads = [1usize, 2, 3, 4, 7, 16];
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            if let Some(err) = check_matmul_determinism(m, k, n, &threads, 1000 + i as u64) {
                panic!("{err}");
            }
        }
    }

    #[test]
    fn threaded_variants_agree_with_public_entry_points() {
        // The auto-threaded public methods must equal the explicit serial
        // reference bitwise, both below and above the parallel threshold.
        let mut rng = StdRng::seed_from_u64(77);
        for (m, k, n) in [(5usize, 9usize, 7usize), (96, 160, 96)] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            assert_eq!(a.matmul(&b).as_slice(), a.matmul_threaded(&b, 1).as_slice());
            let bt = Tensor::randn(n, k, 1.0, &mut rng);
            assert_eq!(a.matmul_bt(&bt).as_slice(), a.matmul_bt_threaded(&bt, 1).as_slice());
            let at = Tensor::randn(m, n, 1.0, &mut rng);
            assert_eq!(a.matmul_at(&at).as_slice(), a.matmul_at_threaded(&at, 1).as_slice());
        }
    }

    #[test]
    fn kernel_tiers_are_bitwise_equivalent_across_shapes_and_threads() {
        // Ragged shapes stress the MR/NR register-tile tails: row blocks of
        // 1..3 leftover rows, column tails narrower than one SIMD lane, and
        // degenerate k=0 / n=0 products.
        let shapes = [
            (1usize, 1usize, 1usize),
            (4, 8, 8),    // exact MR x NR tiles
            (5, 7, 9),    // ragged everywhere
            (3, 129, 17), // long k chain, odd n
            (13, 1, 1),   // single-column chain
            (2, 5, 23),   // n tail wider than 2 NR lanes
            (9, 0, 7),    // empty inner dimension
            (33, 16, 64), // multi-chunk threading splits
        ];
        let threads = [1usize, 2, 3, 4, 7, 16];
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            // cycles = 2: every round re-dispatches through the same parked
            // pool workers, covering mailbox reuse as well as first wake.
            if let Some(err) = check_kernel_equivalence_cycles(m, k, n, &threads, 2, 2000 + i as u64) {
                panic!("{err}");
            }
        }
    }

    #[test]
    fn bf16_kernels_hold_their_determinism_contract_across_shapes() {
        let shapes = [
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 7, 9),
            (3, 129, 17),
            (2, 5, 23),
            (9, 0, 7),
            (33, 16, 64),
        ];
        let threads = [1usize, 2, 3, 4, 7, 16];
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            if let Some(err) = check_bf16_kernel_equivalence(m, k, n, &threads, 3000 + i as u64) {
                panic!("{err}");
            }
        }
    }

    #[test]
    fn graph_precision_switch_is_deterministic_and_reaches_the_kernels() {
        // The op mix of a generation forward pass: plain matmul, fused
        // concat-matmul gates, A·Bᵀ, and the elementwise glue around them.
        let err = check_graph_precision_determinism(
            |g| {
                let mut rng = StdRng::seed_from_u64(7);
                let x = g.constant(Tensor::randn(5, 4, 1.0, &mut rng));
                let h = g.constant(Tensor::randn(5, 3, 1.0, &mut rng));
                let w = g.constant(Tensor::randn(7, 6, 0.5, &mut rng));
                let gates = g.concat_matmul(&[x, h], w);
                let t = g.tanh(gates);
                let w2 = g.constant(Tensor::randn(6, 4, 0.5, &mut rng));
                let y = g.matmul(t, w2);
                let p = g.constant(Tensor::randn(3, 4, 0.5, &mut rng));
                g.matmul_bt(y, p)
            },
            3,
            &[1, 2, 4, 8],
            true,
        );
        assert!(err.is_none(), "{}", err.unwrap());
    }

    #[test]
    fn plan_replay_matches_rerecording_for_a_frozen_net() {
        use crate::kernels::Precision;
        use crate::params::ParamStore;
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", Tensor::randn(4, 6, 0.5, &mut rng));
        let w2 = store.add("w2", Tensor::randn(3, 6, 0.5, &mut rng));
        let b = store.add("b", Tensor::randn(1, 3, 0.5, &mut rng));
        let sets: Vec<Vec<Tensor>> = (0..3).map(|_| vec![Tensor::randn(5, 4, 1.0, &mut rng)]).collect();
        for precision in [Precision::F32, Precision::Bf16] {
            let err = check_plan_replay_equivalence(
                |g, inputs| {
                    let x = g.input_slot(inputs[0].clone());
                    let wv1 = g.frozen_param(&store, w1);
                    let h = g.matmul(x, wv1);
                    let t = g.tanh(h);
                    let wv2 = g.frozen_param(&store, w2);
                    let y = g.matmul_bt(t, wv2);
                    let bv = g.frozen_param(&store, b);
                    g.add_row(y, bv)
                },
                &sets,
                &[1, 2, 4, 8],
                precision,
            );
            assert!(err.is_none(), "{}", err.unwrap());
        }
    }

    #[test]
    fn workspace_reuse_is_bitwise_deterministic_for_a_mixed_graph() {
        // A program exercising matmul, activations, reductions, slicing and
        // concatenation — the op mix of a real LSTM training step.
        let err = check_workspace_determinism(
            |g| {
                let mut rng = StdRng::seed_from_u64(42);
                let x = g.constant(Tensor::randn(5, 4, 1.0, &mut rng));
                let w = g.constant(Tensor::randn(4, 6, 0.5, &mut rng));
                let h = g.matmul(x, w);
                let t = g.tanh(h);
                let s = g.sigmoid(h);
                let left = g.slice_cols(t, 0, 3);
                let right = g.slice_cols(s, 3, 6);
                let cat = g.concat_cols(&[left, right]);
                let col = g.sum_rows(cat);
                let scaled = g.mul_col(cat, col);
                let sq = g.square(scaled);
                g.mean_all(sq)
            },
            3,
            &[1, 2, 4, 8, 16],
        );
        assert!(err.is_none(), "{}", err.unwrap());
    }

    #[test]
    fn workspace_determinism_checker_reports_divergence() {
        // A program that depends on ambient state is *not* deterministic and
        // must be flagged.
        use std::cell::Cell;
        let counter = Cell::new(0.0_f32);
        let err = check_workspace_determinism(
            |g| {
                counter.set(counter.get() + 1.0);
                let x = g.constant(Tensor::from_vec(1, 1, vec![counter.get()]));
                g.square(x)
            },
            2,
            &[1],
        );
        assert!(err.is_some(), "state-dependent program must be reported");
    }

    #[test]
    fn check_bitwise_repeatable_detects_divergence() {
        assert!(check_bitwise_repeatable(|| vec![1.0, 2.0], 3).is_none());
        let mut call = 0;
        let err = check_bitwise_repeatable(
            move || {
                call += 1;
                vec![call as f32]
            },
            2,
        );
        assert!(err.is_some(), "diverging runs must be reported");
    }
}
