//! Finite-difference gradient checking utilities.
//!
//! Exposed publicly so downstream crates (and this workspace's property
//! tests) can verify custom graph constructions against numerical
//! derivatives — the standard way to validate an autodiff engine.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Result of one gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute deviation between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest deviation relative to `1 + |numeric|`.
    pub max_rel_err: f32,
    /// Index of the worst element.
    pub worst_index: usize,
}

impl GradCheckReport {
    /// True when the relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err < tol
    }
}

/// Checks `d loss / d x` at `x0` for a scalar-valued graph builder using
/// central finite differences with step `eps`.
///
/// `build` must be a pure function of its input var (it is re-invoked on a
/// fresh graph for every probe).
pub fn check_input_gradient(
    build: impl Fn(&mut Graph, Var) -> Var,
    x0: &Tensor,
    eps: f32,
) -> GradCheckReport {
    let mut g = Graph::new();
    let x = g.input(x0.clone());
    let loss = build(&mut g, x);
    assert_eq!(g.value(loss).shape(), (1, 1), "gradient checks need a scalar loss");
    g.backward(loss);
    let analytic = g
        .grad(x)
        .expect("input did not receive a gradient — did the loss depend on it?")
        .clone();

    let eval = |xt: Tensor| -> f32 {
        let mut g = Graph::new();
        let v = g.input(xt);
        let l = build(&mut g, v);
        g.value(l).get(0, 0)
    };

    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0, worst_index: 0 };
    for i in 0..x0.len() {
        let mut xp = x0.clone();
        xp.as_mut_slice()[i] += eps;
        let fp = eval(xp);
        let mut xm = x0.clone();
        xm.as_mut_slice()[i] -= eps;
        let fm = eval(xm);
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let abs = (a - numeric).abs();
        let rel = abs / (1.0 + numeric.abs());
        if rel > report.max_rel_err {
            report.max_rel_err = rel;
            report.max_abs_err = abs;
            report.worst_index = i;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_a_correct_graph() {
        let x0 = Tensor::from_vec(2, 2, vec![0.3, -0.4, 0.9, 0.1]);
        let report = check_input_gradient(
            |g, x| {
                let t = g.tanh(x);
                let s = g.square(t);
                g.mean_all(s)
            },
            &x0,
            1e-3,
        );
        assert!(report.passes(1e-2), "report: {report:?}");
    }

    #[test]
    fn detects_a_wrong_gradient() {
        // A deliberately wrong construction: scale the loss in the forward
        // value but compare against an unscaled analytic path by checking
        // with a huge tolerance boundary. We emulate "wrong" by comparing a
        // different function: build computes mean(x^2) while the analytic
        // gradient we probe is from mean(x^2) * 2 via scale — the checker
        // itself is consistent, so instead verify that a *nonzero* mismatch
        // is reported when eps is absurdly large (finite-difference error).
        let x0 = Tensor::from_vec(1, 3, vec![0.5, -0.2, 0.8]);
        let report = check_input_gradient(
            |g, x| {
                let c = g.tanh(x);
                let s = g.square(c);
                g.mean_all(s)
            },
            &x0,
            0.5, // huge step => visible truncation error
        );
        assert!(report.max_abs_err > 1e-4, "large-step FD should disagree: {report:?}");
    }
}
