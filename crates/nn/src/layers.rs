//! Neural network layers: linear, multi-layer perceptron, and LSTM cell.
//!
//! Layers are *descriptions*: they register their parameters in a
//! [`ParamStore`] at construction time and record ops into a fresh [`Graph`]
//! on every forward call. This keeps the tape single-use while parameters
//! persist across steps.

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions used by [`Mlp`] hidden and output layers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no activation).
    Linear,
    /// Hyperbolic tangent (used for `[-1, 1]`-normalized continuous outputs).
    Tanh,
    /// Logistic sigmoid (used for `[0, 1]`-normalized continuous outputs).
    Sigmoid,
    /// Leaky ReLU. Piecewise-linear, which is what makes the WGAN-GP
    /// double-backprop in [`crate::penalty`] exact.
    LeakyRelu(f32),
    /// Row-wise softmax (categorical outputs and generation flags).
    Softmax,
}

impl Activation {
    /// Applies the activation in-graph.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Linear => x,
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::LeakyRelu(a) => g.leaky_relu(x, a),
            Activation::Softmax => g.softmax(x),
        }
    }

    /// The derivative evaluated from the *pre-activation* tensor, as a plain
    /// tensor. Only defined for piecewise-linear activations, where the
    /// derivative is constant a.e. — the key property exploited by the
    /// gradient-penalty construction.
    pub fn piecewise_linear_mask(self, pre: &Tensor) -> Option<Tensor> {
        match self {
            Activation::Linear => Some(Tensor::ones(pre.rows(), pre.cols())),
            Activation::LeakyRelu(a) => Some(pre.map(|x| if x > 0.0 { 1.0 } else { a })),
            _ => None,
        }
    }
}

/// A fully-connected layer `y = x W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix parameter (`in_dim x out_dim`).
    pub w: ParamId,
    /// Bias row vector parameter (`1 x out_dim`).
    pub b: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Registers a linear layer with Xavier/Glorot-uniform initialization.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let w = store.add(format!("{name}.w"), Tensor::rand_uniform(in_dim, out_dim, -bound, bound, rng));
        let b = store.add(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear { w, b, in_dim, out_dim }
    }

    /// Records `x W + b`, returning the pre-activation.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }

    /// Like [`Linear::forward`], but loads the parameters as frozen leaves:
    /// gradients still flow through the op *to the input* but never reach the
    /// weights. Used when updating a generator through a frozen critic and at
    /// inference time, where the retained [`ParamId`] binding lets the bf16
    /// tier cache the weight packing and lets cached generation plans cache
    /// frozen f32 `pack_bt` panels — see [`Graph::frozen_param`].
    pub fn forward_frozen(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.frozen_param(store, self.w);
        let b = g.frozen_param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }

    /// The parameter ids owned by this layer.
    pub fn params(&self) -> Vec<ParamId> {
        vec![self.w, self.b]
    }
}

/// A multi-layer perceptron with uniform hidden activation and a configurable
/// output activation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Hidden + output layers in order.
    pub layers: Vec<Linear>,
    /// Activation applied after every hidden layer.
    pub hidden_act: Activation,
    /// Activation applied after the final layer.
    pub out_act: Activation,
}

/// Forward-pass byproducts needed by the gradient-penalty construction: the
/// piecewise-linear derivative masks of each hidden activation, detached from
/// the graph.
#[derive(Debug, Clone)]
pub struct MlpMasks {
    /// One mask per hidden layer, each shaped like that layer's
    /// pre-activation.
    pub masks: Vec<Tensor>,
}

impl Mlp {
    /// Registers an MLP `in_dim -> hidden^depth -> out_dim`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        depth: usize,
        out_dim: usize,
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut R,
    ) -> Self {
        let mut layers = Vec::with_capacity(depth + 1);
        let mut cur = in_dim;
        for i in 0..depth {
            layers.push(Linear::new(store, &format!("{name}.h{i}"), cur, hidden, rng));
            cur = hidden;
        }
        layers.push(Linear::new(store, &format!("{name}.out"), cur, out_dim, rng));
        Mlp { layers, hidden_act, out_act }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(|l| l.in_dim).unwrap_or(0)
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_dim).unwrap_or(0)
    }

    /// Standard forward pass.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            h = if i == last { self.out_act.apply(g, h) } else { self.hidden_act.apply(g, h) };
        }
        h
    }

    /// Forward pass with frozen parameters (see [`Linear::forward_frozen`]).
    pub fn forward_frozen(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward_frozen(g, store, h);
            h = if i == last { self.out_act.apply(g, h) } else { self.hidden_act.apply(g, h) };
        }
        h
    }

    /// Forward pass that additionally captures the hidden activations'
    /// piecewise-linear derivative masks (required by
    /// [`crate::penalty::input_gradient`]).
    ///
    /// # Panics
    /// Panics if the hidden activation is not piecewise linear.
    pub fn forward_with_masks(&self, g: &mut Graph, store: &ParamStore, x: Var) -> (Var, MlpMasks) {
        let mut h = x;
        let mut masks = Vec::with_capacity(self.layers.len() - 1);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(g, store, h);
            if i == last {
                h = self.out_act.apply(g, pre);
            } else {
                let mask = self
                    .hidden_act
                    .piecewise_linear_mask(g.value(pre))
                    .expect("forward_with_masks requires a piecewise-linear hidden activation");
                masks.push(mask);
                h = self.hidden_act.apply(g, pre);
            }
        }
        (h, MlpMasks { masks })
    }

    /// All parameter ids in layer order.
    pub fn params(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

/// A single-layer LSTM cell.
///
/// Gates are computed jointly: `[i f g o] = [x h] W + b`, then
/// `c' = sigmoid(f) * c + sigmoid(i) * tanh(g)` and `h' = sigmoid(o) * tanh(c')`.
/// The forget-gate bias is initialized to 1, a standard trick that eases
/// learning of long-range dependencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    /// Joint gate weight (`(in_dim + hidden) x 4*hidden`).
    pub w: ParamId,
    /// Joint gate bias (`1 x 4*hidden`).
    pub b: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden: usize,
}

/// Recurrent state `(h, c)` carried between LSTM steps.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden output.
    pub h: Var,
    /// Cell memory.
    pub c: Var,
}

impl LstmCell {
    /// Registers an LSTM cell with Xavier-uniform weights and forget-bias 1.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_dim + hidden;
        let bound = (6.0 / (fan_in + 4 * hidden) as f32).sqrt();
        let w = store.add(format!("{name}.w"), Tensor::rand_uniform(fan_in, 4 * hidden, -bound, bound, rng));
        let mut bias = Tensor::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            bias.set(0, j, 1.0); // forget gate
        }
        let b = store.add(format!("{name}.b"), bias);
        LstmCell { w, b, in_dim, hidden }
    }

    /// Creates the all-zero initial state for a batch of `batch` sequences.
    pub fn zero_state(&self, g: &mut Graph, batch: usize) -> LstmState {
        LstmState { h: g.constant_zeros(batch, self.hidden), c: g.constant_zeros(batch, self.hidden) }
    }

    /// Records one recurrence step, returning the next state.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: Var, state: LstmState) -> LstmState {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        self.step_with(g, w, b, x, state)
    }

    /// Records one recurrence step with frozen parameters (inference). The
    /// weights keep their [`ParamId`] binding ([`Graph::frozen_param`]) so
    /// the bf16 tier — and the f32 panel cache inside recorded generation
    /// plans — packs the gate matrix once per workspace, not once per
    /// timestep.
    pub fn step_frozen(&self, g: &mut Graph, store: &ParamStore, x: Var, state: LstmState) -> LstmState {
        let w = g.frozen_param(store, self.w);
        let b = g.frozen_param(store, self.b);
        self.step_with(g, w, b, x, state)
    }

    fn step_with(&self, g: &mut Graph, w: Var, b: Var, x: Var, state: LstmState) -> LstmState {
        // Fused [x, h] * W: one panel multiply for all four gates, no
        // materialized concatenation (bitwise identical to concat + matmul).
        let gates = g.concat_matmul(&[x, state.h], w);
        let gates = g.add_row(gates, b);
        let h = self.hidden;
        let i_g = g.slice_cols(gates, 0, h);
        let f_g = g.slice_cols(gates, h, 2 * h);
        let g_g = g.slice_cols(gates, 2 * h, 3 * h);
        let o_g = g.slice_cols(gates, 3 * h, 4 * h);
        let i_s = g.sigmoid(i_g);
        let f_s = g.sigmoid(f_g);
        let g_t = g.tanh(g_g);
        let o_s = g.sigmoid(o_g);
        let fc = g.mul(f_s, state.c);
        let ig = g.mul(i_s, g_t);
        let c_new = g.add(fc, ig);
        let c_tanh = g.tanh(c_new);
        let h_new = g.mul(o_s, c_tanh);
        LstmState { h: h_new, c: c_new }
    }

    /// The parameter ids owned by this cell.
    pub fn params(&self) -> Vec<ParamId> {
        vec![self.w, self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        assert_eq!(store.get(lin.w).shape(), (3, 2));
        assert_eq!(store.get(lin.b).shape(), (1, 2));
        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(5, 3));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (5, 2));
        // With zero input the output equals the (zero) bias.
        assert_eq!(g.value(y).as_slice(), &[0.0; 10]);
    }

    #[test]
    fn mlp_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp =
            Mlp::new(&mut store, "m", 4, 8, 2, 3, Activation::LeakyRelu(0.2), Activation::Softmax, &mut rng);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 3);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(7, 4, 1.0, &mut rng));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (7, 3));
        // softmax rows sum to one
        for r in 0..7 {
            let s: f32 = g.value(y).row_slice(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mlp_trains_on_xor() {
        // Small end-to-end sanity check: the MLP + Adam can fit XOR.
        use crate::optim::Adam;
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "xor", 2, 8, 1, 2, Activation::Tanh, Activation::Linear, &mut rng);
        let x = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let t = Tensor::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let logits = mlp.forward(&mut g, &store, xv);
            let loss = g.softmax_cross_entropy(logits, t.clone());
            last = g.value(loss).get(0, 0);
            g.backward(loss);
            let grads = g.param_grads();
            opt.step(&mut store, &grads);
        }
        assert!(last < 0.1, "XOR loss should converge, got {last}");
    }

    #[test]
    fn forward_with_masks_matches_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let mlp =
            Mlp::new(&mut store, "d", 3, 6, 2, 1, Activation::LeakyRelu(0.1), Activation::Linear, &mut rng);
        let x = Tensor::randn(5, 3, 1.0, &mut rng);
        let mut g1 = Graph::new();
        let xv = g1.constant(x.clone());
        let y1 = mlp.forward(&mut g1, &store, xv);
        let mut g2 = Graph::new();
        let xv = g2.constant(x);
        let (y2, masks) = mlp.forward_with_masks(&mut g2, &store, xv);
        assert_eq!(g1.value(y1), g2.value(y2));
        assert_eq!(masks.masks.len(), 2);
        for m in &masks.masks {
            assert!(m.as_slice().iter().all(|&v| v == 1.0 || (v - 0.1).abs() < 1e-6));
        }
    }

    #[test]
    fn lstm_step_shapes_and_state_flow() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 3, 4, &mut rng);
        let mut g = Graph::new();
        let st0 = cell.zero_state(&mut g, 2);
        let x = g.constant(Tensor::randn(2, 3, 1.0, &mut rng));
        let st1 = cell.step(&mut g, &store, x, st0);
        assert_eq!(g.value(st1.h).shape(), (2, 4));
        assert_eq!(g.value(st1.c).shape(), (2, 4));
        // h is bounded by tanh * sigmoid in (-1, 1)
        assert!(g.value(st1.h).as_slice().iter().all(|v| v.abs() < 1.0));
        // State changes when input is nonzero.
        let x2 = g.constant(Tensor::randn(2, 3, 1.0, &mut rng));
        let st2 = cell.step(&mut g, &store, x2, st1);
        assert_ne!(g.value(st1.h), g.value(st2.h));
    }

    #[test]
    fn lstm_can_memorize_a_sequence() {
        // Teach the LSTM to output the *previous* input (one-step memory).
        use crate::optim::Adam;
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "mem", 1, 16, &mut rng);
        let head = Linear::new(&mut store, "head", 16, 1, &mut rng);
        let seq: Vec<f32> = vec![0.8, -0.5, 0.3, -0.9, 0.1, 0.7, -0.2, 0.4];
        let mut opt = Adam::new(0.02);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new();
            let mut state = cell.zero_state(&mut g, 1);
            let mut loss_terms = Vec::new();
            for w in seq.windows(2) {
                let x = g.constant(Tensor::from_vec(1, 1, vec![w[0]]));
                state = cell.step(&mut g, &store, x, state);
                let pred = head.forward(&mut g, &store, state.h);
                let target = g.constant(Tensor::from_vec(1, 1, vec![w[1]]));
                let diff = g.sub(pred, target);
                let sq = g.square(diff);
                loss_terms.push(g.sum_all(sq));
            }
            let mut total = loss_terms[0];
            for &t in &loss_terms[1..] {
                total = g.add(total, t);
            }
            let loss = g.scale(total, 1.0 / loss_terms.len() as f32);
            last = g.value(loss).get(0, 0);
            g.backward(loss);
            opt.step(&mut store, &g.param_grads());
        }
        assert!(last < 0.05, "LSTM should fit a short sequence, got {last}");
    }
}
