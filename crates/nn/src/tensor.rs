//! Dense, row-major, two-dimensional `f32` tensors.
//!
//! Everything in this workspace operates on batches of vectors, so a 2-D
//! tensor (`rows` = batch, `cols` = feature dimension) is sufficient: time
//! series are handled as *sequences* of 2-D tensors (one per unrolled step)
//! or as flattened `[batch, T * K]` matrices.

use crate::kernels::{self, KernelKind};
use crate::parallel::{self, PARALLEL_ELEMS};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

/// Work threshold (in multiply-accumulates) above which the matmul kernels
/// split the output rows across threads.
///
/// Recalibrated for the persistent worker pool (PR 6): dispatch no longer
/// pays a ~10-30us scoped spawn/join per worker, only a mailbox wake
/// (`wake_overhead_us` in `BENCH_kernels.json`, roughly an order of
/// magnitude cheaper), so going parallel starts paying off at ~2M MACs
/// instead of the old 4M. See DESIGN.md §9/§13 and the `thread_sweep`
/// table in `BENCH_kernels.json` for the measurements backing this value.
pub const PARALLEL_MACS: usize = 1 << 21;

/// Marginal work each additional worker must bring once a matmul is
/// parallel at all. At the tiled tiers' ~20-50 GF/s per core, 1M MACs is
/// ~40-100us of kernel work per worker — comfortably above the pooled wake
/// fee — so the worker count ramps linearly with problem size instead of
/// jumping straight to the full width at the [`PARALLEL_MACS`] cliff
/// (which made barely-over-threshold shapes regress).
pub const MACS_PER_WORKER: usize = 1 << 20;

/// Picks the worker count for a matmul-shaped workload: serial below
/// [`PARALLEL_MACS`], then one worker per [`MACS_PER_WORKER`] of work,
/// capped at the process-wide width. The ramp only decides how many row
/// chunks the pool wakes — results are bitwise identical at every width.
pub(crate) fn matmul_threads(macs: usize) -> usize {
    if macs < PARALLEL_MACS {
        1
    } else {
        (macs / MACS_PER_WORKER).max(2).min(parallel::num_threads())
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a tensor from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape {rows}x{cols} does not match data length {}", data.len());
        Tensor { rows, cols, data }
    }

    /// Builds a 1 x n row-vector tensor.
    pub fn row(data: Vec<f32>) -> Self {
        Tensor { rows: 1, cols: data.len(), data }
    }

    /// Builds an n x 1 column-vector tensor.
    pub fn col(data: Vec<f32>) -> Self {
        Tensor { rows: data.len(), cols: 1, data }
    }

    /// Samples every entry i.i.d. from `N(0, std^2)`.
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Self {
        let normal = Normal::new(0.0_f32, std.max(f32::MIN_POSITIVE)).expect("std must be finite");
        let data = (0..rows * cols).map(|_| normal.sample(rng)).collect();
        Tensor { rows, cols, data }
    }

    /// Overwrites every entry with an i.i.d. sample from `N(0, std^2)`,
    /// consuming the RNG in the same element order as [`Tensor::randn`] (the
    /// two are bitwise interchangeable given equal RNG state).
    pub fn fill_randn<R: Rng + ?Sized>(&mut self, std: f32, rng: &mut R) {
        let normal = Normal::new(0.0_f32, std.max(f32::MIN_POSITIVE)).expect("std must be finite");
        for x in &mut self.data {
            *x = normal.sample(rng);
        }
    }

    /// Samples every entry i.i.d. from `Uniform(lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Applies `f` to every element, returning a new tensor.
    ///
    /// Large tensors are processed by several threads; each element is
    /// mapped independently, so the output is bitwise identical to a serial
    /// run.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let threads = if self.data.len() >= PARALLEL_ELEMS { parallel::num_threads() } else { 1 };
        let mut out = Tensor::zeros(self.rows, self.cols);
        self.map_into(&mut out, threads, f);
        out
    }

    /// [`Tensor::map`] into caller-provided storage with an explicit worker
    /// count. Same kernel as `map`, hence bitwise identical output.
    ///
    /// # Panics
    /// Panics if `out` has a different shape.
    pub fn map_into(&self, out: &mut Tensor, threads: usize, f: impl Fn(f32) -> f32 + Sync) {
        assert_eq!(self.shape(), out.shape(), "map_into requires matching shapes");
        let src = &self.data;
        parallel::run_row_chunks(&mut out.data, 1, threads, |e0, chunk| {
            let end = e0 + chunk.len();
            for (o, &x) in chunk.iter_mut().zip(&src[e0..end]) {
                *o = f(x);
            }
        });
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// Large tensors are processed by several threads; each element is
    /// combined independently, so the output is bitwise identical to a
    /// serial run.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        let threads = if self.data.len() >= PARALLEL_ELEMS { parallel::num_threads() } else { 1 };
        let mut out = Tensor::zeros(self.rows, self.cols);
        self.zip_into(other, &mut out, threads, f);
        out
    }

    /// [`Tensor::zip`] into caller-provided storage with an explicit worker
    /// count. Same kernel as `zip`, hence bitwise identical output.
    ///
    /// # Panics
    /// Panics if the three shapes differ.
    pub fn zip_into(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        threads: usize,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) {
        assert_eq!(self.shape(), other.shape(), "zip requires matching shapes");
        assert_eq!(self.shape(), out.shape(), "zip_into requires a matching output shape");
        let (sa, sb) = (&self.data, &other.data);
        parallel::run_row_chunks(&mut out.data, 1, threads, |e0, chunk| {
            let end = e0 + chunk.len();
            for ((o, &a), &b) in chunk.iter_mut().zip(&sa[e0..end]).zip(&sb[e0..end]) {
                *o = f(a, b);
            }
        });
    }

    /// Overwrites `self` with the contents of a same-shaped tensor.
    pub fn copy_from(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "copy_from requires matching shapes");
        self.data.copy_from_slice(&other.data);
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign requires matching shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other` elementwise (fused AXPY).
    pub fn add_scaled_assign(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign requires matching shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Dense matrix product `self * other`.
    ///
    /// Runs through the register-tiled microkernels of [`crate::kernels`]
    /// (dispatch tier chosen once per process, see `DG_KERNEL`) and splits
    /// output rows across OS threads when the total work exceeds
    /// `PARALLEL_MACS`. Bitwise identical for every tier and thread count.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_threaded(other, matmul_threads(self.rows * self.cols * other.cols))
    }

    /// [`Tensor::matmul`] with an explicit worker count (`1` = serial
    /// reference). The result is bitwise identical for every `threads`
    /// value; exposed for determinism tests and benchmarks.
    pub fn matmul_threaded(&self, other: &Tensor, threads: usize) -> Tensor {
        self.matmul_with_kind(other, threads, kernels::active())
    }

    /// [`Tensor::matmul`] with an explicit worker count *and* dispatch tier.
    /// Bitwise identical across all `(threads, kind)` pairs; exposed for the
    /// cross-kernel equivalence suite and per-tier benchmarks.
    pub fn matmul_with_kind(&self, other: &Tensor, threads: usize, kind: KernelKind) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into_with_kind(other, &mut out, threads, kind);
        out
    }

    /// [`Tensor::matmul`] into caller-provided storage with an explicit
    /// worker count. Every output element is **overwritten** — `out` may
    /// hold arbitrary stale contents (no zero-fill precondition). Same
    /// kernels as `matmul`, hence bitwise identical output.
    ///
    /// # Panics
    /// Panics on an inner-dimension or output-shape mismatch.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor, threads: usize) {
        self.matmul_into_with_kind(other, out, threads, kernels::active());
    }

    /// [`Tensor::matmul_into`] with an explicit dispatch tier.
    pub fn matmul_into_with_kind(&self, other: &Tensor, out: &mut Tensor, threads: usize, kind: KernelKind) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n) = (self.cols, other.cols);
        assert_eq!(out.shape(), (self.rows, n), "matmul_into output shape mismatch");
        kernels::gemm_nn(kind, &self.data, &other.data, &mut out.data, k, n, threads, false);
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// For two or more output rows the kernel streams a packed `Bᵀ` panel
    /// (see [`crate::kernels::pack_bt`]); single-row products use the
    /// pack-free dot kernel. Both paths run the identical per-element
    /// ascending-`k` chain, so the result is bitwise identical to the serial
    /// kernel for every thread count and dispatch tier.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        self.matmul_bt_threaded(other, matmul_threads(self.rows * self.cols * other.rows))
    }

    /// [`Tensor::matmul_bt`] with an explicit worker count (`1` = serial
    /// reference). Bitwise identical for every `threads` value.
    pub fn matmul_bt_threaded(&self, other: &Tensor, threads: usize) -> Tensor {
        self.matmul_bt_with_kind(other, threads, kernels::active())
    }

    /// [`Tensor::matmul_bt`] with an explicit worker count and dispatch
    /// tier (see [`Tensor::matmul_with_kind`]).
    pub fn matmul_bt_with_kind(&self, other: &Tensor, threads: usize, kind: KernelKind) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_bt_into_with_kind(other, &mut out, threads, kind);
        out
    }

    /// [`Tensor::matmul_bt`] into caller-provided storage with an explicit
    /// worker count (every output element is overwritten; no zero-fill
    /// precondition). Allocates a transient `Bᵀ` panel when one pays off —
    /// callers with a pooled panel should use
    /// [`Tensor::matmul_bt_into_with_panel`].
    ///
    /// # Panics
    /// Panics on a dimension or output-shape mismatch.
    pub fn matmul_bt_into(&self, other: &Tensor, out: &mut Tensor, threads: usize) {
        self.matmul_bt_into_with_kind(other, out, threads, kernels::active());
    }

    /// [`Tensor::matmul_bt_into`] with an explicit dispatch tier.
    pub fn matmul_bt_into_with_kind(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
    ) {
        let (k, n) = (self.cols, other.rows);
        if self.rows >= kernels::PACK_MIN_ROWS && k * n > 0 {
            let mut panel = Tensor::zeros(k, n);
            self.bt_impl(other, out, threads, kind, Some(&mut panel));
        } else {
            self.bt_impl(other, out, threads, kind, None);
        }
    }

    /// [`Tensor::matmul_bt_into`] drawing the packed `Bᵀ` panel from
    /// caller-provided storage of shape `(self.cols, other.rows)` — the
    /// graph executor passes a pooled buffer here so steady-state training
    /// steps never allocate. The panel contents are ignored on entry and
    /// unspecified on exit.
    ///
    /// # Panics
    /// Panics on a dimension, output-shape, or panel-shape mismatch.
    pub fn matmul_bt_into_with_panel(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        threads: usize,
        panel: &mut Tensor,
    ) {
        assert_eq!(panel.shape(), (self.cols, other.rows), "matmul_bt panel shape mismatch");
        let use_panel = self.rows >= kernels::PACK_MIN_ROWS && self.cols * other.rows > 0;
        self.bt_impl(other, out, threads, kernels::active(), use_panel.then_some(panel));
    }

    /// [`Tensor::matmul_bt_into`] against a `Bᵀ` panel that was already
    /// packed with [`crate::kernels::pack_bt`] (shape `(self.cols, b_rows)`
    /// flattened) — the frozen-weight replay path, where the workspace
    /// caches the packed panel per [`crate::params::ParamId`] so the pack
    /// is paid once per plan life. Callers must take the packed path under
    /// the same `rows >= PACK_MIN_ROWS` condition the fresh-pack entry
    /// points use; the multiply itself is bitwise identical to
    /// [`Tensor::matmul_bt_into_with_panel`].
    ///
    /// # Panics
    /// Panics on a panel-length or output-shape mismatch.
    pub fn matmul_bt_into_f32_packed(
        &self,
        panel: &[f32],
        b_rows: usize,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
    ) {
        let (k, n) = (self.cols, b_rows);
        assert_eq!(panel.len(), k * n, "matmul_bt_into_f32_packed panel length mismatch");
        assert_eq!(out.shape(), (self.rows, n), "matmul_bt_into_f32_packed output shape mismatch");
        kernels::gemm_nt_prepacked(kind, &self.data, panel, &mut out.data, k, n, threads);
    }

    fn bt_impl(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
        panel: Option<&mut Tensor>,
    ) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n) = (self.cols, other.rows);
        assert_eq!(out.shape(), (self.rows, n), "matmul_bt_into output shape mismatch");
        match panel {
            Some(panel) => kernels::gemm_nt_packed(
                kind,
                &self.data,
                &other.data,
                &mut out.data,
                k,
                n,
                threads,
                &mut panel.data,
            ),
            None => kernels::gemm_nt_dot(&self.data, &other.data, &mut out.data, k, n, threads),
        }
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// The microkernel reads `self` through a strided view (walking one
    /// column per output row); each output element accumulates in ascending
    /// input-row order — the same chain as the serial kernel — so the result
    /// is bitwise identical for every thread count and dispatch tier.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        self.matmul_at_threaded(other, matmul_threads(self.rows * self.cols * other.cols))
    }

    /// [`Tensor::matmul_at`] with an explicit worker count (`1` = serial
    /// reference). Bitwise identical for every `threads` value.
    pub fn matmul_at_threaded(&self, other: &Tensor, threads: usize) -> Tensor {
        self.matmul_at_with_kind(other, threads, kernels::active())
    }

    /// [`Tensor::matmul_at`] with an explicit worker count and dispatch
    /// tier (see [`Tensor::matmul_with_kind`]).
    pub fn matmul_at_with_kind(&self, other: &Tensor, threads: usize, kind: KernelKind) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.matmul_at_into_with_kind(other, &mut out, threads, kind);
        out
    }

    /// [`Tensor::matmul_at`] into caller-provided storage with an explicit
    /// worker count. Every output element is **overwritten** (no zero-fill
    /// precondition). Same kernels as `matmul_at`, hence bitwise identical
    /// output.
    ///
    /// # Panics
    /// Panics on a dimension or output-shape mismatch.
    pub fn matmul_at_into(&self, other: &Tensor, out: &mut Tensor, threads: usize) {
        self.matmul_at_into_with_kind(other, out, threads, kernels::active());
    }

    /// [`Tensor::matmul_at_into`] with an explicit dispatch tier.
    pub fn matmul_at_into_with_kind(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
    ) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at dimension mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        assert_eq!(out.shape(), (m, n), "matmul_at_into output shape mismatch");
        kernels::gemm_tn(kind, &self.data, &other.data, &mut out.data, m, k, n, threads, false);
    }

    /// [`Tensor::matmul_into`] through the bf16 inference family: both
    /// operands are rounded to bf16 and accumulated in f32 (see the kernels
    /// module docs, "The bf16 inference tier"). `scratch` receives the
    /// packed `u16` B operand — pass the workspace's pooled scratch
    /// ([`crate::workspace::Workspace::take_u16`]) to avoid a per-op
    /// allocation. Deterministic per resolved tier, not bitwise-equal to the
    /// f32 family.
    ///
    /// # Panics
    /// Panics on an inner-dimension or output-shape mismatch.
    pub fn matmul_into_bf16(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
        scratch: &mut Vec<u16>,
    ) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n) = (self.cols, other.cols);
        assert_eq!(out.shape(), (self.rows, n), "matmul_into output shape mismatch");
        kernels::pack_bf16(&other.data, scratch);
        kernels::gemm_nn_bf16(kind, &self.data, scratch, &mut out.data, k, n, threads, false);
    }

    /// [`Tensor::matmul_into_bf16`] with `B` already packed to `u16`
    /// (`[k, n]` row-major, [`kernels::pack_bf16`]) — the cached-weight path:
    /// inference re-multiplies the same parameters every timestep, so the
    /// workspace packs each one once and replays the panel here.
    ///
    /// # Panics
    /// Panics on an inner-dimension, panel-size or output-shape mismatch.
    pub fn matmul_into_bf16_packed(
        &self,
        packed: &[u16],
        n: usize,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
    ) {
        let k = self.cols;
        assert!(packed.len() >= k * n, "matmul bf16 panel too small: {} < {k}x{n}", packed.len());
        assert_eq!(out.shape(), (self.rows, n), "matmul_into output shape mismatch");
        kernels::gemm_nn_bf16(kind, &self.data, packed, &mut out.data, k, n, threads, false);
    }

    /// [`Tensor::matmul_bt_into`] through the bf16 inference family. The
    /// `u16` panel doubles as the rounding pass ([`kernels::pack_bt_bf16`]),
    /// so the bf16 path always packs — there is no dot-path split.
    ///
    /// # Panics
    /// Panics on a dimension or output-shape mismatch.
    pub fn matmul_bt_into_bf16(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
        panel: &mut Vec<u16>,
    ) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n) = (self.cols, other.rows);
        assert_eq!(out.shape(), (self.rows, n), "matmul_bt_into output shape mismatch");
        kernels::gemm_nt_bf16(kind, &self.data, &other.data, &mut out.data, k, n, threads, panel);
    }

    /// [`Tensor::matmul_bt_into_bf16`] with the `Bᵀ` panel already packed
    /// (`B[n, k]` stored as its `[k, n]` transpose,
    /// [`kernels::pack_bt_bf16`]) — the cached-weight path (see
    /// [`Tensor::matmul_into_bf16_packed`]).
    ///
    /// # Panics
    /// Panics on an inner-dimension, panel-size or output-shape mismatch.
    pub fn matmul_bt_into_bf16_packed(
        &self,
        packed: &[u16],
        n: usize,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
    ) {
        let k = self.cols;
        assert!(packed.len() >= k * n, "matmul_bt bf16 panel too small: {} < {k}x{n}", packed.len());
        assert_eq!(out.shape(), (self.rows, n), "matmul_bt_into output shape mismatch");
        kernels::gemm_nt_bf16_packed(kind, &self.data, packed, &mut out.data, k, n, threads);
    }

    /// [`Tensor::matmul_at_into`] through the bf16 inference family (see
    /// [`Tensor::matmul_into_bf16`] for the scratch contract).
    ///
    /// # Panics
    /// Panics on a dimension or output-shape mismatch.
    pub fn matmul_at_into_bf16(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        threads: usize,
        kind: KernelKind,
        scratch: &mut Vec<u16>,
    ) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at dimension mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        assert_eq!(out.shape(), (m, n), "matmul_at_into output shape mismatch");
        kernels::pack_bf16(&other.data, scratch);
        kernels::gemm_tn_bf16(kind, &self.data, scratch, &mut out.data, m, k, n, threads, false);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Per-row sums as an `rows x 1` column.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Tensor::sum_rows`] into caller-provided `rows x 1` storage (every
    /// element is overwritten).
    pub fn sum_rows_into(&self, out: &mut Tensor) {
        assert_eq!(out.shape(), (self.rows, 1), "sum_rows_into output shape mismatch");
        for r in 0..self.rows {
            out.data[r] = self.row_slice(r).iter().sum();
        }
    }

    /// Per-column sums as a `1 x cols` row.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        self.sum_cols_into(&mut out);
        out
    }

    /// [`Tensor::sum_cols`] into caller-provided **zero-filled** `1 x cols`
    /// storage (sums accumulate in ascending row order, as in `sum_cols`).
    pub fn sum_cols_into(&self, out: &mut Tensor) {
        assert_eq!(out.shape(), (1, self.cols), "sum_cols_into output shape mismatch");
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row_slice(r)) {
                *o += v;
            }
        }
    }

    /// Horizontally concatenates tensors with equal row counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols needs at least one tensor");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        Tensor::concat_cols_into(parts, &mut out);
        out
    }

    /// [`Tensor::concat_cols`] into caller-provided storage (every element
    /// is overwritten).
    pub fn concat_cols_into(parts: &[&Tensor], out: &mut Tensor) {
        assert!(!parts.is_empty(), "concat_cols needs at least one tensor");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "concat_cols requires equal row counts");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        assert_eq!(out.shape(), (rows, cols), "concat_cols_into output shape mismatch");
        for r in 0..rows {
            let orow = out.row_slice_mut(r);
            let mut off = 0;
            for p in parts {
                orow[off..off + p.cols].copy_from_slice(p.row_slice(r));
                off += p.cols;
            }
        }
    }

    /// Vertically concatenates tensors with equal column counts.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows needs at least one tensor");
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "concat_rows requires equal column counts");
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { rows, cols, data }
    }

    /// Copies columns `[start, end)` into a new tensor.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        let mut out = Tensor::zeros(self.rows, end.saturating_sub(start));
        self.slice_cols_into(start, end, &mut out);
        out
    }

    /// [`Tensor::slice_cols`] into caller-provided storage (every element is
    /// overwritten).
    pub fn slice_cols_into(&self, start: usize, end: usize, out: &mut Tensor) {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        assert_eq!(out.shape(), (self.rows, end - start), "slice_cols_into output shape mismatch");
        for r in 0..self.rows {
            out.row_slice_mut(r).copy_from_slice(&self.row_slice(r)[start..end]);
        }
    }

    /// Copies rows `[start, end)` into a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.rows, "slice_rows out of range");
        Tensor {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows into a new tensor (rows may repeat).
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(idx.len(), self.cols);
        for (o, &i) in idx.iter().enumerate() {
            assert!(i < self.rows, "gather_rows index {i} out of range {}", self.rows);
            out.row_slice_mut(o).copy_from_slice(self.row_slice(i));
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Largest element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn constructors_have_expected_shapes_and_values() {
        assert_eq!(Tensor::zeros(2, 3).as_slice(), &[0.0; 6]);
        assert_eq!(Tensor::ones(1, 4).as_slice(), &[1.0; 4]);
        assert_eq!(Tensor::full(2, 2, 7.5).as_slice(), &[7.5; 4]);
        assert_eq!(Tensor::row(vec![1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Tensor::col(vec![1.0, 2.0, 3.0]).shape(), (3, 1));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = Tensor::zeros(3, 4);
        a.set(2, 3, 42.0);
        a.set(0, 1, -1.0);
        assert_eq!(a.get(2, 3), 42.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(5, 5, 1.0, &mut rng);
        let mut eye = Tensor::zeros(5, 5);
        for i in 0..5 {
            eye.set(i, i, 1.0);
        }
        let c = a.matmul(&eye);
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(64, 200, 1.0, &mut rng);
        let b = Tensor::randn(200, 128, 1.0, &mut rng);
        // Serial reference computed through the scalar tier directly.
        let refv = a.matmul_with_kind(&b, 1, KernelKind::Scalar);
        let c = a.matmul(&b);
        for (x, y) in c.as_slice().iter().zip(refv.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_into_overwrites_stale_output() {
        // The into-variants carry no zero-fill precondition: hand them a
        // poisoned buffer and the result must equal a fresh computation.
        let mut rng = StdRng::seed_from_u64(21);
        let a = Tensor::randn(7, 9, 1.0, &mut rng);
        let b = Tensor::randn(9, 5, 1.0, &mut rng);
        let bt = Tensor::randn(5, 9, 1.0, &mut rng);
        let at = Tensor::randn(7, 5, 1.0, &mut rng);

        let mut out = Tensor::full(7, 5, f32::NAN);
        a.matmul_into(&b, &mut out, 2);
        assert_eq!(out.as_slice(), a.matmul(&b).as_slice());

        let mut out = Tensor::full(7, 5, f32::NAN);
        a.matmul_bt_into(&bt, &mut out, 2);
        assert_eq!(out.as_slice(), a.matmul_bt(&bt).as_slice());

        let mut out = Tensor::full(9, 5, f32::NAN);
        a.matmul_at_into(&at, &mut out, 2);
        assert_eq!(out.as_slice(), a.matmul_at(&at).as_slice());
    }

    #[test]
    fn pooled_panel_matches_transient_panel() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = Tensor::randn(6, 11, 1.0, &mut rng);
        let b = Tensor::randn(4, 11, 1.0, &mut rng);
        let want = a.matmul_bt(&b);
        let mut panel = Tensor::full(11, 4, f32::NAN); // contents must not matter
        let mut out = Tensor::full(6, 4, f32::NAN);
        a.matmul_bt_into_with_panel(&b, &mut out, 3, &mut panel);
        assert_eq!(out.as_slice(), want.as_slice());
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn(4, 6, 1.0, &mut rng);
        let b = Tensor::randn(5, 6, 1.0, &mut rng);
        let fast = a.matmul_bt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Tensor::randn(6, 4, 1.0, &mut rng);
        let b = Tensor::randn(6, 5, 1.0, &mut rng);
        let fast = a.matmul_at(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = t(1, 3, &[1.0, 2.0, 3.0]);
        let b = t(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.sum_rows().as_slice(), &[6.0, 15.0]);
        assert_eq!(a.sum_cols().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.max(), 6.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn concat_and_slice_are_inverses() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t(2, 1, &[5.0, 6.0]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.as_slice(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);

        let r = Tensor::concat_rows(&[&a, &a]);
        assert_eq!(r.shape(), (4, 2));
        assert_eq!(r.slice_rows(2, 4), a);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn norms() {
        let a = t(1, 2, &[3.0, 4.0]);
        assert_eq!(a.sq_norm(), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn randn_respects_seed_and_scale() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Tensor::randn(10, 10, 0.5, &mut r1);
        let b = Tensor::randn(10, 10, 0.5, &mut r2);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|x| x.is_finite()));
        // With std 0.5 essentially everything is within +-4 sigma.
        assert!(a.max() < 4.0 && a.min() > -4.0);
    }

    #[test]
    fn add_scaled_assign_is_axpy() {
        let mut a = t(1, 3, &[1.0, 1.0, 1.0]);
        let b = t(1, 3, &[1.0, 2.0, 3.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn matmul_threads_ramps_gradually_instead_of_cliffing() {
        // Pin the process width so the ramp's cap is observable regardless
        // of the host's core count or DG_NUM_THREADS.
        let _guard = crate::parallel::override_test_guard();
        crate::parallel::set_num_threads(8);
        // Below the threshold: serial, even just under it.
        assert_eq!(matmul_threads(0), 1);
        assert_eq!(matmul_threads(PARALLEL_MACS - 1), 1);
        // Just over the threshold: a narrow fan-out, not the full width.
        assert_eq!(matmul_threads(PARALLEL_MACS), 2);
        assert_eq!(matmul_threads(3 * MACS_PER_WORKER), 3);
        // One worker per MACS_PER_WORKER until the cap.
        assert_eq!(matmul_threads(6 * MACS_PER_WORKER), 6);
        assert_eq!(matmul_threads(64 * MACS_PER_WORKER), 8);
        // Width never exceeds the process setting.
        crate::parallel::set_num_threads(3);
        assert_eq!(matmul_threads(64 * MACS_PER_WORKER), 3);
        crate::parallel::set_num_threads(0);
    }
}
