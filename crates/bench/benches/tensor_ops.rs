//! Criterion benches for the dense tensor kernels in `dg-nn`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dg_nn::kernels::KernelKind;
use dg_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for &(m, k, n) in &[(32usize, 64usize, 64usize), (100, 200, 200), (100, 500, 200)] {
        let a = Tensor::randn(m, k, 1.0, &mut rng);
        let b = Tensor::randn(k, n, 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| black_box(a.matmul(b)));
            },
        );
    }
    group.finish();
}

fn bench_matmul_transposed(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::randn(100, 200, 1.0, &mut rng);
    let b = Tensor::randn(150, 200, 1.0, &mut rng);
    c.bench_function("matmul_bt/100x200x150", |bench| bench.iter(|| black_box(a.matmul_bt(&b))));
    let a2 = Tensor::randn(200, 100, 1.0, &mut rng);
    let b2 = Tensor::randn(200, 150, 1.0, &mut rng);
    c.bench_function("matmul_at/100x200x150", |bench| bench.iter(|| black_box(a2.matmul_at(&b2))));
}

fn bench_matmul_threading(c: &mut Criterion) {
    // Serial reference (threads = 1) vs the worker pool, for the forward
    // matmul and both transposed backward kernels. The outputs are bitwise
    // identical by construction; only the wall clock should differ.
    let mut group = c.benchmark_group("matmul_threads");
    let mut rng = StdRng::seed_from_u64(4);
    let threads = dg_nn::parallel::num_threads();
    let a = Tensor::randn(256, 256, 1.0, &mut rng);
    let b = Tensor::randn(256, 256, 1.0, &mut rng);
    for (name, t) in [("serial", 1usize), ("parallel", threads)] {
        group.bench_with_input(BenchmarkId::new("matmul_256", name), &t, |bench, &t| {
            bench.iter(|| black_box(a.matmul_threaded(&b, t)));
        });
        group.bench_with_input(BenchmarkId::new("matmul_bt_256", name), &t, |bench, &t| {
            bench.iter(|| black_box(a.matmul_bt_threaded(&b, t)));
        });
        group.bench_with_input(BenchmarkId::new("matmul_at_256", name), &t, |bench, &t| {
            bench.iter(|| black_box(a.matmul_at_threaded(&b, t)));
        });
    }
    group.finish();
}

fn bench_matmul_kernel_tiers(c: &mut Criterion) {
    // The three dispatch tiers on the canonical cube, single-threaded: the
    // outputs are bitwise identical by construction, so any difference is
    // pure kernel throughput (scalar i-k-j vs register-tiled vs AVX2).
    let mut group = c.benchmark_group("matmul_kernel");
    let mut rng = StdRng::seed_from_u64(5);
    let a = Tensor::randn(256, 256, 1.0, &mut rng);
    let b = Tensor::randn(256, 256, 1.0, &mut rng);
    for kind in [KernelKind::Scalar, KernelKind::Portable, KernelKind::Native] {
        group.bench_with_input(BenchmarkId::new("matmul_256", kind.name()), &kind, |bench, &kind| {
            bench.iter(|| black_box(a.matmul_with_kind(&b, 1, kind)));
        });
        group.bench_with_input(BenchmarkId::new("matmul_bt_256", kind.name()), &kind, |bench, &kind| {
            bench.iter(|| black_box(a.matmul_bt_with_kind(&b, 1, kind)));
        });
        group.bench_with_input(BenchmarkId::new("matmul_at_256", kind.name()), &kind, |bench, &kind| {
            bench.iter(|| black_box(a.matmul_at_with_kind(&b, 1, kind)));
        });
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Tensor::randn(100, 500, 1.0, &mut rng);
    let b = Tensor::randn(100, 500, 1.0, &mut rng);
    c.bench_function("elementwise/add_100x500", |bench| bench.iter(|| black_box(a.add(&b))));
    c.bench_function("elementwise/tanh_map_100x500", |bench| bench.iter(|| black_box(a.map(f32::tanh))));
    c.bench_function("elementwise/sum_rows_100x500", |bench| bench.iter(|| black_box(a.sum_rows())));
}

fn bench_concat_gather(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let parts: Vec<Tensor> = (0..10).map(|_| Tensor::randn(100, 50, 1.0, &mut rng)).collect();
    let refs: Vec<&Tensor> = parts.iter().collect();
    c.bench_function("concat_cols/10x(100x50)", |bench| bench.iter(|| black_box(Tensor::concat_cols(&refs))));
    let big = Tensor::randn(1000, 200, 1.0, &mut rng);
    let idx: Vec<usize> = (0..100).map(|i| (i * 7) % 1000).collect();
    c.bench_function("gather_rows/100_of_1000x200", |bench| bench.iter(|| black_box(big.gather_rows(&idx))));
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_transposed,
    bench_matmul_threading,
    bench_matmul_kernel_tiers,
    bench_elementwise,
    bench_concat_gather
);
criterion_main!(benches);
