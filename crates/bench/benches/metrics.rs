//! Criterion benches for the fidelity metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use dg_bench::presets::{Preset, Scale};
use dg_datasets::wwt;
use dg_metrics::{
    autocorrelation, average_autocorrelation, jsd_counts, nearest_neighbours, spearman, wasserstein1,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_metrics(c: &mut Criterion) {
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(0);
    let data = wwt::generate(&preset.wwt, &mut rng);

    let series: Vec<f64> = (0..550).map(|t| ((t as f64) * 0.9).sin()).collect();
    c.bench_function("metrics/autocorrelation_len550", |b| {
        b.iter(|| black_box(autocorrelation(&series, 548)))
    });
    c.bench_function("metrics/avg_autocorr_wwt_smoke", |b| {
        b.iter(|| black_box(average_autocorrelation(&data, 0, 62, 16)))
    });

    let a: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.317).sin() * 10.0).collect();
    let bb: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.173).cos() * 12.0).collect();
    c.bench_function("metrics/wasserstein1_2000", |b| b.iter(|| black_box(wasserstein1(&a, &bb))));

    let h1: Vec<usize> = (0..50).map(|i| 10 + i * 3).collect();
    let h2: Vec<usize> = (0..50).map(|i| 5 + i * 4).collect();
    c.bench_function("metrics/jsd_50", |b| b.iter(|| black_box(jsd_counts(&h1, &h2))));

    c.bench_function("metrics/spearman_2000", |b| b.iter(|| black_box(spearman(&a, &bb))));

    let gen: Vec<_> = data.objects.iter().take(10).cloned().collect();
    c.bench_function("metrics/nearest_neighbours_10xN", |b| {
        b.iter(|| black_box(nearest_neighbours(&gen, &data, 0, 3)))
    });
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
