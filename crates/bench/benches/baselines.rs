//! Criterion benches for baseline model fitting and sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use dg_baselines::{
    ArConfig, ArModel, GenerativeModel, HmmConfig, HmmModel, NaiveGanConfig, NaiveGanModel, RnnConfig,
    RnnModel,
};
use dg_bench::presets::{Preset, Scale};
use dg_datasets::sine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_baseline_fits(c: &mut Criterion) {
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(0);
    let data = sine::generate(&preset.sine, &mut rng);
    let mut group = c.benchmark_group("baseline_fit");
    group.sample_size(10);
    group.bench_function("hmm_em3", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(1);
            black_box(HmmModel::fit(
                &data,
                HmmConfig { num_states: 4, em_iterations: 3, var_floor: 1e-4 },
                &mut r,
            ))
        })
    });
    group.bench_function("ar_60steps", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            black_box(ArModel::fit(
                &data,
                ArConfig { train_steps: 60, hidden: 24, depth: 2, ..ArConfig::default() },
                &mut r,
            ))
        })
    });
    group.bench_function("rnn_30steps", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(3);
            black_box(RnnModel::fit(
                &data,
                RnnConfig { hidden: 16, train_steps: 30, batch: 16, lr: 1e-3 },
                &mut r,
            ))
        })
    });
    group.bench_function("naive_gan_30steps", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(4);
            let cfg = NaiveGanConfig {
                train_steps: 30,
                gen_hidden: 24,
                gen_depth: 2,
                disc_hidden: 24,
                disc_depth: 2,
                batch: 16,
                ..NaiveGanConfig::default()
            };
            black_box(NaiveGanModel::fit(&data, cfg, &mut r))
        })
    });
    group.finish();
}

fn bench_baseline_generation(c: &mut Criterion) {
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(5);
    let data = sine::generate(&preset.sine, &mut rng);
    let hmm = HmmModel::fit(&data, HmmConfig { num_states: 4, em_iterations: 3, var_floor: 1e-4 }, &mut rng);
    let ar = ArModel::fit(
        &data,
        ArConfig { train_steps: 30, hidden: 24, depth: 2, ..ArConfig::default() },
        &mut rng,
    );
    let mut group = c.benchmark_group("baseline_generate_50");
    group.sample_size(10);
    group.bench_function("hmm", |b| b.iter(|| black_box(hmm.generate_objects(50, &mut rng))));
    group.bench_function("ar", |b| b.iter(|| black_box(ar.generate_objects(50, &mut rng))));
    group.finish();
}

criterion_group!(benches, bench_baseline_fits, bench_baseline_generation);
criterion_main!(benches);
