//! Criterion benches for downstream classifier/regressor fit+predict.

use criterion::{criterion_group, criterion_main, Criterion};
use dg_downstream::{standard_classifiers, standard_regressors};
use std::hint::black_box;

fn blobs(n: usize) -> (Vec<f64>, Vec<usize>) {
    let mut x = Vec::with_capacity(n * 8);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % 3;
        for j in 0..8 {
            x.push((c as f64) * 2.0 + ((i * 31 + j * 7) as f64 * 0.377).sin());
        }
        y.push(c);
    }
    (x, y)
}

fn bench_classifiers(c: &mut Criterion) {
    let (x, y) = blobs(300);
    let mut group = c.benchmark_group("classifier_fit_predict");
    group.sample_size(10);
    for clf_proto in standard_classifiers() {
        let name = clf_proto.name().to_string();
        group.bench_function(&name, |b| {
            b.iter(|| {
                // Recreate a fresh classifier of the same kind each iteration.
                let mut clf =
                    standard_classifiers().into_iter().find(|m| m.name() == name).expect("known classifier");
                clf.fit(&x, &y, 300, 8, 3);
                black_box(clf.predict(&x, 300, 8))
            })
        });
    }
    group.finish();
}

fn bench_regressors(c: &mut Criterion) {
    let n = 200;
    let dim = 16;
    let mut x = Vec::with_capacity(n * dim);
    let mut y = Vec::with_capacity(n * 4);
    for i in 0..n {
        for j in 0..dim {
            x.push(((i * 13 + j * 5) as f64 * 0.21).sin());
        }
        for j in 0..4 {
            y.push(((i + j) as f64 * 0.37).cos());
        }
    }
    let mut group = c.benchmark_group("regressor_fit_predict");
    group.sample_size(10);
    for reg_proto in standard_regressors() {
        let name = reg_proto.name().to_string();
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut reg =
                    standard_regressors().into_iter().find(|m| m.name() == name).expect("known regressor");
                reg.fit(&x, n, dim, &y, 4);
                black_box(reg.predict(&x, n, dim))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classifiers, bench_regressors);
criterion_main!(benches);
