//! Criterion benches for full DoppelGANger training steps on each dataset
//! shape (the cost a user actually pays per iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dg_bench::presets::{Preset, Scale};
use dg_datasets::{gcut, mba, sine, wwt};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_dg_steps(c: &mut Criterion) {
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(0);
    let datasets = vec![
        ("sine", sine::generate(&preset.sine, &mut rng)),
        ("wwt", wwt::generate(&preset.wwt, &mut rng)),
        ("mba", mba::generate(&preset.mba, &mut rng)),
        ("gcut", gcut::generate(&preset.gcut, &mut rng)),
    ];
    let mut group = c.benchmark_group("dg_train_step");
    group.sample_size(10);
    for (name, data) in datasets {
        let cfg = preset.dg_config(data.schema.max_len);
        let model = DoppelGanger::new(&data, cfg, &mut rng);
        let encoded = model.encode(&data);
        let mut trainer = Trainer::new(model);
        let mut srng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |bench, _| {
            bench.iter(|| {
                trainer.fit(&encoded, 1, &mut srng, |_| {});
                black_box(trainer.d_updates)
            });
        });
    }
    group.finish();
}

fn bench_dp_step(c: &mut Criterion) {
    // DP vs non-DP cost, and serial vs parallel DP: the per-sample DP-SGD
    // loop is the threading target, and its parallel variant is bitwise
    // identical to the serial reference (see the determinism suite).
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(2);
    let data = sine::generate(&preset.sine, &mut rng);
    let cfg = preset.dg_config(data.schema.max_len);
    let model = DoppelGanger::new(&data, cfg, &mut rng);
    let encoded = model.encode(&data);
    let idx: Vec<usize> = (0..8).collect();
    let mut group = c.benchmark_group("dg_dp_step");
    group.sample_size(10);

    let mut plain = Trainer::new(model.clone());
    group.bench_function("sine_b8_no_dp", |bench| {
        bench.iter(|| black_box(plain.d_step(&encoded, &idx, &mut rng)));
    });
    let mut serial = Trainer::new(model.clone()).with_dp(DpConfig::moderate());
    group.bench_function("sine_b8_dp_serial", |bench| {
        bench.iter(|| black_box(serial.d_step_dp_threaded(&encoded, &idx, &mut rng, 1)));
    });
    let threads = dg_nn::parallel::num_threads();
    let mut parallel = Trainer::new(model).with_dp(DpConfig::moderate());
    group.bench_function("sine_b8_dp_parallel", |bench| {
        bench.iter(|| black_box(parallel.d_step_dp_threaded(&encoded, &idx, &mut rng, threads)));
    });
    group.finish();
}

criterion_group!(benches, bench_dg_steps, bench_dp_step);
criterion_main!(benches);
