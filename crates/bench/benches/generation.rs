//! Criterion benches for sampling throughput (trained-model inference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dg_bench::presets::{Preset, Scale};
use dg_datasets::{sine, wwt};
use doppelganger::DoppelGanger;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(0);
    let datasets = vec![
        ("sine_len24", sine::generate(&preset.sine, &mut rng)),
        ("wwt_len64", wwt::generate(&preset.wwt, &mut rng)),
    ];
    let mut group = c.benchmark_group("generate_100");
    group.sample_size(10);
    for (name, data) in datasets {
        let cfg = preset.dg_config(data.schema.max_len);
        let model = DoppelGanger::new(&data, cfg, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |bench, model| {
            let sampler = doppelganger::Sampler::new(model.clone());
            let mut grng = StdRng::seed_from_u64(1);
            bench.iter(|| black_box(sampler.generate(100, &mut grng)));
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(2);
    let data = wwt::generate(&preset.wwt, &mut rng);
    let model = DoppelGanger::new(&data, preset.dg_config(data.schema.max_len), &mut rng);
    c.bench_function("encode_wwt_smoke", |bench| bench.iter(|| black_box(model.encode(&data))));
    let enc = model.encode(&data);
    c.bench_function("decode_wwt_smoke", |bench| {
        bench.iter(|| black_box(model.encoder.decode(&enc.attributes, &enc.minmax, &enc.features)))
    });
}

criterion_group!(benches, bench_generation, bench_encode_decode);
criterion_main!(benches);
