//! Criterion benches for autodiff forward+backward passes (MLP, LSTM, and
//! the WGAN-GP double-backprop).

use criterion::{criterion_group, criterion_main, Criterion};
use dg_nn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mlp_fwd_bwd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let mlp =
        Mlp::new(&mut store, "m", 128, 200, 4, 1, Activation::LeakyRelu(0.2), Activation::Linear, &mut rng);
    let x = Tensor::randn(100, 128, 1.0, &mut rng);
    c.bench_function("autodiff/mlp_4x200_fwd_bwd_b100", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let y = mlp.forward(&mut g, &store, xv);
            let loss = g.mean_all(y);
            g.backward(loss);
            black_box(g.param_grads())
        });
    });
}

fn bench_lstm_unroll(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "l", 32, 100, &mut rng);
    let head = Linear::new(&mut store, "h", 100, 16, &mut rng);
    let steps = 50;
    let batch = 32;
    c.bench_function("autodiff/lstm100_unroll50_fwd_bwd_b32", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let mut state = cell.zero_state(&mut g, batch);
            let mut acc = None;
            for _ in 0..steps {
                let x = g.constant(Tensor::zeros(batch, 32));
                state = cell.step(&mut g, &store, x, state);
                let out = head.forward(&mut g, &store, state.h);
                let s = g.sum_all(out);
                acc = Some(match acc {
                    None => s,
                    Some(a) => g.add(a, s),
                });
            }
            let loss = acc.expect("non-empty");
            g.backward(loss);
            black_box(g.param_grads())
        });
    });
}

fn bench_gradient_penalty(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let critic =
        Mlp::new(&mut store, "c", 256, 200, 4, 1, Activation::LeakyRelu(0.2), Activation::Linear, &mut rng);
    let real = Tensor::randn(100, 256, 1.0, &mut rng);
    let fake = Tensor::randn(100, 256, 1.0, &mut rng);
    c.bench_function("autodiff/wgan_gp_double_backprop_b100", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let mut r2 = StdRng::seed_from_u64(3);
            let p = gradient_penalty(&mut g, &store, &critic, &real, &fake, &mut r2);
            g.backward(p);
            black_box(g.param_grads())
        });
    });
}

criterion_group!(benches, bench_mlp_fwd_bwd, bench_lstm_unroll, bench_gradient_penalty);
criterion_main!(benches);
