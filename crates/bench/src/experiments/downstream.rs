//! Downstream-task experiments (§5.1.1): Fig. 11 (end-event prediction),
//! Table 4 + Figs. 28/29 (algorithm-ranking preservation), and Fig. 27
//! (forecasting R²).

use crate::harness::{format_table, ExpResult};
use crate::models::{generate_per_model, train_all, ModelSet};
use crate::presets::Preset;
use dg_data::Dataset;
use dg_datasets::{gcut, wwt};
use dg_downstream::{
    accuracy, classification_task, forecast_task, r2_score, standard_classifiers, standard_regressors,
};
use dg_metrics::spearman;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The evaluation split of Fig. 10: real data halved into train (A) and test
/// (A'); each generative model is trained on A and asked for a synthetic
/// train set B (|A| samples) and synthetic test set B' (|A'| samples).
struct EvalSplit {
    a: Dataset,
    a_test: Dataset,
}

fn gcut_split(preset: &Preset) -> EvalSplit {
    let mut rng = StdRng::seed_from_u64(preset.seed ^ 0x6C);
    let data = gcut::generate(&preset.gcut, &mut rng);
    let (a, a_test) = data.split(0.5, &mut rng);
    EvalSplit { a, a_test }
}

fn wwt_split(preset: &Preset) -> EvalSplit {
    let mut rng = StdRng::seed_from_u64(preset.seed);
    let data = wwt::generate(&preset.wwt, &mut rng);
    let (a, a_test) = data.split(0.5, &mut rng);
    EvalSplit { a, a_test }
}

/// Fig. 11: end-event-type prediction accuracy — classifiers trained on each
/// model's generated data (B), tested on real held-out data (A').
pub fn fig11_prediction(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig11", "GCUT end-event prediction: train on generated, test on real");
    let split = gcut_split(preset);
    let test = classification_task(&split.a_test, 0);
    let models = train_all(&split.a, preset, ModelSet::All);
    let generated = generate_per_model(&models, &split.a.schema, split.a.len(), preset.seed ^ 0x11);

    // Training sources: real A first, then each model's B.
    let mut sources: Vec<(String, Dataset)> = vec![("real".to_string(), split.a.clone())];
    sources.extend(generated.into_iter().map(|(n, d)| (n.to_string(), d)));

    let clf_names: Vec<&str> = standard_classifiers().iter().map(|c| c.name()).collect();
    let mut rows = Vec::new();
    for (source, train_data) in &sources {
        let task = classification_task(train_data, 0);
        let mut row = vec![source.clone()];
        for mut clf in standard_classifiers() {
            let n_train = task.y.len();
            clf.fit(&task.x, &task.y, n_train, task.dim, task.num_classes);
            let pred = clf.predict(&test.x, test.y.len(), test.dim);
            let acc = accuracy(&pred, &test.y);
            row.push(format!("{acc:.3}"));
            r.numbers.push((format!("acc_{}_{}", slug(source), slug(clf.name())), acc));
        }
        rows.push(row);
    }
    let mut header = vec!["train source"];
    header.extend(clf_names.iter().copied());
    for line in format_table(&header, &rows) {
        r.line(line);
    }
    r.blank();
    // Paper headline: DoppelGANger beats the other baselines on the MLP.
    let dg = r.get("acc_doppelganger_mlp").unwrap_or(0.0);
    let best_baseline = ["ar", "rnn", "hmm", "naive_gan"]
        .iter()
        .filter_map(|b| r.get(&format!("acc_{b}_mlp")))
        .fold(f64::NEG_INFINITY, f64::max);
    r.number("dg_mlp_minus_best_baseline", dg - best_baseline);
    r
}

/// Table 4 + Figs. 28/29: Spearman rank correlation of algorithm rankings on
/// generated data vs the real ground-truth ranking.
pub fn tab04_rank_correlation(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("tab04", "rank correlation of prediction algorithms (GCUT & WWT)");

    // ---- GCUT: classification ranking ----
    let split = gcut_split(preset);
    let truth_accs = gcut_accuracies(&split.a, &split.a_test);
    r.line("GCUT ground-truth classifier accuracies (train A, test A'):");
    r.line(format!("  {:?}", pretty(&truth_accs)));
    let models = train_all(&split.a, preset, ModelSet::All);
    let n_b = split.a.len();
    let n_bp = split.a_test.len();
    let mut gcut_rows = Vec::new();
    for m in &models {
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0x22);
        let b = m.generate_dataset(&split.a.schema, n_b, &mut rng);
        let bp = m.generate_dataset(&split.a.schema, n_bp, &mut rng);
        let accs = gcut_accuracies(&b, &bp);
        let rho = spearman(&truth_accs, &accs);
        gcut_rows.push(vec![m.name().to_string(), format!("{rho:.2}"), pretty(&accs)]);
        r.numbers.push((format!("rank_gcut_{}", slug(m.name())), rho));
    }
    for line in format_table(&["model", "Spearman rho", "accuracies (MLP/NB/LR/DT/SVM)"], &gcut_rows) {
        r.line(line);
    }
    r.blank();

    // ---- WWT: forecasting ranking ----
    let wsplit = wwt_split(preset);
    let horizon = (preset.wwt.length / 10).max(2);
    let history = preset.wwt.length - horizon;
    let truth_r2 = wwt_r2s(&wsplit.a, &wsplit.a_test, history, horizon);
    r.line(format!("WWT ground-truth forecasting R2 (history {history}, horizon {horizon}):"));
    r.line(format!("  {:?}", pretty(&truth_r2)));
    let wmodels = train_all(&wsplit.a, preset, ModelSet::All);
    let mut wwt_rows = Vec::new();
    for m in &wmodels {
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0x33);
        let b = m.generate_dataset(&wsplit.a.schema, wsplit.a.len(), &mut rng);
        let bp = m.generate_dataset(&wsplit.a.schema, wsplit.a_test.len(), &mut rng);
        let r2s = wwt_r2s(&b, &bp, history, horizon);
        let rho = spearman(&truth_r2, &r2s);
        wwt_rows.push(vec![m.name().to_string(), format!("{rho:.2}"), pretty(&r2s)]);
        r.numbers.push((format!("rank_wwt_{}", slug(m.name())), rho));
    }
    for line in format_table(&["model", "Spearman rho", "R2 (KR/LinR/MLP1/MLP5)"], &wwt_rows) {
        r.line(line);
    }
    r
}

/// Fig. 27: forecasting R² — regressors trained on each model's generated
/// data, tested on real held-out data.
pub fn fig27_forecast_r2(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig27", "WWT forecasting R2: train on generated, test on real");
    let split = wwt_split(preset);
    let horizon = (preset.wwt.length / 10).max(2);
    let history = preset.wwt.length - horizon;
    let test = forecast_task(&split.a_test, 0, history, horizon);
    let models = train_all(&split.a, preset, ModelSet::All);
    let generated = generate_per_model(&models, &split.a.schema, split.a.len(), preset.seed ^ 0x44);

    let mut sources: Vec<(String, Dataset)> = vec![("real".to_string(), split.a.clone())];
    sources.extend(generated.into_iter().map(|(n, d)| (n.to_string(), d)));

    let reg_names: Vec<&str> = standard_regressors().iter().map(|m| m.name()).collect();
    let mut rows = Vec::new();
    for (source, train_data) in &sources {
        let task = forecast_task(train_data, 0, history, horizon);
        let mut row = vec![source.clone()];
        if task.n == 0 {
            row.extend(std::iter::repeat_n("n/a".to_string(), reg_names.len()));
            rows.push(row);
            continue;
        }
        for mut reg in standard_regressors() {
            reg.fit(&task.x, task.n, task.history, &task.y, task.horizon);
            let pred = reg.predict(&test.x, test.n, test.history);
            let r2 = r2_score(&pred, &test.y).max(-1.0); // clamp for readability
            row.push(format!("{r2:.3}"));
            r.numbers.push((format!("r2_{}_{}", slug(source), slug(reg.name())), r2));
        }
        rows.push(row);
    }
    let mut header = vec!["train source"];
    header.extend(reg_names.iter().copied());
    for line in format_table(&header, &rows) {
        r.line(line);
    }
    r
}

// ---- helpers ---------------------------------------------------------------

/// Accuracies of the five standard classifiers trained on `train`, tested on
/// `test`.
fn gcut_accuracies(train: &Dataset, test: &Dataset) -> Vec<f64> {
    let task = classification_task(train, 0);
    let tt = classification_task(test, 0);
    standard_classifiers()
        .into_iter()
        .map(|mut clf| {
            clf.fit(&task.x, &task.y, task.y.len(), task.dim, task.num_classes);
            let pred = clf.predict(&tt.x, tt.y.len(), tt.dim);
            accuracy(&pred, &tt.y)
        })
        .collect()
}

/// R² of the four standard regressors trained on `train`, tested on `test`.
fn wwt_r2s(train: &Dataset, test: &Dataset, history: usize, horizon: usize) -> Vec<f64> {
    let task = forecast_task(train, 0, history, horizon);
    let tt = forecast_task(test, 0, history, horizon);
    standard_regressors()
        .into_iter()
        .map(|mut reg| {
            if task.n == 0 || tt.n == 0 {
                return f64::NEG_INFINITY;
            }
            reg.fit(&task.x, task.n, task.history, &task.y, task.horizon);
            let pred = reg.predict(&tt.x, tt.n, tt.history);
            r2_score(&pred, &tt.y).max(-5.0)
        })
        .collect()
}

fn slug(name: &str) -> String {
    name.to_lowercase()
        .replace([' ', '-', '(', ')'], "_")
        .replace('.', "")
        .replace("__", "_")
        .trim_matches('_')
        .to_string()
}

fn pretty(xs: &[f64]) -> String {
    let parts: Vec<String> = xs.iter().map(|v| format!("{v:.2}")).collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Scale;

    #[test]
    fn slug_normalizes_names() {
        assert_eq!(slug("Naive GAN"), "naive_gan");
        assert_eq!(slug("MLP (5 layers)"), "mlp_5_layers");
        assert_eq!(slug("LogisticRegr."), "logisticregr");
    }

    #[test]
    fn smoke_fig11_runs_end_to_end() {
        let preset = Preset::new(Scale::Smoke);
        let r = fig11_prediction(&preset);
        assert!(r.get("acc_real_mlp").is_some());
        assert!(r.get("acc_doppelganger_mlp").is_some());
    }
}
