//! Privacy experiments (§5.3.1): membership inference vs training-set size
//! (Figs. 12, 31) and DP-SGD's fidelity cost (Figs. 13, 32).

use crate::harness::{downsample, format_table, sparkline, ExpResult};
use crate::models::train_dg_with;
use crate::presets::Preset;
use dg_datasets::{gcut, wwt};
use dg_metrics::{average_autocorrelation, curve_mse};
use dg_privacy::{membership_attack, noise_for_epsilon};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Figs. 12 / 31: membership-inference success rate vs number of training
/// samples, on WWT and GCUT.
pub fn fig12_membership(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig12", "membership-inference success vs training-set size");
    for (ds_name, data) in [
        ("WWT", {
            let mut rng = StdRng::seed_from_u64(preset.seed);
            wwt::generate(&preset.wwt, &mut rng)
        }),
        ("GCUT", {
            let mut rng = StdRng::seed_from_u64(preset.seed ^ 0x6C);
            gcut::generate(&preset.gcut, &mut rng)
        }),
    ] {
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0x51);
        let (pool, held) = data.split(0.5, &mut rng);
        let max_n = pool.len();
        let sizes: Vec<usize> =
            [max_n / 8, max_n / 4, max_n / 2, max_n].into_iter().filter(|&n| n >= 8).collect();
        r.line(format!("{ds_name}: held-out non-members = {}", held.len()));
        let mut rows = Vec::new();
        for &n in &sizes {
            let train = pool.truncated(n);
            let model =
                train_dg_with(&train, preset, preset.dg_config(data.schema.max_len), preset.dg_iterations);
            let nonmembers = held.truncated(n.min(held.len()));
            let rate = membership_attack(&model, &train, &nonmembers);
            rows.push(vec![n.to_string(), format!("{rate:.3}")]);
            r.numbers.push((format!("attack_{}_{n}", ds_name.to_lowercase()), rate));
        }
        for line in format_table(&["#training samples", "attack success rate"], &rows) {
            r.line(line);
        }
        r.blank();
    }
    r.line("paper's finding: success rate falls toward 0.5 (chance) as training size grows");
    r
}

/// Figs. 13 / 32: autocorrelation fidelity under DP-SGD at the paper's ε
/// grid {0.55, 1.18, 4.77, 1e6, 1e8, +inf}.
pub fn fig13_dp(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig13", "DP-SGD fidelity: WWT autocorrelation vs epsilon");
    let mut rng = StdRng::seed_from_u64(preset.seed);
    let data = wwt::generate(&preset.wwt, &mut rng);
    let max_lag = preset.wwt.length - 2;
    let real_ac = average_autocorrelation(&data, 0, max_lag, 16);
    r.line(format!("  real        {}", sparkline(&downsample(&real_ac, 64))));

    let cfg = preset.dg_config(data.schema.max_len);
    // DP d-steps run per-sample, so trim the iteration budget.
    let dp_iters = (preset.dg_iterations / 3).max(30);
    let q = (cfg.batch_size as f64 / data.len() as f64).min(1.0);
    let delta = 1e-5;

    let mut rows = Vec::new();
    // ε = +inf baseline (no DP), same iteration budget for fairness.
    {
        let model = train_dg_with(&data, preset, cfg.clone(), dp_iters);
        let mut grng = StdRng::seed_from_u64(preset.seed ^ 0x52);
        let gen = Sampler::new(model).generate_dataset(preset.gen_samples, &mut grng);
        let ac = average_autocorrelation(&gen, 0, max_lag, 16);
        let mse = curve_mse(&real_ac[1..], &ac[1..]);
        r.line(format!("  eps=+inf    {}", sparkline(&downsample(&ac, 64))));
        rows.push(vec!["+inf".to_string(), "0 (no noise)".to_string(), format!("{mse:.5}")]);
        r.numbers.push(("mse_eps_inf".to_string(), mse));
    }
    for &eps in &[1e8, 1e6, 4.77, 1.18, 0.55] {
        let sigma = noise_for_epsilon(q, dp_iters, delta, eps).unwrap_or(1000.0);
        let dp = DpConfig { clip_norm: 1.0, noise_multiplier: sigma as f32 };
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0x53 ^ eps.to_bits());
        let model = DoppelGanger::new(&data, cfg.clone(), &mut rng);
        let encoded = model.encode(&data);
        let mut trainer = Trainer::new(model).with_dp(dp);
        trainer.fit(&encoded, dp_iters, &mut rng, |_| {});
        let model = trainer.into_model();
        let mut grng = StdRng::seed_from_u64(preset.seed ^ 0x54);
        let gen = Sampler::new(model).generate_dataset(preset.gen_samples, &mut grng);
        let ac = average_autocorrelation(&gen, 0, max_lag, 16);
        let mse = curve_mse(&real_ac[1..], &ac[1..]);
        r.line(format!("  eps={eps:<8} {}", sparkline(&downsample(&ac, 64))));
        rows.push(vec![format!("{eps}"), format!("{sigma:.3}"), format!("{mse:.5}")]);
        r.numbers.push((format!("mse_eps_{eps}"), mse));
    }
    r.blank();
    for line in format_table(&["epsilon", "noise multiplier sigma", "autocorr MSE"], &rows) {
        r.line(line);
    }
    r.line("paper's finding: moderate privacy budgets destroy temporal correlations");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Scale;

    #[test]
    fn smoke_fig12_produces_rates_in_unit_interval() {
        let preset = Preset::new(Scale::Smoke);
        let r = fig12_membership(&preset);
        for (name, v) in &r.numbers {
            assert!((0.0..=1.0).contains(v), "{name} = {v}");
        }
    }
}
