//! Fidelity experiments (§5.1): Figs. 1, 4, 5, 7, 8, 14–26, 33–35 and
//! Table 3.

use crate::harness::{downsample, format_table, sparkline, ExpResult};
use crate::models::{generate_per_model, train_all, train_dg_with, ModelSet};
use crate::presets::Preset;
use dg_data::Dataset;
use dg_datasets::{gcut, mba, wwt};
use dg_metrics::{
    attribute_histogram, average_autocorrelation, count_modes, curve_mse, jsd_counts, length_histogram,
    nearest_distance_summary, nearest_neighbours, wasserstein1, EmpiricalCdf,
};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimum series length for inclusion in autocorrelation averages.
const AC_MIN_LEN: usize = 16;

fn wwt_data(preset: &Preset) -> Dataset {
    let mut rng = StdRng::seed_from_u64(preset.seed);
    wwt::generate(&preset.wwt, &mut rng)
}

fn gcut_data(preset: &Preset) -> Dataset {
    let mut rng = StdRng::seed_from_u64(preset.seed ^ 0x6C);
    gcut::generate(&preset.gcut, &mut rng)
}

fn mba_data(preset: &Preset) -> Dataset {
    let mut rng = StdRng::seed_from_u64(preset.seed ^ 0x3B);
    mba::generate(&preset.mba, &mut rng)
}

fn ac_of(data: &Dataset, max_lag: usize) -> Vec<f64> {
    average_autocorrelation(data, 0, max_lag, AC_MIN_LEN)
}

/// Fig. 1: average autocorrelation of WWT daily page views, real vs all five
/// models, plus the autocorrelation MSE each model achieves.
pub fn fig01_autocorrelation(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig01", "WWT autocorrelation: DoppelGANger vs baselines");
    let data = wwt_data(preset);
    let max_lag = preset.wwt.length - 2;
    let real_ac = ac_of(&data, max_lag);
    r.line(format!(
        "real data: weekly period {} / long period {} (length {})",
        preset.wwt.short_period, preset.wwt.long_period, preset.wwt.length
    ));
    r.line(format!("  real  {}", sparkline(&downsample(&real_ac, 64))));

    let models = train_all(&data, preset, ModelSet::All);
    let generated = generate_per_model(&models, &data.schema, preset.gen_samples, preset.seed);
    let mut rows = Vec::new();
    let mut best: Option<(&str, f64)> = None;
    for (name, gen) in &generated {
        let ac = ac_of(gen, max_lag);
        let mse = curve_mse(&real_ac[1..], &ac[1..]);
        r.line(format!("  {:<13} {}", name, sparkline(&downsample(&ac, 64))));
        rows.push(vec![name.to_string(), format!("{mse:.5}")]);
        r.numbers.push((format!("mse_{}", slug(name)), mse));
        if best.map(|(_, b)| mse < b).unwrap_or(true) {
            best = Some((name, mse));
        }
    }
    r.blank();
    for line in format_table(&["model", "autocorr MSE"], &rows) {
        r.line(line);
    }
    let (best_name, _) = best.expect("non-empty");
    r.blank();
    r.line(format!("lowest autocorrelation MSE: {best_name}"));
    r.number("dg_wins", f64::from(best_name == "DoppelGANger"));
    r
}

/// Fig. 4: batching parameter `S` vs autocorrelation MSE on WWT.
pub fn fig04_batch_size(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig04", "feature batch size S vs autocorrelation MSE (WWT)");
    let data = wwt_data(preset);
    let max_lag = preset.wwt.length - 2;
    let real_ac = ac_of(&data, max_lag);
    let candidates = [1usize, 2, 5, 10, 25, 50];
    let mut rows = Vec::new();
    for &s in candidates.iter().filter(|&&s| s <= preset.wwt.length) {
        let cfg = preset.dg_config(data.schema.max_len).with_s(s);
        let model = train_dg_with(&data, preset, cfg, preset.dg_iterations);
        let mut rng = StdRng::seed_from_u64(preset.seed ^ s as u64);
        let gen = Sampler::new(model).generate_dataset(preset.gen_samples, &mut rng);
        let mse = curve_mse(&real_ac[1..], &ac_of(&gen, max_lag)[1..]);
        rows.push(vec![s.to_string(), format!("{mse:.5}")]);
        r.numbers.push((format!("mse_s{s}"), mse));
    }
    for line in format_table(&["S", "autocorr MSE"], &rows) {
        r.line(line);
    }
    r.line(format!(
        "(paper recommendation: S ≈ T/50 = {} for T = {})",
        DgConfig::recommended_s(preset.wwt.length),
        preset.wwt.length
    ));
    r
}

/// Fig. 5: auto-normalization ablation — dynamic-range mode collapse.
///
/// Reports the spread of per-sample ranges (max - min of raw page views) in
/// generated data relative to the real spread, with and without the min/max
/// generator. Mode collapse shows up as generated ranges bunching together.
pub fn fig05_autonorm(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig05", "auto-normalization vs dynamic-range mode collapse (WWT)");
    let data = wwt_data(preset);
    let real_ranges = sample_ranges(&data);
    let real_cdf_spread = spread(&real_ranges);
    r.line(format!(
        "real per-sample range: p10 {:.1}, median {:.1}, p90 {:.1}",
        quantile(&real_ranges, 0.1),
        quantile(&real_ranges, 0.5),
        quantile(&real_ranges, 0.9)
    ));
    let mut rows = Vec::new();
    for (label, auto) in [("auto-normalized", true), ("unnormalized", false)] {
        let mut cfg = preset.dg_config(data.schema.max_len);
        if !auto {
            cfg = cfg.without_auto_normalization();
        }
        let model = train_dg_with(&data, preset, cfg, preset.dg_iterations);
        let mut rng = StdRng::seed_from_u64(preset.seed ^ auto as u64);
        let gen = Sampler::new(model).generate_dataset(preset.gen_samples, &mut rng);
        let ranges = sample_ranges(&gen);
        let w1 = wasserstein1(&real_ranges, &ranges);
        let rel_spread = spread(&ranges) / real_cdf_spread.max(1e-9);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", quantile(&ranges, 0.5)),
            format!("{rel_spread:.3}"),
            format!("{w1:.2}"),
        ]);
        r.numbers.push((format!("range_w1_{}", if auto { "auto" } else { "raw" }), w1));
        r.numbers.push((format!("rel_spread_{}", if auto { "auto" } else { "raw" }), rel_spread));
    }
    for line in format_table(&["config", "median range", "spread ratio (1 = real)", "range W1"], &rows) {
        r.line(line);
    }
    r.line("mode collapse = spread ratio near 0 (all samples share one dynamic range)");
    r
}

/// Figs. 7 / 14: GCUT task-duration histograms for all models.
pub fn fig07_duration(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig07", "GCUT task-duration histogram (bimodality capture)");
    let data = gcut_data(preset);
    let max_len = preset.gcut.max_len;
    let real_h = length_histogram(&data, max_len);
    let real_modes = count_modes(&real_h, 0.2);
    r.line(format!("  real         {}  modes={real_modes}", sparkline(&to_f64(&real_h))));
    let models = train_all(&data, preset, ModelSet::All);
    let generated = generate_per_model(&models, &data.schema, preset.gen_samples, preset.seed ^ 0x77);
    let mut rows = Vec::new();
    for (name, gen) in &generated {
        let h = length_histogram(gen, max_len);
        let modes = count_modes(&h, 0.2);
        let w1 = wasserstein1(&lengths_f64(&data), &lengths_f64(gen));
        r.line(format!("  {:<13}{}  modes={modes}", name, sparkline(&to_f64(&h))));
        rows.push(vec![name.to_string(), modes.to_string(), format!("{w1:.2}")]);
        r.numbers.push((format!("modes_{}", slug(name)), modes as f64));
        r.numbers.push((format!("len_w1_{}", slug(name)), w1));
    }
    r.blank();
    for line in format_table(&["model", "modes", "length W1"], &rows) {
        r.line(line);
    }
    r.number("real_modes", real_modes as f64);
    r
}

/// Fig. 8: GCUT end-event-type histograms (category mode collapse probe).
pub fn fig08_end_events(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig08", "GCUT end-event-type histograms");
    let data = gcut_data(preset);
    let real_h = attribute_histogram(&data, 0);
    let models = train_all(&data, preset, ModelSet::GansOnly);
    let generated = generate_per_model(&models, &data.schema, preset.gen_samples, preset.seed ^ 0x88);
    let mut rows = vec![histogram_row("real", &real_h)];
    for (name, gen) in &generated {
        let h = attribute_histogram(gen, 0);
        let jsd = jsd_counts(&real_h, &h);
        let mut row = histogram_row(name, &h);
        row.push(format!("{jsd:.4}"));
        rows[0].resize(6, String::new());
        rows.push(row);
        r.numbers.push((format!("jsd_{}", slug(name)), jsd));
        let missing = h.iter().filter(|&&c| c == 0).count();
        r.numbers.push((format!("missing_categories_{}", slug(name)), missing as f64));
    }
    let mut header = vec!["model"];
    header.extend(gcut::END_EVENTS);
    header.push("JSD vs real");
    for line in format_table(&header, &rows) {
        r.line(line);
    }
    r
}

/// Table 3 + Fig. 9: Wasserstein-1 of total bandwidth per technology (MBA).
pub fn tab03_bandwidth(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("tab03", "MBA total-bandwidth W1 distance (DSL & cable users)");
    let data = mba_data(preset);
    let techs = [("DSL", 0usize), ("Cable", 3usize)];
    let models = train_all(&data, preset, ModelSet::All);
    let generated = generate_per_model(&models, &data.schema, preset.gen_samples, preset.seed ^ 0x99);

    let real_bw: Vec<Vec<f64>> =
        techs.iter().map(|&(_, t)| bandwidths(&data.filter_by_attribute(0, t))).collect();
    let mut rows = Vec::new();
    for (name, gen) in &generated {
        let mut row = vec![name.to_string()];
        for (i, &(tech_name, t)) in techs.iter().enumerate() {
            let g = gen.filter_by_attribute(0, t);
            let w1 = if g.is_empty() { f64::NAN } else { wasserstein1(&real_bw[i], &bandwidths(&g)) };
            row.push(format!("{w1:.2}"));
            r.numbers.push((format!("w1_{}_{}", tech_name.to_lowercase(), slug(name)), w1));
        }
        rows.push(row);
    }
    for line in format_table(&["model", "DSL W1", "Cable W1"], &rows) {
        r.line(line);
    }
    // Fig. 9 companion: CDF sketches.
    r.blank();
    r.line("total-bandwidth CDFs (Fig. 9 companion, 0..60 GB):");
    for (i, &(tech_name, t)) in techs.iter().enumerate() {
        let cdf = EmpiricalCdf::new(&real_bw[i]);
        let curve: Vec<f64> = cdf.curve(0.0, 60.0, 48).into_iter().map(|(_, y)| y).collect();
        r.line(format!("  real/{tech_name:<6} {}", sparkline(&curve)));
        for (name, gen) in &generated {
            let g = gen.filter_by_attribute(0, t);
            if g.is_empty() {
                continue;
            }
            let cdf = EmpiricalCdf::new(&bandwidths(&g));
            let curve: Vec<f64> = cdf.curve(0.0, 60.0, 48).into_iter().map(|(_, y)| y).collect();
            r.line(format!("  {:<4}/{tech_name:<6} {}", short(name), sparkline(&curve)));
        }
    }
    r
}

/// Figs. 15–17: WWT attribute histograms (domain / access / agent), real vs
/// DoppelGANger vs naive GAN.
pub fn fig15_wwt_attrs(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig15", "WWT attribute histograms + JSD (DG vs naive GAN)");
    let data = wwt_data(preset);
    let models = train_all(&data, preset, ModelSet::GansOnly);
    let generated = generate_per_model(&models, &data.schema, preset.gen_samples, preset.seed ^ 0xAA);
    for (ai, attr) in ["Wikipedia domain", "access type", "agent"].iter().enumerate() {
        r.line(format!("attribute: {attr}"));
        let real_h = attribute_histogram(&data, ai);
        r.line(format!("  real          {}", sparkline(&to_f64(&real_h))));
        for (name, gen) in &generated {
            let h = attribute_histogram(gen, ai);
            let jsd = jsd_counts(&real_h, &h);
            r.line(format!("  {:<13} {}  JSD={jsd:.4}", name, sparkline(&to_f64(&h))));
            r.numbers.push((format!("jsd_attr{ai}_{}", slug(name)), jsd));
        }
        r.blank();
    }
    r
}

/// Figs. 18–23: MBA attribute histograms and the JSD bar chart for all
/// models.
pub fn fig18_mba_attrs(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig18", "MBA attribute JSD (ISP / technology / state), all models");
    let data = mba_data(preset);
    let models = train_all(&data, preset, ModelSet::All);
    let generated = generate_per_model(&models, &data.schema, preset.gen_samples, preset.seed ^ 0xBB);
    let attrs = ["technology", "ISP", "state"];
    let mut rows = Vec::new();
    for (name, gen) in &generated {
        let mut row = vec![name.to_string()];
        for (ai, _) in attrs.iter().enumerate() {
            let jsd = jsd_counts(&attribute_histogram(&data, ai), &attribute_histogram(gen, ai));
            row.push(format!("{jsd:.4}"));
            r.numbers.push((format!("jsd_{}_{}", attrs[ai].to_lowercase(), slug(name)), jsd));
        }
        rows.push(row);
    }
    for line in format_table(&["model", "tech JSD", "ISP JSD", "state JSD"], &rows) {
        r.line(line);
    }
    r.blank();
    r.line("technology histograms:");
    let real_h = attribute_histogram(&data, 0);
    r.line(format!("  real          {}", sparkline(&to_f64(&real_h))));
    for (name, gen) in &generated {
        r.line(format!("  {:<13} {}", name, sparkline(&to_f64(&attribute_histogram(gen, 0)))));
    }
    r
}

/// Figs. 24–26: memorization probe — nearest-training-neighbour distances of
/// generated samples.
pub fn fig24_memorization(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig24", "nearest-neighbour memorization probe");
    let mut rows = Vec::new();
    for (ds_name, data) in [("WWT", wwt_data(preset)), ("GCUT", gcut_data(preset)), ("MBA", mba_data(preset))]
    {
        let model = crate::models::train_dg(&data, preset);
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0xCC);
        let gen = Sampler::new(model).generate(preset.gen_samples.min(50), &mut rng);
        let reports = nearest_neighbours(&gen, &data, 0, 3);
        let (min, median, mean) = nearest_distance_summary(&reports);
        rows.push(vec![
            ds_name.to_string(),
            format!("{min:.4}"),
            format!("{median:.4}"),
            format!("{mean:.4}"),
        ]);
        r.numbers.push((format!("nn_median_{}", ds_name.to_lowercase()), median));
    }
    for line in format_table(&["dataset", "min NN dist", "median", "mean"], &rows) {
        r.line(line);
    }
    r.line("memorization would show up as distances collapsing to ~0");
    r
}

/// Fig. 33: `S` sweep across training progress (autocorrelation MSE at
/// checkpoints).
pub fn fig33_s_sweep(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig33", "S sweep x training progress (autocorrelation MSE, WWT)");
    let data = wwt_data(preset);
    let max_lag = preset.wwt.length - 2;
    let real_ac = ac_of(&data, max_lag);
    let s_values: Vec<usize> =
        [1usize, 5, 10, 25, 50].into_iter().filter(|&s| s <= preset.wwt.length).collect();
    let checkpoints = 4usize;
    let mut rows = Vec::new();
    for &s in &s_values {
        let cfg = preset.dg_config(data.schema.max_len).with_s(s);
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0xDD ^ s as u64);
        let model = DoppelGanger::new(&data, cfg, &mut rng);
        let encoded = model.encode(&data);
        let mut trainer = Trainer::new(model);
        let per_chunk = (preset.dg_iterations / checkpoints).max(1);
        let mut row = vec![format!("S={s}")];
        for cp in 0..checkpoints {
            trainer.fit(&encoded, per_chunk, &mut rng, |_| {});
            let mut grng = StdRng::seed_from_u64(preset.seed ^ cp as u64);
            let gen =
                Sampler::new(trainer.model.clone()).generate_dataset(preset.gen_samples.min(150), &mut grng);
            let mse = curve_mse(&real_ac[1..], &ac_of(&gen, max_lag)[1..]);
            row.push(format!("{mse:.5}"));
            r.numbers.push((format!("mse_s{s}_cp{cp}"), mse));
        }
        rows.push(row);
    }
    let header = ["S \\ progress", "25%", "50%", "75%", "100%"];
    for line in format_table(&header, &rows) {
        r.line(line);
    }
    r
}

/// Figs. 34–35: auxiliary-discriminator ablation — distributions of the
/// generated `(max+min)/2` and `(max-min)/2` fake attributes vs real.
pub fn fig34_aux_disc(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig34", "auxiliary discriminator vs min/max fidelity (WWT)");
    let data = wwt_data(preset);
    let (real_centers, real_halves) = minmax_stats(&data);
    let mut rows = Vec::new();
    for (label, aux) in [("with aux disc", true), ("without aux disc", false)] {
        let mut cfg = preset.dg_config(data.schema.max_len);
        if !aux {
            cfg = cfg.without_auxiliary_discriminator();
        }
        let model = train_dg_with(&data, preset, cfg, preset.dg_iterations);
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0xEE ^ aux as u64);
        let gen = Sampler::new(model).generate_dataset(preset.gen_samples, &mut rng);
        let (centers, halves) = minmax_stats(&gen);
        let w1_c = wasserstein1(&real_centers, &centers);
        let w1_h = wasserstein1(&real_halves, &halves);
        rows.push(vec![label.to_string(), format!("{w1_c:.2}"), format!("{w1_h:.2}")]);
        let key = if aux { "aux" } else { "noaux" };
        r.numbers.push((format!("center_w1_{key}"), w1_c));
        r.numbers.push((format!("half_w1_{key}"), w1_h));
    }
    for line in format_table(&["config", "(max+min)/2 W1", "(max-min)/2 W1"], &rows) {
        r.line(line);
    }
    r
}

/// Extension experiment (beyond the paper's figures): does generated GCUT
/// data preserve the §1 motivating dependence — "as the memory usage of a
/// task increases over time, its likelihood of failure increases"?
///
/// Measures (a) the attribute→feature correlation ratio η between the end
/// event and the memory *slope*, and (b) the FAIL-vs-FINISH gap in mean
/// memory trend, for real data and every model.
pub fn extra_attr_feature_correlation(preset: &Preset) -> ExpResult {
    use dg_metrics::attribute_feature_eta;
    let mut r = ExpResult::new("extra_corr", "feature-attribute correlation preservation (GCUT, §1)");
    let data = gcut_data(preset);
    // Memory feature index: 1 in the 3-feature quick layout, 3 in the full
    // 9-feature layout (canonical memory usage).
    let mem_idx =
        data.schema.feature_index("canonical memory usage").expect("GCUT schema includes canonical memory");
    let fail_gap = |d: &Dataset| -> f64 {
        let trend = |d: &Dataset, event: usize| {
            let f = d.filter_by_attribute(0, event);
            let mut total = 0.0;
            let mut n = 0;
            for o in &f.objects {
                if o.len() >= 4 {
                    let s = o.feature_series(mem_idx);
                    total += s[s.len() - 1] - s[0];
                    n += 1;
                }
            }
            total / n.max(1) as f64
        };
        trend(d, 1) - trend(d, 2) // FAIL minus FINISH
    };

    let real_eta = attribute_feature_eta(&data, 0, mem_idx);
    let real_gap = fail_gap(&data);
    let mut rows = vec![vec!["real".to_string(), format!("{real_eta:.3}"), format!("{real_gap:+.3}")]];
    r.number("real_eta", real_eta);
    r.number("real_fail_gap", real_gap);

    let models = train_all(&data, preset, ModelSet::All);
    let generated = generate_per_model(&models, &data.schema, preset.gen_samples, preset.seed ^ 0xE1);
    for (name, gen) in &generated {
        let eta = attribute_feature_eta(gen, 0, mem_idx);
        let gap = fail_gap(gen);
        rows.push(vec![name.to_string(), format!("{eta:.3}"), format!("{gap:+.3}")]);
        r.numbers.push((format!("eta_{}", slug(name)), eta));
        r.numbers.push((format!("fail_gap_{}", slug(name)), gap));
    }
    for line in format_table(&["source", "eta(event, memory)", "FAIL-FINISH memory-trend gap"], &rows) {
        r.line(line);
    }
    r.line("a faithful model keeps the gap positive (failing tasks leak memory) and eta > 0");
    r
}

// ---- helpers ---------------------------------------------------------------

fn slug(name: &str) -> String {
    name.to_lowercase().replace([' ', '-'], "_")
}

fn short(name: &str) -> &str {
    match name {
        "DoppelGANger" => "DG",
        "Naive GAN" => "NGAN",
        other => other,
    }
}

fn to_f64(counts: &[usize]) -> Vec<f64> {
    counts.iter().map(|&c| c as f64).collect()
}

fn lengths_f64(d: &Dataset) -> Vec<f64> {
    d.lengths().into_iter().map(|l| l as f64).collect()
}

fn bandwidths(d: &Dataset) -> Vec<f64> {
    d.objects.iter().map(mba::total_bandwidth).collect()
}

fn sample_ranges(d: &Dataset) -> Vec<f64> {
    d.objects
        .iter()
        .filter(|o| !o.is_empty())
        .map(|o| {
            let s = o.feature_series(0);
            let mx = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mn = s.iter().copied().fold(f64::INFINITY, f64::min);
            mx - mn
        })
        .collect()
}

fn minmax_stats(d: &Dataset) -> (Vec<f64>, Vec<f64>) {
    let mut centers = Vec::new();
    let mut halves = Vec::new();
    for o in &d.objects {
        if o.is_empty() {
            continue;
        }
        let s = o.feature_series(0);
        let mx = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mn = s.iter().copied().fold(f64::INFINITY, f64::min);
        centers.push((mx + mn) / 2.0);
        halves.push((mx - mn) / 2.0);
    }
    (centers, halves)
}

fn spread(xs: &[f64]) -> f64 {
    quantile(xs, 0.9) - quantile(xs, 0.1)
}

fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if v.is_empty() {
        return 0.0;
    }
    v[(((v.len() - 1) as f64) * q).round() as usize]
}

fn histogram_row(name: &str, h: &[usize]) -> Vec<String> {
    let mut row = vec![name.to_string()];
    row.extend(h.iter().map(|c| c.to_string()));
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Scale;

    #[test]
    fn smoke_fig08_runs_end_to_end() {
        let preset = Preset::new(Scale::Smoke);
        let r = fig08_end_events(&preset);
        assert!(r.get("jsd_doppelganger").is_some());
        assert!(!r.render().is_empty());
    }

    #[test]
    fn helpers_behave() {
        assert_eq!(slug("Naive GAN"), "naive_gan");
        assert_eq!(short("DoppelGANger"), "DG");
        let q = quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.5);
        assert_eq!(q, 3.0);
    }
}
