//! Experiment implementations, one function per paper table/figure.
//!
//! Each function takes a [`crate::presets::Preset`] and returns an
//! [`crate::harness::ExpResult`] whose lines reproduce the rows /
//! series the paper reports. Thin binaries under `src/bin/` wrap each
//! function; `exp_all` runs the full battery.

pub mod downstream;
pub mod fidelity;
pub mod flexibility;
pub mod privacy;

use crate::harness::ExpResult;
use crate::presets::Preset;

/// An experiment runner: takes a preset, produces one table/figure result.
pub type ExpRunner = fn(&Preset) -> ExpResult;

/// Every experiment in index order: `(id, runner)`.
pub fn all_experiments() -> Vec<(&'static str, ExpRunner)> {
    vec![
        ("fig01", fidelity::fig01_autocorrelation as ExpRunner),
        ("fig04", fidelity::fig04_batch_size),
        ("fig05", fidelity::fig05_autonorm),
        ("fig07", fidelity::fig07_duration),
        ("fig08", fidelity::fig08_end_events),
        ("tab03", fidelity::tab03_bandwidth),
        ("fig11", downstream::fig11_prediction),
        ("tab04", downstream::tab04_rank_correlation),
        ("fig12", privacy::fig12_membership),
        ("fig13", privacy::fig13_dp),
        ("fig15", fidelity::fig15_wwt_attrs),
        ("fig18", fidelity::fig18_mba_attrs),
        ("fig24", fidelity::fig24_memorization),
        ("fig27", downstream::fig27_forecast_r2),
        ("fig30", flexibility::fig30_flexibility),
        ("fig33", fidelity::fig33_s_sweep),
        ("fig34", fidelity::fig34_aux_disc),
        ("extra_corr", fidelity::extra_attr_feature_correlation),
    ]
}
