//! Flexibility / business-secret experiment (§5.2, §5.3.2, Fig. 30):
//! retrain only the attribute generator toward an arbitrary target joint
//! distribution and verify (a) the achieved marginal matches the target and
//! (b) the feature generator is untouched.

use crate::harness::{format_table, ExpResult};
use crate::models::{train_dg, TrainedDg};
use crate::presets::Preset;
use dg_baselines::GenerativeModel;
use dg_data::Value;
use dg_datasets::wwt;
use dg_metrics::jsd;
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fig. 30: impose a discretized-Gaussian joint distribution over
/// (domain, access type), peaked at desktop traffic to `fr.wikipedia.org`
/// (the paper's example), and retrain the attribute generator to match it.
pub fn fig30_flexibility(preset: &Preset) -> ExpResult {
    let mut r = ExpResult::new("fig30", "attribute retraining to a target joint distribution (WWT)");
    let mut rng = StdRng::seed_from_u64(preset.seed);
    let data = wwt::generate(&preset.wwt, &mut rng);
    let mut model = train_dg(&data, preset);

    // Target: Gaussian bump over the 9 x 3 (domain, access) grid centered on
    // (fr.wikipedia.org, desktop) = (4, 1); agent fixed to the majority
    // class so the joint stays 2-D like the paper's heatmap.
    let center = (4usize, 1usize);
    let mut combos = Vec::new();
    let mut weights = Vec::new();
    for d in 0..wwt::DOMAINS.len() {
        for a in 0..wwt::ACCESS_TYPES.len() {
            combos.push(vec![Value::Cat(d), Value::Cat(a), Value::Cat(0)]);
            let dist2 = (d as f64 - center.0 as f64).powi(2) + 2.0 * (a as f64 - center.1 as f64).powi(2);
            weights.push((-dist2 / 4.0).exp() + 0.01);
        }
    }
    let target = AttributeDistribution::from_weights(combos.clone(), weights.clone());
    let target_probs = target.probabilities();

    // Snapshot feature-generator weights.
    let feat_ids: Vec<_> = model.feat_lstm.params().into_iter().chain(model.feat_head.params()).collect();
    let feat_before: Vec<_> = feat_ids.iter().map(|&id| model.store.get(id).clone()).collect();

    let mut rrng = StdRng::seed_from_u64(preset.seed ^ 0x30);
    retrain_attribute_generator(&mut model, &target, preset.retrain_iterations, &mut rrng);

    // Feature generator untouched?
    let unchanged = feat_ids.iter().zip(&feat_before).all(|(&id, before)| model.store.get(id) == before);
    r.number("feature_generator_unchanged", f64::from(unchanged));

    // Achieved joint distribution.
    let mut grng = StdRng::seed_from_u64(preset.seed ^ 0x31);
    let wrapped = TrainedDg::new(model);
    let gen = wrapped.generate_dataset(&data.schema, preset.gen_samples.max(500), &mut grng);
    let mut achieved = vec![0.0f64; combos.len()];
    for o in &gen.objects {
        let d = o.attributes[0].cat();
        let a = o.attributes[1].cat();
        achieved[d * wwt::ACCESS_TYPES.len() + a] += 1.0;
    }
    let total: f64 = achieved.iter().sum();
    for v in &mut achieved {
        *v /= total.max(1.0);
    }

    let divergence = jsd(&target_probs, &achieved);
    r.number("target_vs_achieved_jsd", divergence);

    // Heatmap table: target | achieved per domain row.
    r.blank();
    r.line("target vs achieved joint P(domain, access) [columns: all-access/desktop/mobile-web]:");
    let mut rows = Vec::new();
    for d in 0..wwt::DOMAINS.len() {
        let t: Vec<String> = (0..3).map(|a| format!("{:.3}", target_probs[d * 3 + a])).collect();
        let g: Vec<String> = (0..3).map(|a| format!("{:.3}", achieved[d * 3 + a])).collect();
        rows.push(vec![wwt::DOMAINS[d].to_string(), t.join("/"), g.join("/")]);
    }
    for line in format_table(&["domain", "target", "achieved"], &rows) {
        r.line(line);
    }
    // The peak combo should be the modal generated combo.
    let peak_target = argmax(&target_probs);
    let peak_achieved = argmax(&achieved);
    r.number("peak_matches", f64::from(peak_target == peak_achieved));
    r
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Scale;

    #[test]
    fn smoke_fig30_keeps_feature_generator_frozen() {
        let preset = Preset::new(Scale::Smoke);
        let r = fig30_flexibility(&preset);
        assert_eq!(r.get("feature_generator_unchanged"), Some(1.0));
        let jsd = r.get("target_vs_achieved_jsd").unwrap();
        assert!((0.0..=std::f64::consts::LN_2).contains(&jsd));
    }
}
