//! # dg-bench — experiment harness and performance benches
//!
//! Regenerates every table and figure of the DoppelGANger paper's
//! evaluation (see `DESIGN.md` §5 for the experiment index). Structure:
//!
//! * [`presets`] — smoke/quick/paper workload scales;
//! * [`models`] — shared model-training helpers (DoppelGANger + the four
//!   baselines under one [`dg_baselines::GenerativeModel`] interface);
//! * [`harness`] — result recording, aligned tables, terminal sparklines;
//! * [`experiments`] — one function per table/figure;
//! * `src/bin/exp_*` — one binary per experiment
//!   (`cargo run --release -p dg-bench --bin exp_fig01_autocorrelation -- quick`);
//! * `benches/` — Criterion performance benches for the substrate
//!   (tensor ops, autodiff, training steps, generation, metrics, baselines,
//!   downstream models).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod models;
pub mod presets;
