//! Model-training helpers shared by all experiments: fit DoppelGANger and
//! every baseline on a dataset under a [`crate::presets::Preset`].

use crate::presets::Preset;
use dg_baselines::{ArModel, GenerativeModel, HmmModel, NaiveGanModel, RnnModel};
use dg_data::{Dataset, TimeSeriesObject};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Newtype making a trained [`DoppelGanger`] usable through the shared
/// [`GenerativeModel`] interface; generation runs through the released
/// [`Sampler`], the same code path `dg serve` uses.
pub struct TrainedDg(pub Sampler);

impl TrainedDg {
    /// Wraps released parameters in a [`Sampler`].
    pub fn new(model: DoppelGanger) -> Self {
        TrainedDg(Sampler::new(model))
    }
}

impl GenerativeModel for TrainedDg {
    fn name(&self) -> &'static str {
        "DoppelGANger"
    }

    fn generate_objects(&self, n: usize, rng: &mut dyn rand::RngCore) -> Vec<TimeSeriesObject> {
        self.0.generate(n, rng)
    }
}

/// Trains a DoppelGANger model on `data` under the preset (config, iteration
/// budget, seed).
pub fn train_dg(data: &Dataset, preset: &Preset) -> DoppelGanger {
    train_dg_with(data, preset, preset.dg_config(data.schema.max_len), preset.dg_iterations)
}

/// Trains DoppelGANger with an explicit config (for ablations).
pub fn train_dg_with(data: &Dataset, preset: &Preset, config: DgConfig, iterations: usize) -> DoppelGanger {
    let mut rng = StdRng::seed_from_u64(preset.seed ^ 0xD6);
    let model = DoppelGanger::new(data, config, &mut rng);
    let encoded = model.encode(data);
    let mut trainer = Trainer::new(model);
    trainer.fit(&encoded, iterations, &mut rng, |_| {});
    trainer.into_model()
}

/// Which models to fit in [`train_all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSet {
    /// DoppelGANger + all four baselines.
    All,
    /// DoppelGANger and the naive GAN only (for the GAN-vs-GAN figures).
    GansOnly,
}

/// Trains the requested model set on `data`, returning them in the paper's
/// reporting order (DoppelGANger first).
pub fn train_all(data: &Dataset, preset: &Preset, set: ModelSet) -> Vec<Box<dyn GenerativeModel>> {
    let mut models: Vec<Box<dyn GenerativeModel>> = Vec::new();
    models.push(Box::new(TrainedDg::new(train_dg(data, preset))));
    if set == ModelSet::All {
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0xA1);
        models.push(Box::new(ArModel::fit(data, preset.ar_config(), &mut rng)));
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0xA2);
        models.push(Box::new(RnnModel::fit(data, preset.rnn_config(), &mut rng)));
        let mut rng = StdRng::seed_from_u64(preset.seed ^ 0xA3);
        models.push(Box::new(HmmModel::fit(data, preset.hmm_config(), &mut rng)));
    }
    let mut rng = StdRng::seed_from_u64(preset.seed ^ 0xA4);
    models.push(Box::new(NaiveGanModel::fit(data, preset.naive_gan_config(), &mut rng)));
    models
}

/// Generates one synthetic dataset per model (same size each), returning
/// `(model name, dataset)` pairs.
pub fn generate_per_model(
    models: &[Box<dyn GenerativeModel>],
    schema: &dg_data::Schema,
    n: usize,
    seed: u64,
) -> Vec<(&'static str, Dataset)> {
    models
        .iter()
        .map(|m| {
            let mut rng = StdRng::seed_from_u64(seed ^ fxhash(m.name()));
            (m.name(), m.generate_dataset(schema, n, &mut rng))
        })
        .collect()
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325_u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{Preset, Scale};
    use dg_datasets::sine;

    #[test]
    fn train_all_produces_five_models_at_smoke_scale() {
        let preset = Preset::new(Scale::Smoke);
        let mut rng = StdRng::seed_from_u64(1);
        let data = sine::generate(&preset.sine, &mut rng);
        let models = train_all(&data, &preset, ModelSet::All);
        assert_eq!(models.len(), 5);
        let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["DoppelGANger", "AR", "RNN", "HMM", "Naive GAN"]);
        let gen = generate_per_model(&models, &data.schema, 5, 1);
        for (name, d) in &gen {
            assert_eq!(d.len(), 5, "{name} generated wrong count");
        }
    }

    #[test]
    fn gans_only_trains_two_models() {
        let preset = Preset::new(Scale::Smoke);
        let mut rng = StdRng::seed_from_u64(2);
        let data = sine::generate(&preset.sine, &mut rng);
        let models = train_all(&data, &preset, ModelSet::GansOnly);
        assert_eq!(models.len(), 2);
    }
}
