//! Shared experiment-harness plumbing: result recording, table printing,
//! and results-directory output.

use std::fmt::Write as _;
use std::path::PathBuf;

/// The output of one experiment: the printable report plus machine-readable
/// key numbers.
#[derive(Debug, Clone, Default)]
pub struct ExpResult {
    /// Experiment id (e.g. `"fig01"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Report lines (already formatted).
    pub lines: Vec<String>,
    /// Named key numbers (for EXPERIMENTS.md and assertions).
    pub numbers: Vec<(String, f64)>,
}

impl ExpResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str) -> Self {
        ExpResult { id: id.into(), title: title.into(), ..Default::default() }
    }

    /// Appends a report line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.lines.push(String::new());
    }

    /// Records a named number (also printed).
    pub fn number(&mut self, name: &str, value: f64) {
        self.numbers.push((name.to_string(), value));
        self.lines.push(format!("  {name} = {value:.6}"));
    }

    /// Looks up a recorded number.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.numbers.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// Prints to stdout and saves the report under
    /// `results/<id>.<scale>.txt` plus the key numbers as
    /// `results/<id>.<scale>.json` (consumed by `exp_summary`).
    ///
    /// Persistence failures are reported on stderr instead of silently
    /// dropping results (an hour-long experiment whose numbers vanish is
    /// worse than a noisy one); the printed report is always complete.
    pub fn emit(&self, scale_name: &str) {
        let report = self.render();
        println!("{report}");
        let dir = results_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: creating {}: {e}; results not saved", dir.display());
            return;
        }
        let path = dir.join(format!("{}.{}.txt", self.id, scale_name));
        if let Err(e) = dg_io::atomic_write(&path, report.as_bytes()) {
            eprintln!("warning: saving report: {e}");
        }
        let json = dir.join(format!("{}.{}.json", self.id, scale_name));
        let map: std::collections::BTreeMap<&str, f64> =
            self.numbers.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        match serde_json::to_string_pretty(&map) {
            Ok(s) => {
                if let Err(e) = dg_io::atomic_write(&json, s.as_bytes()) {
                    eprintln!("warning: saving key numbers: {e}");
                }
            }
            Err(e) => eprintln!("warning: serializing key numbers: {e}"),
        }
    }

    /// Loads the key numbers previously written by [`ExpResult::emit`].
    pub fn load_numbers(id: &str, scale_name: &str) -> Option<Vec<(String, f64)>> {
        let path = results_dir().join(format!("{id}.{scale_name}.json"));
        let s = std::fs::read_to_string(path).ok()?;
        let map: std::collections::BTreeMap<String, f64> = serde_json::from_str(&s).ok()?;
        Some(map.into_iter().collect())
    }
}

/// The `results/` directory at the workspace root (overridable via
/// `DG_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("DG_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Formats an aligned table: a header row plus data rows.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> Vec<String> {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = Vec::with_capacity(rows.len() + 2);
    out.push(render_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    out.push(widths.iter().map(|&w| "-".repeat(w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        out.push(render_row(row));
    }
    out
}

/// Renders a compact sparkline of a numeric series (for eyeballing curves in
/// terminal reports).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let mn = values.iter().copied().fold(f64::INFINITY, f64::min);
    let mx = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (mx - mn).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - mn) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Downsamples a curve to at most `n` points (for compact reports).
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    if values.len() <= n || n == 0 {
        return values.to_vec();
    }
    (0..n).map(|i| values[i * (values.len() - 1) / (n - 1).max(1)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_records_and_renders() {
        let mut r = ExpResult::new("figX", "demo");
        r.line("hello");
        r.number("metric", 1.25);
        assert_eq!(r.get("metric"), Some(1.25));
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("hello"));
        assert!(s.contains("metric = 1.25"));
    }

    #[test]
    fn tables_align() {
        let rows = vec![
            vec!["DoppelGANger".to_string(), "0.68".to_string()],
            vec!["AR".to_string(), "1.34".to_string()],
        ];
        let t = format_table(&["model", "W1"], &rows);
        assert_eq!(t.len(), 4);
        // Header and rows share the first column width.
        let w = t[0].find("  ").unwrap();
        assert!(t[2].len() >= w);
    }

    #[test]
    fn sparkline_length_matches_input() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn downsample_preserves_endpoints() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[9], 99.0);
    }
}
