//! GFLOP/s benchmark of the matmul dispatch tiers. Writes
//! `BENCH_kernels.json` under the results directory (workspace `results/`,
//! overridable with `DG_RESULTS_DIR`).
//!
//! Measures every dispatch tier (scalar / portable / native) at the real
//! model shapes of the paper configuration plus the canonical 256³ problem,
//! serial and threaded, for all three transpose variants. Also records the
//! thread sweep and spawn-overhead numbers that back the `PARALLEL_MACS`
//! threshold and `MAX_DEFAULT_THREADS` cap in `dg-nn` (DESIGN.md §13) — on a
//! single-core host the sweep legitimately shows parallel ≤ serial, which is
//! exactly why the threshold is conservative.

use dg_bench::harness::results_dir;
use dg_nn::kernels::{self, KernelKind};
use dg_nn::parallel::{self, num_threads};
use dg_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct Variant {
    /// `matmul`, `matmul_bt` or `matmul_at`.
    variant: String,
    serial_gflops: f64,
    threaded_gflops: f64,
}

#[derive(Serialize)]
struct KindResult {
    kind: String,
    /// True when this tier actually ran its own code path (`native` resolves
    /// to `portable` on hosts without AVX2).
    resolved_kind: String,
    variants: Vec<Variant>,
}

#[derive(Serialize)]
struct ShapeResult {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    kinds: Vec<KindResult>,
}

#[derive(Serialize)]
struct SweepPoint {
    threads: usize,
    ms: f64,
    gflops: f64,
}

#[derive(Serialize)]
struct Report {
    hardware_threads: usize,
    worker_threads: usize,
    avx2_available: bool,
    active_kernel: String,
    /// `dg_nn::tensor::PARALLEL_MACS` at build time, for cross-checking the
    /// sweep below against the shipped threshold.
    parallel_macs_threshold: usize,
    max_default_threads: usize,
    /// Measured cost of one scoped spawn/join fan-out with no work, in
    /// microseconds — the fixed overhead `PARALLEL_MACS` must amortize.
    spawn_overhead_us: f64,
    /// 256³ matmul under the active kernel at increasing worker counts.
    thread_sweep: Vec<SweepPoint>,
    /// Single-threaded 256³ GFLOP/s: scalar tier vs active tier — the
    /// headline acceptance number for the register-tiled kernels.
    scalar_256_gflops: f64,
    active_256_gflops: f64,
    active_vs_scalar_speedup: f64,
    shapes: Vec<ShapeResult>,
}

fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn gflops(m: usize, k: usize, n: usize, ms: f64) -> f64 {
    // One multiply + one add per MAC.
    (2.0 * m as f64 * k as f64 * n as f64) / (ms * 1e-3) / 1e9
}

/// Repetition count scaled so each measurement runs a comparable MAC budget.
fn reps_for(m: usize, k: usize, n: usize) -> usize {
    let macs = (m * k * n).max(1);
    (200_000_000 / macs).clamp(3, 400)
}

fn bench_shape(name: &str, m: usize, k: usize, n: usize, threads: usize) -> ShapeResult {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let bt = Tensor::randn(n, k, 1.0, &mut rng);
    let at = Tensor::randn(m, n, 1.0, &mut rng);
    let reps = reps_for(m, k, n);

    let mut kinds = Vec::new();
    for kind in [KernelKind::Scalar, KernelKind::Portable, KernelKind::Native] {
        let mut variants = Vec::new();
        for (variant, run) in [
            (
                "matmul",
                Box::new(|t: usize| black_box(a.matmul_with_kind(&b, t, kind)))
                    as Box<dyn Fn(usize) -> Tensor>,
            ),
            ("matmul_bt", Box::new(|t: usize| black_box(a.matmul_bt_with_kind(&bt, t, kind)))),
            ("matmul_at", Box::new(|t: usize| black_box(a.matmul_at_with_kind(&at, t, kind)))),
        ] {
            let serial_ms = time_ms(reps, || {
                run(1);
            });
            let threaded_ms = time_ms(reps, || {
                run(threads);
            });
            variants.push(Variant {
                variant: variant.into(),
                serial_gflops: gflops(m, k, n, serial_ms),
                threaded_gflops: gflops(m, k, n, threaded_ms),
            });
        }
        println!(
            "{name:<16} {m:>4}x{k:<4}x{n:<4} {:<8} serial {:>6.2} GF/s   threaded({threads}) {:>6.2} GF/s",
            kernels::resolve(kind).name(),
            variants[0].serial_gflops,
            variants[0].threaded_gflops,
        );
        kinds.push(KindResult {
            kind: kind.name().into(),
            resolved_kind: kernels::resolve(kind).name().into(),
            variants,
        });
    }
    ShapeResult { name: name.into(), m, k, n, kinds }
}

fn main() {
    let threads = num_threads();
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let active = kernels::active();
    println!(
        "bench_kernels: {hw} hardware threads, {threads} workers, avx2={}, active kernel {}\n",
        kernels::native_available(),
        active.name()
    );

    // Fixed spawn/join cost of the scoped-thread fan-out, amortized over
    // many launches: this is the overhead PARALLEL_MACS must clear.
    let mut sink = vec![0.0_f32; 64];
    let spawn_reps = 2_000;
    let spawned_ms = time_ms(spawn_reps, || {
        parallel::run_row_chunks(black_box(&mut sink), 8, 2, |_, chunk| {
            black_box(chunk);
        });
    });
    let inline_ms = time_ms(spawn_reps, || {
        parallel::run_row_chunks(black_box(&mut sink), 8, 1, |_, chunk| {
            black_box(chunk);
        });
    });
    let spawn_overhead_us = (spawned_ms - inline_ms).max(0.0) * 1e3;
    println!("spawn/join overhead: {spawn_overhead_us:.1} us per 2-worker fan-out\n");

    // Thread sweep at 256³ under the active tier.
    let mut rng = StdRng::seed_from_u64(11);
    let a = Tensor::randn(256, 256, 1.0, &mut rng);
    let b = Tensor::randn(256, 256, 1.0, &mut rng);
    let mut thread_sweep = Vec::new();
    for t in [1usize, 2, 4, 8] {
        let ms = time_ms(12, || {
            black_box(a.matmul_with_kind(&b, t, active));
        });
        println!("thread sweep 256^3: {t} threads {ms:>8.3} ms ({:.2} GF/s)", gflops(256, 256, 256, ms));
        thread_sweep.push(SweepPoint { threads: t, ms, gflops: gflops(256, 256, 256, ms) });
    }
    println!();

    // Real model shapes (paper scale: batch 100, LSTM hidden 100 → fused
    // [x,h] width 200 → 400 gate columns; discriminator 200-wide MLP) plus
    // the canonical cube.
    let shapes = vec![
        bench_shape("cube_256", 256, 256, 256, threads),
        bench_shape("lstm_gates", 100, 200, 400, threads),
        bench_shape("disc_hidden", 100, 200, 200, threads),
        bench_shape("attr_gen", 100, 110, 100, threads),
    ];

    // Headline acceptance number straight from the cube_256 measurements
    // above (one source of truth, no second noisy timing pass): serial 256³,
    // scalar tier vs whatever tier the active kind resolves to.
    let cube = &shapes[0];
    let serial_of = |tier: KernelKind| -> f64 {
        cube.kinds
            .iter()
            .find(|kr| kr.kind == tier.name())
            .map(|kr| kr.variants[0].serial_gflops)
            .unwrap_or(f64::NAN)
    };
    let scalar_256_gflops = serial_of(KernelKind::Scalar);
    let active_256_gflops = serial_of(active);
    println!(
        "\n256^3 serial: scalar {scalar_256_gflops:.2} GF/s vs {} {active_256_gflops:.2} GF/s \
         ({:.2}x)\n",
        active.name(),
        active_256_gflops / scalar_256_gflops
    );

    let report = Report {
        hardware_threads: hw,
        worker_threads: threads,
        avx2_available: kernels::native_available(),
        active_kernel: active.name().into(),
        parallel_macs_threshold: dg_nn::tensor::PARALLEL_MACS,
        max_default_threads: parallel::MAX_DEFAULT_THREADS,
        spawn_overhead_us,
        thread_sweep,
        scalar_256_gflops,
        active_256_gflops,
        active_vs_scalar_speedup: active_256_gflops / scalar_256_gflops,
        shapes,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(3);
    }
    let path = dir.join("BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(e) = dg_io::atomic_write(&path, json.as_bytes()) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(3);
    }
    println!("wrote {}", path.display());
}
