//! GFLOP/s benchmark of the matmul dispatch tiers. Writes
//! `BENCH_kernels.json` under the results directory (workspace `results/`,
//! overridable with `DG_RESULTS_DIR`).
//!
//! Measures every dispatch tier (scalar / portable / native) at the real
//! model shapes of the paper configuration plus the canonical 256³ problem,
//! serial and threaded, for all three transpose variants. Also records the
//! thread sweep plus the pool-wake and raw-spawn overhead numbers that back
//! the `PARALLEL_MACS` / `MACS_PER_WORKER` thresholds and the
//! `MAX_DEFAULT_THREADS` cap in `dg-nn` (DESIGN.md §9/§13) — on a
//! single-core host the sweep legitimately shows parallel ≈ serial (the wake
//! fee is small but the workers time-share one core), which is exactly why
//! the thresholds are conservative.
//!
//! Set `DG_BENCH_SMOKE=1` to run a fast low-rep pass (used by the CI
//! thread-scaling gate, which only checks relative numbers).

use dg_bench::harness::results_dir;
use dg_nn::kernels::{self, KernelKind};
use dg_nn::parallel::{self, num_threads};
use dg_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct Variant {
    /// `matmul`, `matmul_bt` or `matmul_at`.
    variant: String,
    serial_gflops: f64,
    threaded_gflops: f64,
}

#[derive(Serialize)]
struct KindResult {
    kind: String,
    /// True when this tier actually ran its own code path (`native` resolves
    /// to `portable` on hosts without AVX2).
    resolved_kind: String,
    variants: Vec<Variant>,
}

#[derive(Serialize)]
struct ShapeResult {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    kinds: Vec<KindResult>,
}

#[derive(Serialize)]
struct SweepPoint {
    threads: usize,
    ms: f64,
    gflops: f64,
}

#[derive(Serialize)]
struct Report {
    hardware_threads: usize,
    worker_threads: usize,
    avx2_available: bool,
    active_kernel: String,
    /// `dg_nn::tensor::PARALLEL_MACS` at build time, for cross-checking the
    /// sweep below against the shipped threshold.
    parallel_macs_threshold: usize,
    /// `dg_nn::tensor::MACS_PER_WORKER`: the per-extra-worker MAC budget
    /// behind the gradual thread ramp.
    macs_per_worker: usize,
    max_default_threads: usize,
    /// Measured cost of waking one parked pool worker for a 2-chunk
    /// dispatch, in microseconds — the fixed fee `PARALLEL_MACS` must
    /// amortize now that workers persist.
    wake_overhead_us: f64,
    /// Measured cost of one `std::thread::scope` spawn/join fan-out with no
    /// work, in microseconds — the OS-thread fee the pool replaced; kept for
    /// comparison against `wake_overhead_us`.
    spawn_overhead_us: f64,
    /// 256³ matmul under the active kernel at increasing worker counts.
    thread_sweep: Vec<SweepPoint>,
    /// Single-threaded 256³ GFLOP/s: scalar tier vs active tier — the
    /// headline acceptance number for the register-tiled kernels.
    scalar_256_gflops: f64,
    active_256_gflops: f64,
    active_vs_scalar_speedup: f64,
    shapes: Vec<ShapeResult>,
}

fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn gflops(m: usize, k: usize, n: usize, ms: f64) -> f64 {
    // One multiply + one add per MAC.
    (2.0 * m as f64 * k as f64 * n as f64) / (ms * 1e-3) / 1e9
}

/// True when the fast low-rep CI pass was requested.
fn smoke() -> bool {
    std::env::var("DG_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// Repetition count scaled so each measurement runs a comparable MAC budget.
fn reps_for(m: usize, k: usize, n: usize) -> usize {
    let macs = (m * k * n).max(1);
    let budget = if smoke() { 30_000_000 } else { 200_000_000 };
    (budget / macs).clamp(2, 400)
}

fn bench_shape(name: &str, m: usize, k: usize, n: usize, threads: usize) -> ShapeResult {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let bt = Tensor::randn(n, k, 1.0, &mut rng);
    let at = Tensor::randn(m, n, 1.0, &mut rng);
    let reps = reps_for(m, k, n);

    let mut kinds = Vec::new();
    for kind in [KernelKind::Scalar, KernelKind::Portable, KernelKind::Native] {
        let mut variants = Vec::new();
        for (variant, run) in [
            (
                "matmul",
                Box::new(|t: usize| black_box(a.matmul_with_kind(&b, t, kind)))
                    as Box<dyn Fn(usize) -> Tensor>,
            ),
            ("matmul_bt", Box::new(|t: usize| black_box(a.matmul_bt_with_kind(&bt, t, kind)))),
            ("matmul_at", Box::new(|t: usize| black_box(a.matmul_at_with_kind(&at, t, kind)))),
        ] {
            let serial_ms = time_ms(reps, || {
                run(1);
            });
            let threaded_ms = time_ms(reps, || {
                run(threads);
            });
            variants.push(Variant {
                variant: variant.into(),
                serial_gflops: gflops(m, k, n, serial_ms),
                threaded_gflops: gflops(m, k, n, threaded_ms),
            });
        }
        println!(
            "{name:<16} {m:>4}x{k:<4}x{n:<4} {:<8} serial {:>6.2} GF/s   threaded({threads}) {:>6.2} GF/s",
            kernels::resolve(kind).name(),
            variants[0].serial_gflops,
            variants[0].threaded_gflops,
        );
        kinds.push(KindResult {
            kind: kind.name().into(),
            resolved_kind: kernels::resolve(kind).name().into(),
            variants,
        });
    }
    ShapeResult { name: name.into(), m, k, n, kinds }
}

fn main() {
    let threads = num_threads();
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let active = kernels::active();
    println!(
        "bench_kernels: {hw} hardware threads, {threads} workers, avx2={}, active kernel {}\n",
        kernels::native_available(),
        active.name()
    );

    // Fixed cost of waking a parked pool worker for a 2-chunk dispatch,
    // amortized over many launches: this is the fee PARALLEL_MACS must
    // clear. The inline (1-chunk) pass measures the same call with no
    // dispatch so the subtraction isolates the wake itself.
    let mut sink = vec![0.0_f32; 64];
    let fee_reps = if smoke() { 300 } else { 2_000 };
    let woken_ms = time_ms(fee_reps, || {
        parallel::run_row_chunks(black_box(&mut sink), 8, 2, |_, chunk| {
            black_box(chunk);
        });
    });
    let inline_ms = time_ms(fee_reps, || {
        parallel::run_row_chunks(black_box(&mut sink), 8, 1, |_, chunk| {
            black_box(chunk);
        });
    });
    let wake_overhead_us = (woken_ms - inline_ms).max(0.0) * 1e3;
    println!("pool wake overhead: {wake_overhead_us:.1} us per 2-chunk dispatch");

    // Raw OS spawn/join fan-out for comparison — the per-call fee the old
    // spawn-per-dispatch scheme paid.
    let spawned_ms = time_ms(fee_reps, || {
        std::thread::scope(|s| {
            let h = s.spawn(|| black_box(0u64));
            black_box(h.join().unwrap());
        });
    });
    let spawn_overhead_us = (spawned_ms - inline_ms).max(0.0) * 1e3;
    println!("thread spawn/join overhead: {spawn_overhead_us:.1} us per 1-thread scope\n");

    // Thread sweep at 256³ under the active tier.
    let mut rng = StdRng::seed_from_u64(11);
    let a = Tensor::randn(256, 256, 1.0, &mut rng);
    let b = Tensor::randn(256, 256, 1.0, &mut rng);
    let mut thread_sweep = Vec::new();
    let sweep_reps = if smoke() { 4 } else { 12 };
    for t in [1usize, 2, 4, 8] {
        let ms = time_ms(sweep_reps, || {
            black_box(a.matmul_with_kind(&b, t, active));
        });
        println!("thread sweep 256^3: {t} threads {ms:>8.3} ms ({:.2} GF/s)", gflops(256, 256, 256, ms));
        thread_sweep.push(SweepPoint { threads: t, ms, gflops: gflops(256, 256, 256, ms) });
    }
    println!();

    // Real model shapes (paper scale: batch 100, LSTM hidden 100 → fused
    // [x,h] width 200 → 400 gate columns; discriminator 200-wide MLP) plus
    // the canonical cube.
    let shapes = vec![
        bench_shape("cube_256", 256, 256, 256, threads),
        bench_shape("lstm_gates", 100, 200, 400, threads),
        bench_shape("disc_hidden", 100, 200, 200, threads),
        bench_shape("attr_gen", 100, 110, 100, threads),
    ];

    // Headline acceptance number straight from the cube_256 measurements
    // above (one source of truth, no second noisy timing pass): serial 256³,
    // scalar tier vs whatever tier the active kind resolves to.
    let cube = &shapes[0];
    let serial_of = |tier: KernelKind| -> f64 {
        cube.kinds
            .iter()
            .find(|kr| kr.kind == tier.name())
            .map(|kr| kr.variants[0].serial_gflops)
            .unwrap_or(f64::NAN)
    };
    let scalar_256_gflops = serial_of(KernelKind::Scalar);
    let active_256_gflops = serial_of(active);
    println!(
        "\n256^3 serial: scalar {scalar_256_gflops:.2} GF/s vs {} {active_256_gflops:.2} GF/s \
         ({:.2}x)\n",
        active.name(),
        active_256_gflops / scalar_256_gflops
    );

    let report = Report {
        hardware_threads: hw,
        worker_threads: threads,
        avx2_available: kernels::native_available(),
        active_kernel: active.name().into(),
        parallel_macs_threshold: dg_nn::tensor::PARALLEL_MACS,
        macs_per_worker: dg_nn::tensor::MACS_PER_WORKER,
        max_default_threads: parallel::MAX_DEFAULT_THREADS,
        wake_overhead_us,
        spawn_overhead_us,
        thread_sweep,
        scalar_256_gflops,
        active_256_gflops,
        active_vs_scalar_speedup: active_256_gflops / scalar_256_gflops,
        shapes,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(3);
    }
    let path = dir.join("BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(e) = dg_io::atomic_write(&path, json.as_bytes()) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(3);
    }
    println!("wrote {}", path.display());
}
