//! Fig. 30: attribute retraining to a target joint distribution.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig30_flexibility -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = flexibility::fig30_flexibility(&preset);
    result.emit(scale.name());
}
