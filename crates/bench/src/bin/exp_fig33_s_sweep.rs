//! Fig. 33: S sweep across training progress.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig33_s_sweep -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::fig33_s_sweep(&preset);
    result.emit(scale.name());
}
