//! Table 4 + Figs. 28/29: algorithm-ranking rank correlation.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_tab04_rank_corr -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = downstream::tab04_rank_correlation(&preset);
    result.emit(scale.name());
}
