//! Collates saved experiment numbers (`results/*.json`) into a one-screen
//! verdict table: per experiment, the paper's claim and whether the measured
//! numbers support it.
//!
//! Run the battery first (`exp_all`), then:
//! `cargo run --release -p dg-bench --bin exp_summary -- quick`

use dg_bench::harness::{format_table, ExpResult};
use dg_bench::presets::Scale;

/// Looks up a saved `(experiment id, key)` number, if present.
type NumberLookup<'a> = dyn Fn(&str, &str) -> Option<f64> + 'a;

struct Check {
    id: &'static str,
    claim: &'static str,
    verdict: fn(&NumberLookup) -> Option<bool>,
}

fn main() {
    let scale = Scale::from_env();
    let get = move |id: &str, key: &str| -> Option<f64> {
        ExpResult::load_numbers(id, scale.name())?.into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    };

    let checks: Vec<Check> = vec![
        Check {
            id: "fig01",
            claim: "DG has the lowest autocorrelation MSE",
            verdict: |g| Some(g("fig01", "dg_wins")? > 0.5),
        },
        Check {
            id: "fig04",
            claim: "batched generation (S>1) beats S=1",
            verdict: |g| {
                let s1 = g("fig04", "mse_s1")?;
                let batched: Vec<f64> = ["mse_s5", "mse_s10", "mse_s25", "mse_s50"]
                    .iter()
                    .filter_map(|k| g("fig04", k))
                    .collect();
                if batched.is_empty() {
                    return None;
                }
                Some(batched.iter().copied().fold(f64::INFINITY, f64::min) < s1)
            },
        },
        Check {
            id: "fig05",
            claim: "auto-normalization reduces range-distribution error",
            verdict: |g| Some(g("fig05", "range_w1_auto")? < g("fig05", "range_w1_raw")?),
        },
        Check {
            id: "fig07",
            claim: "DG captures the bimodal durations, AR/RNN do not",
            verdict: |g| {
                Some(
                    g("fig07", "modes_doppelganger")? >= 2.0
                        && g("fig07", "modes_ar")? < 2.0
                        && g("fig07", "modes_rnn")? < 2.0,
                )
            },
        },
        Check {
            id: "fig08",
            claim: "DG's event histogram beats the naive GAN's (JSD)",
            verdict: |g| Some(g("fig08", "jsd_doppelganger")? < g("fig08", "jsd_naive_gan")?),
        },
        Check {
            id: "tab03",
            claim: "DG closest to real bandwidth CDF (DSL + cable)",
            verdict: |g| {
                let dg = g("tab03", "w1_dsl_doppelganger")? + g("tab03", "w1_cable_doppelganger")?;
                let best_other = ["ar", "rnn", "hmm", "naive_gan"]
                    .iter()
                    .filter_map(|m| {
                        Some(g("tab03", &format!("w1_dsl_{m}"))? + g("tab03", &format!("w1_cable_{m}"))?)
                    })
                    .fold(f64::INFINITY, f64::min);
                Some(dg < best_other)
            },
        },
        Check {
            id: "fig11",
            claim: "classifiers trained on DG data beat all baselines (MLP)",
            verdict: |g| Some(g("fig11", "dg_mlp_minus_best_baseline")? > 0.0),
        },
        Check {
            id: "tab04",
            claim: "DG's algorithm ranking correlates with ground truth",
            verdict: |g| Some(g("tab04", "rank_gcut_doppelganger")? > 0.5),
        },
        Check {
            id: "fig12",
            claim: "membership attack weakens with more training data (WWT)",
            verdict: |g| {
                let nums = ExpResult::load_numbers("fig12", Scale::from_env().name())?;
                let mut wwt: Vec<(usize, f64)> = nums
                    .iter()
                    .filter_map(|(k, v)| {
                        k.strip_prefix("attack_wwt_").and_then(|n| n.parse().ok()).map(|n: usize| (n, *v))
                    })
                    .collect();
                wwt.sort_by_key(|&(n, _)| n);
                let _ = g;
                Some(wwt.len() >= 2 && wwt.first()?.1 >= wwt.last()?.1)
            },
        },
        Check {
            id: "fig13",
            claim: "stronger DP (smaller eps) destroys autocorrelation",
            verdict: |g| Some(g("fig13", "mse_eps_0.55")? > g("fig13", "mse_eps_inf")?),
        },
        Check {
            id: "fig15",
            claim: "DG's WWT attribute histograms beat the naive GAN's",
            verdict: |g| {
                let dg: Vec<f64> =
                    (0..3).filter_map(|i| g("fig15", &format!("jsd_attr{i}_doppelganger"))).collect();
                let ng: Vec<f64> =
                    (0..3).filter_map(|i| g("fig15", &format!("jsd_attr{i}_naive_gan"))).collect();
                if dg.is_empty() || ng.is_empty() {
                    return None;
                }
                Some(dg.iter().sum::<f64>() < ng.iter().sum::<f64>())
            },
        },
        Check {
            id: "fig18",
            claim: "DG's MBA attribute JSD beats the naive GAN's",
            verdict: |g| {
                let dg: Vec<f64> = ["technology", "isp", "state"]
                    .iter()
                    .filter_map(|a| g("fig18", &format!("jsd_{a}_doppelganger")))
                    .collect();
                let ng: Vec<f64> = ["technology", "isp", "state"]
                    .iter()
                    .filter_map(|a| g("fig18", &format!("jsd_{a}_naive_gan")))
                    .collect();
                if dg.is_empty() || ng.is_empty() {
                    return None;
                }
                Some(dg.iter().sum::<f64>() < ng.iter().sum::<f64>())
            },
        },
        Check {
            id: "fig24",
            claim: "no memorization (median NN distance > 0)",
            verdict: |g| Some(g("fig24", "nn_median_wwt")? > 1e-4),
        },
        Check {
            id: "fig27",
            claim: "regressors trained on DG data transfer best to real",
            verdict: |g| {
                let dg = g("fig27", "r2_doppelganger_mlp_5_layers")?;
                let best_other = ["ar", "rnn", "hmm", "naive_gan"]
                    .iter()
                    .filter_map(|m| g("fig27", &format!("r2_{m}_mlp_5_layers")))
                    .fold(f64::NEG_INFINITY, f64::max);
                Some(dg > best_other)
            },
        },
        Check {
            id: "fig30",
            claim: "attribute retraining hits the target, features frozen",
            verdict: |g| {
                Some(
                    g("fig30", "feature_generator_unchanged")? > 0.5
                        && g("fig30", "target_vs_achieved_jsd")? < 0.2,
                )
            },
        },
        Check {
            id: "fig33",
            claim: "recommended-S runs reach low MSE by end of training",
            verdict: |g| Some(g("fig33", "mse_s10_cp3")? < g("fig33", "mse_s1_cp0")?),
        },
        Check {
            id: "fig34",
            claim: "auxiliary critic improves min/max fidelity",
            verdict: |g| {
                Some(
                    g("fig34", "center_w1_aux")? + g("fig34", "half_w1_aux")?
                        < g("fig34", "center_w1_noaux")? + g("fig34", "half_w1_noaux")?,
                )
            },
        },
    ];

    let mut rows = Vec::new();
    let mut pass = 0;
    let mut total = 0;
    for c in &checks {
        let verdict = (c.verdict)(&get);
        let mark = match verdict {
            Some(true) => {
                pass += 1;
                total += 1;
                "PASS"
            }
            Some(false) => {
                total += 1;
                "FAIL"
            }
            None => "missing (run exp_all first)",
        };
        rows.push(vec![c.id.to_string(), c.claim.to_string(), mark.to_string()]);
    }
    println!("paper-claim verdicts at scale '{}':\n", scale.name());
    for line in format_table(&["experiment", "paper claim", "verdict"], &rows) {
        println!("{line}");
    }
    println!("\n{pass}/{total} claims reproduced (details in results/*.{}.txt)", scale.name());
}
