//! Fig. 5: auto-normalization vs dynamic-range mode collapse.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig05_autonorm -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::fig05_autonorm(&preset);
    result.emit(scale.name());
}
