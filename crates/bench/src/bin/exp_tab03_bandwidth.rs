//! Table 3 + Fig. 9: MBA total-bandwidth Wasserstein-1 distances.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_tab03_bandwidth -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::tab03_bandwidth(&preset);
    result.emit(scale.name());
}
