//! Fig. 11: end-event prediction, train-on-generated test-on-real.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig11_prediction -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = downstream::fig11_prediction(&preset);
    result.emit(scale.name());
}
