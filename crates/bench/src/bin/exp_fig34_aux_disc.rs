//! Figs. 34/35: auxiliary-discriminator ablation.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig34_aux_disc -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::fig34_aux_disc(&preset);
    result.emit(scale.name());
}
