//! Figs. 15-17: WWT attribute histograms and JSD.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig15_wwt_attrs -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::fig15_wwt_attrs(&preset);
    result.emit(scale.name());
}
