//! Fig. 8: GCUT end-event-type histograms.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig08_end_events -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::fig08_end_events(&preset);
    result.emit(scale.name());
}
