//! Extension experiment: feature-attribute correlation preservation on GCUT
//! (the paper's §1 motivating dependence, quantified with a correlation
//! ratio).

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::extra_attr_feature_correlation(&preset);
    result.emit(scale.name());
}
