//! Figs. 18-23: MBA attribute histograms and JSD.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig18_mba_attrs -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::fig18_mba_attrs(&preset);
    result.emit(scale.name());
}
