//! Serving benchmark: request-coalescing (batched) vs one-pass-per-request
//! (unbatched) engines across client concurrency 1/4/16/64, plus the two
//! serving tuning axes added since — the reduced-precision bf16 inference
//! tier and the batch-gather window. Writes `BENCH_serving.json` under the
//! results directory (workspace `results/`, overridable with
//! `DG_RESULTS_DIR`).
//!
//! All modes run the same [`BatchEngine`]; the unbatched reference is
//! `max_fused_requests = 1`, so the only difference measured is fusion —
//! concurrent requests sharing one graph recording and wide GEMMs instead
//! of queuing per-request passes. Coalescing never changes bytes (the
//! fused-vs-sequential property tests pin that), so that comparison is
//! pure throughput/latency.
//!
//! The **precision** dimension compares the f32 and bf16 tiers at
//! concurrency 4 and 16. bf16 output is *not* byte-comparable to f32 —
//! the tier is validated the way the paper validates generated data, by
//! distribution: the `fidelity` block generates a same-seed dataset with
//! each tier and reports the autocorrelation-MSE / Wasserstein-1 /
//! correlation deltas (`dg_metrics::distribution_deltas`) against
//! thresholds CI gates on.
//!
//! The **gather-window** dimension compares `max_wait_us = 0` (drain and
//! go) against a 250 µs window at the same concurrencies: the window
//! trades bounded added latency for wider fused passes.
//!
//! The **plan-cache** dimension compares the generation plan cache
//! (serving default: record the frozen rollout once per chunk shape,
//! replay it with rebound noise on every later pass — DESIGN.md §17)
//! against the `DG_PLAN_CACHE=off` escape hatch that re-records every
//! pass. The cache is bitwise-invisible (property-tested), so this
//! comparison too is pure throughput/latency; it runs on the smoke-size
//! model, where per-pass graph recording is the dominant cost the cache
//! exists to eliminate.
//!
//! Set `DG_BENCH_SMOKE=1` for a fast low-rep pass (used by the CI smoke
//! step that jq-asserts the report fields).

use dg_bench::harness::results_dir;
use dg_bench::presets::{Preset, Scale};
use dg_data::Value;
use dg_datasets::sine;
use dg_metrics::FidelityReport;
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize, Clone, Copy)]
struct ModeStats {
    samples_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    requests: u64,
    /// Fused passes executed; under coalescing this drops below `requests`.
    batches: u64,
}

#[derive(Serialize)]
struct ConcurrencyRow {
    concurrency: usize,
    batched: ModeStats,
    unbatched: ModeStats,
    /// `batched.samples_per_sec / unbatched.samples_per_sec`.
    speedup: f64,
}

#[derive(Serialize)]
struct PrecisionRow {
    concurrency: usize,
    #[serde(rename = "f32")]
    f32_stats: ModeStats,
    #[serde(rename = "bf16")]
    bf16_stats: ModeStats,
    /// `bf16.samples_per_sec / f32.samples_per_sec` — the reduced-precision
    /// tier's throughput payoff at this concurrency.
    speedup_bf16: f64,
}

#[derive(Serialize)]
struct PlanCacheRow {
    concurrency: usize,
    cached: ModeStats,
    uncached: ModeStats,
    /// `cached.samples_per_sec / uncached.samples_per_sec` — what replaying
    /// recorded plans buys over re-recording every pass.
    speedup_cached: f64,
    /// Plan-cache hits/misses accumulated over the cached leg (chunk
    /// granularity; the uncached leg counts nothing by contract).
    hits: u64,
    misses: u64,
}

#[derive(Serialize)]
struct GatherRow {
    concurrency: usize,
    max_wait_us: u64,
    samples_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    requests: u64,
    batches: u64,
}

/// Same-seed f32-vs-bf16 output distributions compared with the paper's
/// probes, plus the thresholds the comparison is gated on.
#[derive(Serialize)]
struct FidelityBlock {
    objects: usize,
    max_lag: usize,
    deltas: FidelityReport,
    autocorr_mse_max: f64,
    wasserstein1_max: f64,
    correlation_distance_max: f64,
    pass: bool,
}

#[derive(Serialize)]
struct Report {
    worker_threads: usize,
    rows_per_request: usize,
    requests_per_client: usize,
    /// Kernel tier the bf16 GEMM family dispatches on this host (Native
    /// needs AVX2+FMA and falls back to Portable otherwise).
    bf16_kernel: String,
    /// Headline numbers: the batched f32 engine at concurrency 4.
    p50_ms: f64,
    p99_ms: f64,
    samples_per_sec: f64,
    /// Headline bf16 payoff: `speedup_bf16` at concurrency 16.
    speedup_bf16: f64,
    /// Headline plan-cache payoff: `speedup_cached` at concurrency 16.
    speedup_cached: f64,
    concurrency: Vec<ConcurrencyRow>,
    precision: Vec<PrecisionRow>,
    gather_window: Vec<GatherRow>,
    plan_cache: Vec<PlanCacheRow>,
    fidelity: FidelityBlock,
}

/// A schema-valid request against the smoke sine dataset (one categorical
/// attribute with two period classes).
fn req(rows: usize, seed: u64) -> SampleRequest {
    SampleRequest { attribute_rows: (0..rows).map(|k| vec![Value::Cat(k % 2)]).collect(), seed }
}

fn run_mode(
    sampler: &Sampler,
    fused: bool,
    clients: usize,
    reqs_per_client: usize,
    rows: usize,
    precision: Precision,
    max_wait_us: u64,
) -> ModeStats {
    let config = ServeConfig {
        max_fused_requests: if fused { ServeConfig::default().max_fused_requests } else { 1 },
        precision,
        max_wait_us,
        ..ServeConfig::default()
    };
    let engine = Arc::new(BatchEngine::new(sampler.clone(), config));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..reqs_per_client {
                    engine.sample_blocking(req(rows, (c * 1000 + i) as u64)).expect("request served");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    engine.shutdown();
    ModeStats {
        samples_per_sec: stats.samples as f64 / wall.max(1e-9),
        p50_ms: stats.p50_ms,
        p99_ms: stats.p99_ms,
        requests: stats.requests,
        batches: stats.batches,
    }
}

fn main() {
    let smoke = std::env::var("DG_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let threads = dg_nn::parallel::num_threads();
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(0);
    let data = sine::generate(&preset.sine, &mut rng);
    let cfg = preset.dg_config(data.schema.max_len);
    let sampler = Sampler::new(DoppelGanger::new(&data, cfg, &mut rng));
    let bf16_kernel = dg_nn::kernels::resolve_bf16(dg_nn::kernels::active()).name().to_string();

    let rows = 4;
    let reqs_per_client = if smoke { 4 } else { 16 };
    println!(
        "bench_serving: {threads} workers, {rows} rows/request, {reqs_per_client} requests/client, \
         bf16 kernel tier {bf16_kernel}\n"
    );
    // One untimed pass warms the persistent worker pool.
    let _ = sampler.sample_threaded(&req(rows, 0), threads);

    let mut concurrency = Vec::new();
    for &clients in &[1usize, 4, 16, 64] {
        let batched = run_mode(&sampler, true, clients, reqs_per_client, rows, Precision::F32, 0);
        let unbatched = run_mode(&sampler, false, clients, reqs_per_client, rows, Precision::F32, 0);
        let speedup = batched.samples_per_sec / unbatched.samples_per_sec.max(1e-9);
        println!(
            "c={clients:<3} batched {:>8.0} samples/s (p50 {:>7.2} ms, p99 {:>7.2} ms, {} passes)   \
             unbatched {:>8.0} samples/s (p50 {:>7.2} ms, p99 {:>7.2} ms)   speedup {speedup:>5.2}x",
            batched.samples_per_sec,
            batched.p50_ms,
            batched.p99_ms,
            batched.batches,
            unbatched.samples_per_sec,
            unbatched.p50_ms,
            unbatched.p99_ms,
        );
        if clients >= 4 && speedup < 1.0 {
            println!("  warning: coalescing did not pay off at concurrency {clients} on this machine");
        }
        concurrency.push(ConcurrencyRow { concurrency: clients, batched, unbatched, speedup });
    }

    // The precision comparison runs on paper-width-plus generators (LSTM
    // hidden 256) with bulk 16-row requests: the smoke dims above (hidden
    // 16) leave generation dominated by graph recording and decode, where
    // neither tier's GEMM kernels are the bottleneck and the bf16 tier's
    // payoff cannot show; tiny requests likewise keep early fused passes
    // too narrow for the wide-GEMM regime the tier targets.
    let mut wide_cfg = preset.dg_config(data.schema.max_len);
    wide_cfg.attr_hidden = 192;
    wide_cfg.lstm_hidden = 256;
    wide_cfg.head_hidden = 192;
    wide_cfg.batch_size = 64;
    let wide_sampler = Sampler::new(DoppelGanger::new(&data, wide_cfg, &mut rng));
    let wide_rows = 16;
    let _ = wide_sampler.sample_threaded(&req(wide_rows, 0), threads);

    println!();
    let mut precision = Vec::new();
    for &clients in &[4usize, 16] {
        let f32_stats = run_mode(&wide_sampler, true, clients, reqs_per_client, wide_rows, Precision::F32, 0);
        let bf16_stats =
            run_mode(&wide_sampler, true, clients, reqs_per_client, wide_rows, Precision::Bf16, 0);
        let speedup_bf16 = bf16_stats.samples_per_sec / f32_stats.samples_per_sec.max(1e-9);
        println!(
            "c={clients:<3} f32 {:>8.0} samples/s   bf16 {:>8.0} samples/s   bf16 speedup {speedup_bf16:>5.2}x",
            f32_stats.samples_per_sec, bf16_stats.samples_per_sec,
        );
        precision.push(PrecisionRow { concurrency: clients, f32_stats, bf16_stats, speedup_bf16 });
    }

    println!();
    let mut gather_window = Vec::new();
    for &clients in &[4usize, 16] {
        for &wait in &[0u64, 250] {
            let s = run_mode(&sampler, true, clients, reqs_per_client, rows, Precision::F32, wait);
            println!(
                "c={clients:<3} max_wait_us={wait:<4} {:>8.0} samples/s (p50 {:>7.2} ms, p99 {:>7.2} ms, {} passes)",
                s.samples_per_sec, s.p50_ms, s.p99_ms, s.batches,
            );
            gather_window.push(GatherRow {
                concurrency: clients,
                max_wait_us: wait,
                samples_per_sec: s.samples_per_sec,
                p50_ms: s.p50_ms,
                p99_ms: s.p99_ms,
                requests: s.requests,
                batches: s.batches,
            });
        }
    }

    // Plan cache on (the serving default) vs the DG_PLAN_CACHE=off escape
    // hatch, everything else equal. Toggling through the shared Arc works
    // because engines clone the sampler handle, not the cache.
    println!();
    let mut plan_cache = Vec::new();
    for &clients in &[4usize, 16] {
        sampler.set_plan_cache_enabled(false);
        let uncached = run_mode(&sampler, true, clients, reqs_per_client, rows, Precision::F32, 0);
        sampler.set_plan_cache_enabled(true);
        let before = sampler.plan_stats();
        let cached = run_mode(&sampler, true, clients, reqs_per_client, rows, Precision::F32, 0);
        let after = sampler.plan_stats();
        let (hits, misses) = (after.0 - before.0, after.1 - before.1);
        let speedup_cached = cached.samples_per_sec / uncached.samples_per_sec.max(1e-9);
        println!(
            "c={clients:<3} cached {:>8.0} samples/s ({} hits / {} misses)   uncached {:>8.0} samples/s   \
             cached speedup {speedup_cached:>5.2}x",
            cached.samples_per_sec, hits, misses, uncached.samples_per_sec,
        );
        plan_cache.push(PlanCacheRow {
            concurrency: clients,
            cached,
            uncached,
            speedup_cached,
            hits,
            misses,
        });
    }

    // Fidelity gate: a same-seed dataset from each tier, compared by
    // distribution exactly as the paper compares generated vs real data.
    let objects = if smoke { 64 } else { 256 };
    let max_lag = 16;
    let mut r_f32 = StdRng::seed_from_u64(7);
    let mut r_bf16 = StdRng::seed_from_u64(7);
    let ds_f32 = wide_sampler.generate_dataset(objects, &mut r_f32);
    let ds_bf16 = wide_sampler.clone().with_precision(Precision::Bf16).generate_dataset(objects, &mut r_bf16);
    let deltas = dg_metrics::distribution_deltas(&ds_f32, &ds_bf16, max_lag);
    let (autocorr_mse_max, wasserstein1_max, correlation_distance_max) = (0.01, 0.05, 0.05);
    let pass = deltas.within(autocorr_mse_max, wasserstein1_max, correlation_distance_max);
    println!(
        "\nfidelity f32 vs bf16 ({objects} objects): autocorr_mse {:.2e} (max {autocorr_mse_max}), \
         w1 {:.2e} (max {wasserstein1_max}), corr {:.2e} (max {correlation_distance_max}) -> {}",
        deltas.autocorr_mse,
        deltas.wasserstein1,
        deltas.correlation_distance,
        if pass { "pass" } else { "FAIL" },
    );
    let fidelity = FidelityBlock {
        objects,
        max_lag,
        deltas,
        autocorr_mse_max,
        wasserstein1_max,
        correlation_distance_max,
        pass,
    };

    let headline = concurrency.iter().find(|r| r.concurrency == 4).expect("concurrency-4 row");
    let bf16_headline = precision.iter().find(|r| r.concurrency == 16).expect("concurrency-16 row");
    let cache_headline = plan_cache.iter().find(|r| r.concurrency == 16).expect("concurrency-16 row");
    let report = Report {
        worker_threads: threads,
        rows_per_request: rows,
        requests_per_client: reqs_per_client,
        bf16_kernel,
        p50_ms: headline.batched.p50_ms,
        p99_ms: headline.batched.p99_ms,
        samples_per_sec: headline.batched.samples_per_sec,
        speedup_bf16: bf16_headline.speedup_bf16,
        speedup_cached: cache_headline.speedup_cached,
        concurrency,
        precision,
        gather_window,
        plan_cache,
        fidelity,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(3);
    }
    let path = dir.join("BENCH_serving.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    // Atomic so a torn write can never leave a half-valid JSON for the CI
    // jq step to mis-parse.
    if let Err(e) = dg_io::atomic_write(&path, json.as_bytes()) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(3);
    }
    println!("\nwrote {}", path.display());
}
