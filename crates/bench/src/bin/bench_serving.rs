//! Serving benchmark: request-coalescing (batched) vs one-pass-per-request
//! (unbatched) engines across client concurrency 1/4/16/64. Writes
//! `BENCH_serving.json` under the results directory (workspace `results/`,
//! overridable with `DG_RESULTS_DIR`).
//!
//! Both modes run the same [`BatchEngine`]; the unbatched reference is
//! `max_fused_requests = 1`, so the only difference measured is fusion —
//! concurrent requests sharing one graph recording and wide GEMMs instead
//! of queuing per-request passes. Coalescing never changes bytes (the
//! fused-vs-sequential property tests pin that), so this is a pure
//! throughput/latency comparison.
//!
//! Set `DG_BENCH_SMOKE=1` for a fast low-rep pass (used by the CI smoke
//! step that jq-asserts the report fields).

use dg_bench::harness::results_dir;
use dg_bench::presets::{Preset, Scale};
use dg_data::Value;
use dg_datasets::sine;
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize, Clone, Copy)]
struct ModeStats {
    samples_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    requests: u64,
    /// Fused passes executed; under coalescing this drops below `requests`.
    batches: u64,
}

#[derive(Serialize)]
struct ConcurrencyRow {
    concurrency: usize,
    batched: ModeStats,
    unbatched: ModeStats,
    /// `batched.samples_per_sec / unbatched.samples_per_sec`.
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    worker_threads: usize,
    rows_per_request: usize,
    requests_per_client: usize,
    /// Headline numbers: the batched engine at concurrency 4.
    p50_ms: f64,
    p99_ms: f64,
    samples_per_sec: f64,
    concurrency: Vec<ConcurrencyRow>,
}

/// A schema-valid request against the smoke sine dataset (one categorical
/// attribute with two period classes).
fn req(rows: usize, seed: u64) -> SampleRequest {
    SampleRequest { attribute_rows: (0..rows).map(|k| vec![Value::Cat(k % 2)]).collect(), seed }
}

fn run_mode(
    sampler: &Sampler,
    fused: bool,
    clients: usize,
    reqs_per_client: usize,
    rows: usize,
) -> ModeStats {
    let config = ServeConfig {
        max_fused_requests: if fused { ServeConfig::default().max_fused_requests } else { 1 },
        ..ServeConfig::default()
    };
    let engine = Arc::new(BatchEngine::new(sampler.clone(), config));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..reqs_per_client {
                    engine.sample_blocking(req(rows, (c * 1000 + i) as u64)).expect("request served");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    engine.shutdown();
    ModeStats {
        samples_per_sec: stats.samples as f64 / wall.max(1e-9),
        p50_ms: stats.p50_ms,
        p99_ms: stats.p99_ms,
        requests: stats.requests,
        batches: stats.batches,
    }
}

fn main() {
    let smoke = std::env::var("DG_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let threads = dg_nn::parallel::num_threads();
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(0);
    let data = sine::generate(&preset.sine, &mut rng);
    let cfg = preset.dg_config(data.schema.max_len);
    let sampler = Sampler::new(DoppelGanger::new(&data, cfg, &mut rng));

    let rows = 4;
    let reqs_per_client = if smoke { 4 } else { 16 };
    println!("bench_serving: {threads} workers, {rows} rows/request, {reqs_per_client} requests/client\n");
    // One untimed pass warms the persistent worker pool.
    let _ = sampler.sample_threaded(&req(rows, 0), threads);

    let mut concurrency = Vec::new();
    for &clients in &[1usize, 4, 16, 64] {
        let batched = run_mode(&sampler, true, clients, reqs_per_client, rows);
        let unbatched = run_mode(&sampler, false, clients, reqs_per_client, rows);
        let speedup = batched.samples_per_sec / unbatched.samples_per_sec.max(1e-9);
        println!(
            "c={clients:<3} batched {:>8.0} samples/s (p50 {:>7.2} ms, p99 {:>7.2} ms, {} passes)   \
             unbatched {:>8.0} samples/s (p50 {:>7.2} ms, p99 {:>7.2} ms)   speedup {speedup:>5.2}x",
            batched.samples_per_sec,
            batched.p50_ms,
            batched.p99_ms,
            batched.batches,
            unbatched.samples_per_sec,
            unbatched.p50_ms,
            unbatched.p99_ms,
        );
        if clients >= 4 && speedup < 1.0 {
            println!("  warning: coalescing did not pay off at concurrency {clients} on this machine");
        }
        concurrency.push(ConcurrencyRow { concurrency: clients, batched, unbatched, speedup });
    }

    let headline = concurrency.iter().find(|r| r.concurrency == 4).expect("concurrency-4 row");
    let report = Report {
        worker_threads: threads,
        rows_per_request: rows,
        requests_per_client: reqs_per_client,
        p50_ms: headline.batched.p50_ms,
        p99_ms: headline.batched.p99_ms,
        samples_per_sec: headline.batched.samples_per_sec,
        concurrency,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(3);
    }
    let path = dir.join("BENCH_serving.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    // Atomic so a torn write can never leave a half-valid JSON for the CI
    // jq step to mis-parse.
    if let Err(e) = dg_io::atomic_write(&path, json.as_bytes()) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(3);
    }
    println!("\nwrote {}", path.display());
}
