//! Figs. 13/32: DP-SGD fidelity cost on WWT autocorrelation.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig13_dp -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = privacy::fig13_dp(&preset);
    result.emit(scale.name());
}
