//! Figs. 24-26: nearest-neighbour memorization probe.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig24_memorization -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::fig24_memorization(&preset);
    result.emit(scale.name());
}
