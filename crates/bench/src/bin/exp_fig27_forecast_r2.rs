//! Fig. 27: WWT forecasting R2, train-on-generated test-on-real.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig27_forecast_r2 -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = downstream::fig27_forecast_r2(&preset);
    result.emit(scale.name());
}
