//! Wall-clock benchmark of the training step: serial vs parallel kernels and
//! DP-SGD. Writes `BENCH_training.json` under the results directory
//! (workspace `results/`, overridable with `DG_RESULTS_DIR`).
//!
//! Criterion gives statistically careful per-kernel numbers; this binary is
//! the quick end-to-end check that the deterministic thread fan-out actually
//! pays off (and by how much) on the current machine. On a single-core
//! machine the speedups legitimately come out ~1.0.

use dg_bench::harness::results_dir;
use dg_bench::presets::{Preset, Scale};
use dg_datasets::sine;
use dg_nn::parallel::num_threads;
use dg_nn::tensor::Tensor;
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct Case {
    name: String,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    hardware_threads: usize,
    worker_threads: usize,
    /// Non-DP discriminator step, for reading DP overhead off the report.
    plain_d_step_ms: f64,
    cases: Vec<Case>,
}

fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn case(name: &str, reps: usize, mut serial: impl FnMut(), mut parallel: impl FnMut()) -> Case {
    // Warm-up once each so thread-pool spin-up and cache effects don't land
    // on the first timed rep.
    serial();
    parallel();
    let serial_ms = time_ms(reps, &mut serial);
    let parallel_ms = time_ms(reps, &mut parallel);
    let c = Case { name: name.into(), serial_ms, parallel_ms, speedup: serial_ms / parallel_ms };
    println!(
        "{:<24} serial {:>9.3} ms   parallel {:>9.3} ms   speedup {:>5.2}x",
        c.name, c.serial_ms, c.parallel_ms, c.speedup
    );
    c
}

fn main() {
    let threads = num_threads();
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!("bench_training: {hw} hardware threads, {threads} workers (DG_NUM_THREADS to override)\n");
    let mut cases = Vec::new();

    // Dense kernels: the forward matmul and both backward transposed forms.
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(256, 256, 1.0, &mut rng);
    let b = Tensor::randn(256, 256, 1.0, &mut rng);
    cases.push(case(
        "matmul_256",
        20,
        || {
            black_box(a.matmul_threaded(&b, 1));
        },
        || {
            black_box(a.matmul_threaded(&b, threads));
        },
    ));
    cases.push(case(
        "matmul_bt_256",
        20,
        || {
            black_box(a.matmul_bt_threaded(&b, 1));
        },
        || {
            black_box(a.matmul_bt_threaded(&b, threads));
        },
    ));
    cases.push(case(
        "matmul_at_256",
        20,
        || {
            black_box(a.matmul_at_threaded(&b, 1));
        },
        || {
            black_box(a.matmul_at_threaded(&b, threads));
        },
    ));

    // Full training steps on the smoke-scale sine dataset.
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(1);
    let data = sine::generate(&preset.sine, &mut rng);
    let cfg = preset.dg_config(data.schema.max_len);
    let model = DoppelGanger::new(&data, cfg, &mut rng);
    let encoded = model.encode(&data);
    let idx: Vec<usize> = (0..16.min(encoded.num_samples())).collect();

    let mut plain = Trainer::new(model.clone());
    let mut prng = StdRng::seed_from_u64(2);
    let plain_d_step_ms = time_ms(5, || {
        black_box(plain.d_step(&encoded, &idx, &mut prng));
    });
    println!("{:<24} {:>9.3} ms (non-DP reference)", "d_step_b16", plain_d_step_ms);

    // DP-SGD: the per-sample loop is the parallelism target of interest.
    let mut dp_serial = Trainer::new(model.clone()).with_dp(DpConfig::moderate());
    let mut dp_parallel = Trainer::new(model).with_dp(DpConfig::moderate());
    let mut rs = StdRng::seed_from_u64(3);
    let mut rp = StdRng::seed_from_u64(3);
    cases.push(case(
        "dp_step_b16",
        5,
        || {
            black_box(dp_serial.d_step_dp_threaded(&encoded, &idx, &mut rs, 1));
        },
        || {
            black_box(dp_parallel.d_step_dp_threaded(&encoded, &idx, &mut rp, threads));
        },
    ));

    // The serial and parallel DP trainers consumed identical RNG streams, so
    // their parameters must be bitwise equal — a free end-to-end
    // determinism check on every bench run.
    for (id, _, t) in dp_serial.model.store.iter() {
        assert_eq!(
            t.as_slice(),
            dp_parallel.model.store.get(id).as_slice(),
            "parallel DP step diverged from serial for parameter {id:?}"
        );
    }
    println!("\ndeterminism: parallel DP parameters bitwise equal to serial ✓");

    let report = Report { hardware_threads: hw, worker_threads: threads, plain_d_step_ms, cases };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_training.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&path, json).expect("write BENCH_training.json");
    println!("wrote {}", path.display());
}
