//! Wall-clock benchmark of the training step: serial vs parallel kernels and
//! DP-SGD. Writes `BENCH_training.json` under the results directory
//! (workspace `results/`, overridable with `DG_RESULTS_DIR`).
//!
//! Criterion gives statistically careful per-kernel numbers; this binary is
//! the quick end-to-end check that the deterministic thread fan-out actually
//! pays off (and by how much) on the current machine. On a single-core
//! machine the speedups legitimately come out ~1.0.

use dg_bench::harness::results_dir;
use dg_bench::presets::{Preset, Scale};
use dg_datasets::sine;
use dg_nn::parallel::num_threads;
use dg_nn::tensor::Tensor;
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Counting global allocator (`--features alloc-telemetry` only): every
/// `alloc`/`alloc_zeroed`/`realloc` bumps two relaxed atomics, letting the
/// pooled-vs-fresh comparison below report allocations per training step.
#[cfg(feature = "alloc-telemetry")]
mod alloc_telemetry {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// `(allocations, bytes)` since process start.
    pub fn snapshot() -> (u64, u64) {
        (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
    }
}

/// `(allocations, bytes)` so far, or `(0, 0)` without `alloc-telemetry`.
fn alloc_snapshot() -> (u64, u64) {
    #[cfg(feature = "alloc-telemetry")]
    {
        alloc_telemetry::snapshot()
    }
    #[cfg(not(feature = "alloc-telemetry"))]
    {
        (0, 0)
    }
}

#[derive(Serialize)]
struct Case {
    name: String,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    hardware_threads: usize,
    worker_threads: usize,
    /// Dispatch tier the run executed under (`DG_KERNEL` / auto-detect).
    active_kernel: String,
    /// Single-threaded 256³ matmul GFLOP/s under the forced scalar tier.
    kernel_scalar_gflops: f64,
    /// Single-threaded 256³ matmul GFLOP/s under the active tier.
    kernel_active_gflops: f64,
    /// `kernel_active_gflops / kernel_scalar_gflops` — how much of any
    /// step-time change is explained by the kernel tier alone.
    kernel_speedup: f64,
    /// Non-DP discriminator step time measured by a `DG_KERNEL=scalar`
    /// re-exec of this binary — the end-to-end step-time baseline the tiled
    /// kernels are compared against (absent if the re-exec failed).
    #[serde(skip_serializing_if = "Option::is_none")]
    scalar_d_step_ms: Option<f64>,
    /// `scalar_d_step_ms / plain_d_step_ms` — measured end-to-end fit-step
    /// improvement from kernel dispatch alone.
    #[serde(skip_serializing_if = "Option::is_none")]
    step_speedup_vs_scalar: Option<f64>,
    /// Non-DP discriminator step, for reading DP overhead off the report.
    plain_d_step_ms: f64,
    /// Mean wall time of the discriminator phase per `fit` iteration
    /// (includes generation; see [`StepMetrics::d_ms`]).
    fit_d_phase_ms: f64,
    /// Mean wall time of the generator phase per `fit` iteration.
    fit_g_phase_ms: f64,
    /// Mean wall time spent generating fake batches per `fit` iteration.
    fit_generation_phase_ms: f64,
    cases: Vec<Case>,
    /// Heap allocations per pooled-workspace d step (`alloc-telemetry` only).
    #[serde(skip_serializing_if = "Option::is_none")]
    allocs_per_step: Option<u64>,
    /// Heap bytes per pooled-workspace d step (`alloc-telemetry` only).
    #[serde(skip_serializing_if = "Option::is_none")]
    bytes_per_step: Option<u64>,
    /// Heap allocations per fresh-allocation d step (`alloc-telemetry` only).
    #[serde(skip_serializing_if = "Option::is_none")]
    fresh_allocs_per_step: Option<u64>,
    /// Heap bytes per fresh-allocation d step (`alloc-telemetry` only).
    #[serde(skip_serializing_if = "Option::is_none")]
    fresh_bytes_per_step: Option<u64>,
    /// `fresh_allocs_per_step / allocs_per_step` (`alloc-telemetry` only).
    #[serde(skip_serializing_if = "Option::is_none")]
    alloc_reduction: Option<f64>,
}

fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn case(name: &str, reps: usize, mut serial: impl FnMut(), mut parallel: impl FnMut()) -> Case {
    // Warm-up once each so thread-pool spin-up and cache effects don't land
    // on the first timed rep.
    serial();
    parallel();
    let serial_ms = time_ms(reps, &mut serial);
    let parallel_ms = time_ms(reps, &mut parallel);
    let c = Case { name: name.into(), serial_ms, parallel_ms, speedup: serial_ms / parallel_ms };
    println!(
        "{:<24} serial {:>9.3} ms   parallel {:>9.3} ms   speedup {:>5.2}x",
        c.name, c.serial_ms, c.parallel_ms, c.speedup
    );
    c
}

/// Re-runs this binary with `DG_KERNEL=scalar` in step-only mode (the
/// dispatch tier is latched in a `OnceLock`, so a fresh process is the only
/// way to measure another tier end-to-end) and returns the scalar-tier
/// d-step time it prints.
fn scalar_step_ms_via_reexec() -> Option<f64> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .env("DG_KERNEL", "scalar")
        .env("DG_BENCH_STEP_ONLY", "1")
        .output()
        .ok()?;
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout.lines().find_map(|l| l.strip_prefix("STEP_MS ")).and_then(|v| v.trim().parse::<f64>().ok())
}

/// Times the non-DP d step on the standard smoke setup. Factored out so the
/// `DG_BENCH_STEP_ONLY` child process runs exactly the measurement the
/// parent does.
fn plain_step_ms() -> f64 {
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(1);
    let data = sine::generate(&preset.sine, &mut rng);
    let cfg = preset.dg_config(data.schema.max_len);
    let model = DoppelGanger::new(&data, cfg, &mut rng);
    let encoded = model.encode(&data);
    let idx: Vec<usize> = (0..16.min(encoded.num_samples())).collect();
    let mut plain = Trainer::new(model);
    let mut prng = StdRng::seed_from_u64(2);
    time_ms(5, || {
        black_box(plain.d_step(&encoded, &idx, &mut prng));
    })
}

fn main() {
    if std::env::var("DG_BENCH_STEP_ONLY").is_ok() {
        println!("STEP_MS {}", plain_step_ms());
        return;
    }
    let threads = num_threads();
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!("bench_training: {hw} hardware threads, {threads} workers (DG_NUM_THREADS to override)\n");
    let mut cases = Vec::new();

    // Dense kernels: the forward matmul and both backward transposed forms.
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(256, 256, 1.0, &mut rng);
    let b = Tensor::randn(256, 256, 1.0, &mut rng);

    // Kernel-tier context for the step times below: scalar vs active tier at
    // 256³, single-threaded (the full sweep lives in BENCH_kernels.json).
    let active_kernel = dg_nn::kernels::active();
    let cube_gflops = |ms: f64| (2.0 * 256.0_f64.powi(3)) / (ms * 1e-3) / 1e9;
    let scalar_ms = time_ms(12, || {
        black_box(a.matmul_with_kind(&b, 1, dg_nn::kernels::KernelKind::Scalar));
    });
    let active_ms = time_ms(12, || {
        black_box(a.matmul_with_kind(&b, 1, active_kernel));
    });
    let kernel_scalar_gflops = cube_gflops(scalar_ms);
    let kernel_active_gflops = cube_gflops(active_ms);
    println!(
        "{:<24} scalar {:>6.2} GF/s   {} {:>6.2} GF/s   speedup {:>5.2}x",
        "kernel_tier_256",
        kernel_scalar_gflops,
        active_kernel.name(),
        kernel_active_gflops,
        kernel_active_gflops / kernel_scalar_gflops
    );

    cases.push(case(
        "matmul_256",
        20,
        || {
            black_box(a.matmul_threaded(&b, 1));
        },
        || {
            black_box(a.matmul_threaded(&b, threads));
        },
    ));
    cases.push(case(
        "matmul_bt_256",
        20,
        || {
            black_box(a.matmul_bt_threaded(&b, 1));
        },
        || {
            black_box(a.matmul_bt_threaded(&b, threads));
        },
    ));
    cases.push(case(
        "matmul_at_256",
        20,
        || {
            black_box(a.matmul_at_threaded(&b, 1));
        },
        || {
            black_box(a.matmul_at_threaded(&b, threads));
        },
    ));

    // Full training steps on the smoke-scale sine dataset.
    let preset = Preset::new(Scale::Smoke);
    let mut rng = StdRng::seed_from_u64(1);
    let data = sine::generate(&preset.sine, &mut rng);
    let cfg = preset.dg_config(data.schema.max_len);
    let model = DoppelGanger::new(&data, cfg, &mut rng);
    let encoded = model.encode(&data);
    let idx: Vec<usize> = (0..16.min(encoded.num_samples())).collect();

    let mut plain = Trainer::new(model.clone());
    let mut prng = StdRng::seed_from_u64(2);
    let plain_d_step_ms = time_ms(5, || {
        black_box(plain.d_step(&encoded, &idx, &mut prng));
    });
    println!("{:<24} {:>9.3} ms (non-DP reference)", "d_step_b16", plain_d_step_ms);

    // End-to-end step-time delta attributable to kernel dispatch: the same
    // measurement under a forced-scalar child process.
    let scalar_d_step_ms = scalar_step_ms_via_reexec();
    let step_speedup_vs_scalar = scalar_d_step_ms.map(|s| s / plain_d_step_ms);
    if let (Some(s), Some(sp)) = (scalar_d_step_ms, step_speedup_vs_scalar) {
        println!("{:<24} {s:>9.3} ms (DG_KERNEL=scalar re-exec, {sp:.2}x slower step)", "d_step_b16_scalar");
    }

    // Per-phase wall time over a short `fit` run, straight from the step
    // telemetry the trainer now reports on every iteration.
    const FIT_ITERS: usize = 5;
    let mut fit_trainer = Trainer::new(model.clone());
    let mut frng = StdRng::seed_from_u64(5);
    let (mut d_ms, mut g_ms, mut gen_ms) = (0.0, 0.0, 0.0);
    fit_trainer.fit(&encoded, FIT_ITERS, &mut frng, |m| {
        d_ms += m.d_ms;
        g_ms += m.g_ms;
        gen_ms += m.gen_ms;
    });
    let fit_d_phase_ms = d_ms / FIT_ITERS as f64;
    let fit_g_phase_ms = g_ms / FIT_ITERS as f64;
    let fit_generation_phase_ms = gen_ms / FIT_ITERS as f64;
    println!(
        "{:<24} d {:>9.3} ms   g {:>9.3} ms   generation {:>9.3} ms (per fit iteration)",
        "fit_phases", fit_d_phase_ms, fit_g_phase_ms, fit_generation_phase_ms
    );

    // DP-SGD: the per-sample loop is the parallelism target of interest.
    let mut dp_serial = Trainer::new(model.clone()).with_dp(DpConfig::moderate());
    let mut dp_parallel = Trainer::new(model).with_dp(DpConfig::moderate());
    let mut rs = StdRng::seed_from_u64(3);
    let mut rp = StdRng::seed_from_u64(3);
    cases.push(case(
        "dp_step_b16",
        5,
        || {
            black_box(dp_serial.d_step_dp_threaded(&encoded, &idx, &mut rs, 1));
        },
        || {
            black_box(dp_parallel.d_step_dp_threaded(&encoded, &idx, &mut rp, threads));
        },
    ));

    // The serial and parallel DP trainers consumed identical RNG streams, so
    // their parameters must be bitwise equal — a free end-to-end
    // determinism check on every bench run.
    for (id, _, t) in dp_serial.model.store.iter() {
        assert_eq!(
            t.as_slice(),
            dp_parallel.model.store.get(id).as_slice(),
            "parallel DP step diverged from serial for parameter {id:?}"
        );
    }
    println!("\ndeterminism: parallel DP parameters bitwise equal to serial ✓");

    // Allocation churn: warm pooled-workspace steps vs fresh allocation on
    // the same model and RNG stream. Per-step counts come from the counting
    // global allocator when built with `--features alloc-telemetry`;
    // without it the bitwise parameter check below still runs.
    const ALLOC_STEPS: u64 = 5;
    let measure = |tr: &mut Trainer, rng: &mut StdRng| -> (u64, u64) {
        // One warm-up step populates the buffer pool and the Adam state.
        black_box(tr.d_step(&encoded, &idx, rng));
        let (a0, b0) = alloc_snapshot();
        for _ in 0..ALLOC_STEPS {
            black_box(tr.d_step(&encoded, &idx, rng));
        }
        let (a1, b1) = alloc_snapshot();
        ((a1 - a0) / ALLOC_STEPS, (b1 - b0) / ALLOC_STEPS)
    };
    let mut pooled = Trainer::new(dp_serial.model.clone());
    let mut fresh = Trainer::new(dp_serial.model.clone());
    fresh.set_buffer_pooling(false);
    let mut r_pooled = StdRng::seed_from_u64(4);
    let mut r_fresh = StdRng::seed_from_u64(4);
    let (pooled_allocs, pooled_bytes) = measure(&mut pooled, &mut r_pooled);
    let (fresh_allocs, fresh_bytes) = measure(&mut fresh, &mut r_fresh);

    // Pooling only changes where buffers live, never their contents: the
    // same-seed pooled and fresh runs must end at bitwise-equal parameters.
    for (id, _, t) in pooled.model.store.iter() {
        assert_eq!(
            t.as_slice(),
            fresh.model.store.get(id).as_slice(),
            "pooled-workspace step diverged from fresh allocation for parameter {id:?}"
        );
    }
    println!("determinism: pooled-workspace parameters bitwise equal to fresh allocation ✓");

    let telemetry = cfg!(feature = "alloc-telemetry");
    let alloc_reduction =
        if telemetry && pooled_allocs > 0 { Some(fresh_allocs as f64 / pooled_allocs as f64) } else { None };
    if telemetry {
        println!(
            "allocs/step: pooled {pooled_allocs} ({pooled_bytes} B) vs fresh {fresh_allocs} \
             ({fresh_bytes} B), reduction {:.1}x",
            alloc_reduction.unwrap_or(f64::INFINITY)
        );
    }

    let report = Report {
        hardware_threads: hw,
        worker_threads: threads,
        active_kernel: active_kernel.name().into(),
        kernel_scalar_gflops,
        kernel_active_gflops,
        kernel_speedup: kernel_active_gflops / kernel_scalar_gflops,
        scalar_d_step_ms,
        step_speedup_vs_scalar,
        plain_d_step_ms,
        fit_d_phase_ms,
        fit_g_phase_ms,
        fit_generation_phase_ms,
        cases,
        allocs_per_step: telemetry.then_some(pooled_allocs),
        bytes_per_step: telemetry.then_some(pooled_bytes),
        fresh_allocs_per_step: telemetry.then_some(fresh_allocs),
        fresh_bytes_per_step: telemetry.then_some(fresh_bytes),
        alloc_reduction,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(3);
    }
    let path = dir.join("BENCH_training.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    // Atomic so a torn write can never leave a half-valid JSON for the CI
    // jq step to mis-parse.
    if let Err(e) = dg_io::atomic_write(&path, json.as_bytes()) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(3);
    }
    println!("wrote {}", path.display());
}
