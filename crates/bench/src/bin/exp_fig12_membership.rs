//! Figs. 12/31: membership-inference success vs training size.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig12_membership -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = privacy::fig12_membership(&preset);
    result.emit(scale.name());
}
