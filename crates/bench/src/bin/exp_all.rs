//! Runs the complete experiment battery (every table and figure of the
//! paper's evaluation) and saves each report under `results/`.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_all -- [smoke|quick|paper]`

use dg_bench::experiments::all_experiments;
use dg_bench::presets::{Preset, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running the full battery at scale '{}'", scale.name());
    let t0 = Instant::now();
    for (id, run) in all_experiments() {
        let t = Instant::now();
        eprintln!("[{:>7.1?}] starting {id}", t0.elapsed());
        let result = run(&preset);
        result.emit(scale.name());
        eprintln!("[{:>7.1?}] finished {id} in {:.1?}", t0.elapsed(), t.elapsed());
    }
    eprintln!("battery complete in {:.1?}", t0.elapsed());
}
