//! Fig. 4: feature batch size S vs autocorrelation MSE.
//!
//! Usage: `cargo run --release -p dg-bench --bin exp_fig04_batch_size -- [smoke|quick|paper]`

#[allow(unused_imports)]
use dg_bench::experiments::{downstream, fidelity, flexibility, privacy};
use dg_bench::presets::{Preset, Scale};

fn main() {
    let scale = Scale::from_env();
    let preset = Preset::new(scale);
    eprintln!("running at scale '{}'", scale.name());
    let result = fidelity::fig04_batch_size(&preset);
    result.emit(scale.name());
}
