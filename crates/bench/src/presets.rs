//! Experiment scale presets.
//!
//! Every experiment runs at one of three scales:
//!
//! * `smoke` — seconds; used by integration tests to exercise the full
//!   pipeline;
//! * `quick` — minutes on a laptop CPU; the default for
//!   `cargo run --release --bin exp_*`, sized to show the paper's *shape*
//!   (who wins, where the crossovers are);
//! * `paper` — hours; closest to the paper's dataset/training sizes that a CPU
//!   build can reasonably attempt.

use dg_datasets::{GcutConfig, MbaConfig, SineConfig, WwtConfig};
use doppelganger::DgConfig;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds; integration-test sized.
    Smoke,
    /// Minutes; the default experiment preset.
    Quick,
    /// Hours; paper-sized (CPU permitting).
    Paper,
}

impl Scale {
    /// Parses from a CLI argument / env string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Reads the scale from the first CLI argument or the `DG_SCALE`
    /// environment variable, defaulting to `Quick`.
    pub fn from_env() -> Scale {
        if let Some(arg) = std::env::args().nth(1) {
            if let Some(s) = Scale::parse(&arg) {
                return s;
            }
        }
        if let Ok(v) = std::env::var("DG_SCALE") {
            if let Some(s) = Scale::parse(&v) {
                return s;
            }
        }
        Scale::Quick
    }

    /// Short name for filenames and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// All workload parameters for one scale.
#[derive(Debug, Clone)]
pub struct Preset {
    /// The scale this preset was built for.
    pub scale: Scale,
    /// WWT simulator configuration.
    pub wwt: WwtConfig,
    /// MBA simulator configuration.
    pub mba: MbaConfig,
    /// GCUT simulator configuration.
    pub gcut: GcutConfig,
    /// Sine toy configuration (smoke tests).
    pub sine: SineConfig,
    /// DoppelGANger training iterations.
    pub dg_iterations: usize,
    /// Naive-GAN training iterations.
    pub naive_gan_iterations: usize,
    /// AR training steps.
    pub ar_steps: usize,
    /// RNN training steps.
    pub rnn_steps: usize,
    /// HMM EM iterations.
    pub hmm_iterations: usize,
    /// Synthetic samples generated per model for fidelity metrics.
    pub gen_samples: usize,
    /// Attribute-retraining iterations (flexibility experiments).
    pub retrain_iterations: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Preset {
    /// Builds the preset for a scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Smoke => Preset {
                scale,
                wwt: WwtConfig {
                    num_objects: 40,
                    length: 64,
                    short_period: 7,
                    long_period: 24,
                    ..WwtConfig::default()
                },
                mba: MbaConfig::quick(60),
                gcut: GcutConfig::quick(60),
                sine: SineConfig { num_objects: 40, length: 24, periods: vec![6, 12], noise_sigma: 0.05 },
                dg_iterations: 30,
                naive_gan_iterations: 30,
                ar_steps: 60,
                rnn_steps: 30,
                hmm_iterations: 3,
                gen_samples: 40,
                retrain_iterations: 40,
                seed: 7,
            },
            Scale::Quick => Preset {
                scale,
                wwt: WwtConfig::quick(300),
                mba: MbaConfig::quick(400),
                gcut: GcutConfig::quick(400),
                sine: SineConfig::default(),
                dg_iterations: 900,
                naive_gan_iterations: 900,
                ar_steps: 800,
                rnn_steps: 300,
                hmm_iterations: 12,
                gen_samples: 300,
                retrain_iterations: 400,
                seed: 7,
            },
            Scale::Paper => Preset {
                scale,
                wwt: WwtConfig { num_objects: 2000, ..WwtConfig::default() }, // length 550, periods 7/365
                mba: MbaConfig::default(),
                gcut: GcutConfig { num_objects: 2000, max_len: 50, num_features: 9 },
                sine: SineConfig::default(),
                dg_iterations: 6000,
                naive_gan_iterations: 6000,
                ar_steps: 4000,
                rnn_steps: 1500,
                hmm_iterations: 20,
                gen_samples: 2000,
                retrain_iterations: 2000,
                seed: 7,
            },
        }
    }

    /// DoppelGANger config matched to this scale for a dataset of length
    /// `max_len` (the recommended `S` rule applied).
    pub fn dg_config(&self, max_len: usize) -> DgConfig {
        let base = match self.scale {
            Scale::Smoke => {
                let mut c = DgConfig::quick();
                c.attr_hidden = 16;
                c.lstm_hidden = 16;
                c.head_hidden = 16;
                c.disc_hidden = 24;
                c.disc_depth = 2;
                c.batch_size = 16;
                c
            }
            Scale::Quick => DgConfig::quick(),
            Scale::Paper => DgConfig::paper(),
        };
        base.with_recommended_s(max_len)
    }

    /// AR config matched to this scale.
    pub fn ar_config(&self) -> dg_baselines::ArConfig {
        let mut c = match self.scale {
            Scale::Paper => dg_baselines::ArConfig::paper(),
            _ => dg_baselines::ArConfig::default(),
        };
        c.train_steps = self.ar_steps;
        if self.scale == Scale::Smoke {
            c.hidden = 24;
            c.depth = 2;
        }
        c
    }

    /// RNN config matched to this scale.
    pub fn rnn_config(&self) -> dg_baselines::RnnConfig {
        let mut c = match self.scale {
            Scale::Paper => dg_baselines::RnnConfig::paper(),
            _ => dg_baselines::RnnConfig::default(),
        };
        c.train_steps = self.rnn_steps;
        if self.scale == Scale::Smoke {
            c.hidden = 16;
        }
        c
    }

    /// HMM config matched to this scale.
    pub fn hmm_config(&self) -> dg_baselines::HmmConfig {
        dg_baselines::HmmConfig {
            num_states: if self.scale == Scale::Smoke { 4 } else { 10 },
            em_iterations: self.hmm_iterations,
            var_floor: 1e-4,
        }
    }

    /// Naive-GAN config matched to this scale.
    pub fn naive_gan_config(&self) -> dg_baselines::NaiveGanConfig {
        let mut c = match self.scale {
            Scale::Paper => dg_baselines::NaiveGanConfig::paper(),
            _ => dg_baselines::NaiveGanConfig::default(),
        };
        c.train_steps = self.naive_gan_iterations;
        if self.scale == Scale::Smoke {
            c.gen_hidden = 24;
            c.gen_depth = 2;
            c.disc_hidden = 24;
            c.disc_depth = 2;
            c.batch = 16;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn presets_scale_monotonically() {
        let s = Preset::new(Scale::Smoke);
        let q = Preset::new(Scale::Quick);
        let p = Preset::new(Scale::Paper);
        assert!(s.dg_iterations < q.dg_iterations && q.dg_iterations < p.dg_iterations);
        assert!(s.wwt.num_objects < q.wwt.num_objects && q.wwt.num_objects < p.wwt.num_objects);
        assert_eq!(p.wwt.length, 550);
        assert_eq!(p.wwt.long_period, 365);
    }

    #[test]
    fn dg_config_applies_recommended_s() {
        let p = Preset::new(Scale::Paper);
        assert_eq!(p.dg_config(550).feature_batch_size, 11);
        let q = Preset::new(Scale::Quick);
        assert_eq!(q.dg_config(160).feature_batch_size, 4);
    }
}
