//! Kill-resume at the process level: SIGKILL a checkpointing `dg train`
//! mid-run, resume, and require the released parameters to be
//! byte-identical to an uninterrupted run's. Also: resume must survive a
//! truncated or bit-flipped newest checkpoint by falling back to an older
//! one.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const ITERS: &str = "10";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dg-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dg(args: &[&str], dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dg")).args(args).current_dir(dir).output().expect("spawn dg")
}

fn demo(dir: &Path) {
    let out = dg(&["demo", "--out", "data.json", "--objects", "16", "--length", "10"], dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

fn train_args<'a>(model: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
    let mut v = vec![
        "train",
        "--data",
        "data.json",
        "--out",
        model,
        "--iterations",
        ITERS,
        "--batch",
        "8",
        "--checkpoint-every",
        "1",
    ];
    v.extend_from_slice(extra);
    v
}

fn checkpoint_files(dir: &Path, model: &str) -> Vec<PathBuf> {
    let ckpt_dir = dir.join(format!("{model}.ckpts"));
    let mut files: Vec<PathBuf> = std::fs::read_dir(&ckpt_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "dgart"))
                .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("ckpt-")))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// Starts a checkpointing train, SIGKILLs it once at least `min_ckpts`
/// checkpoints are on disk (or lets it finish if it is faster than us —
/// resume must be byte-exact in that case too).
fn train_and_kill(dir: &Path, model: &str, min_ckpts: usize) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dg"))
        .args(train_args(model, &[]))
        .current_dir(dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn dg train");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if checkpoint_files(dir, model).len() >= min_ckpts {
            let _ = child.kill(); // SIGKILL: no destructors, no flushing
            break;
        }
        if child.try_wait().expect("try_wait").is_some() {
            break; // finished before we could kill it
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared within 120s");
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.wait();
}

#[test]
fn sigkill_then_resume_matches_uninterrupted_run_bitwise() {
    let dir = tmpdir("resume");
    demo(&dir);

    // Ground truth: the same run, never interrupted.
    let out = dg(&train_args("full.json", &[]), &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    train_and_kill(&dir, "part.json", 2);
    assert!(!checkpoint_files(&dir, "part.json").is_empty(), "kill left no checkpoints");

    let out = dg(&train_args("part.json", &["--resume", "--run-log", "resume.jsonl"]), &dir);
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));

    let full = std::fs::read(dir.join("full.json")).unwrap();
    let resumed = std::fs::read(dir.join("part.json")).unwrap();
    assert_eq!(full, resumed, "resumed run diverged from the uninterrupted run");

    // The run log carries a structured Resumed event (asserted with jq in CI).
    let log = std::fs::read_to_string(dir.join("resume.jsonl")).unwrap();
    assert!(log.lines().any(|l| l.contains("\"Resumed\"")), "no Resumed event in:\n{log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_checkpoints_fall_back_to_an_older_one() {
    let dir = tmpdir("corrupt");
    demo(&dir);

    let out = dg(&train_args("full.json", &[]), &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = dg(&train_args("m.json", &[]), &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let files = checkpoint_files(&dir, "m.json");
    assert!(files.len() >= 3, "expected a rotated set, got {files:?}");

    // Power-loss truncation of the newest checkpoint...
    let newest = files.last().unwrap();
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();
    // ...and a media bit-flip in the second-newest.
    let second = &files[files.len() - 2];
    let mut bytes = std::fs::read(second).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(second, &bytes).unwrap();

    let out = dg(&train_args("m.json", &["--resume", "--run-log", "fallback.jsonl"]), &dir);
    assert!(out.status.success(), "fallback resume failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("skipped unusable checkpoint"), "no skip warnings in: {stderr}");

    // It fell back past both corrupt files, retrained the tail, and landed
    // on the same parameters as the uninterrupted run.
    let log = std::fs::read_to_string(dir.join("fallback.jsonl")).unwrap();
    assert!(log.lines().any(|l| l.contains("\"Resumed\"") && l.contains("\"skipped\":2")), "{log}");
    let full = std::fs::read(dir.join("full.json")).unwrap();
    let recovered = std::fs::read(dir.join("m.json")).unwrap();
    assert_eq!(full, recovered, "fallback resume diverged from the uninterrupted run");
    let _ = std::fs::remove_dir_all(&dir);
}
