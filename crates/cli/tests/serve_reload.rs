//! End-to-end hot-reload atomicity of `dg serve` at the process level:
//! publish a release, serve requests over TCP, advance the store's `latest`
//! pointer mid-stream, and require responses to switch releases atomically —
//! every response must be byte-identical to a direct `dg generate
//! --conditioned` pass against the release whose `seq` it reports, with no
//! response ever mixing the two.

use dg_cli::{WireRequest, WireResponse};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dg-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dg(args: &[&str], dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dg")).args(args).current_dir(dir).output().expect("spawn dg")
}

fn dg_ok(args: &[&str], dir: &Path) -> String {
    let out = dg(args, dir);
    assert!(out.status.success(), "dg {args:?} failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Kills the serve child if the test panics before its clean exit.
struct ChildGuard(Option<Child>);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut c) = self.0.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Object bytes of a `dg generate --conditioned` ground-truth dataset.
fn ground_truth_objects(dir: &Path, name: &str) -> String {
    let ds: dg_data::Dataset =
        serde_json::from_str(&std::fs::read_to_string(dir.join(name)).unwrap()).unwrap();
    serde_json::to_string(&ds.objects).unwrap()
}

/// Extracts an unsigned JSON field from a raw log/summary line without a
/// full parse (keeps the test independent of serde_json Value support).
fn u64_field(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).unwrap_or_else(|| panic!("no {key} field in {line:?}"));
    line[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("bad {key} value in {line:?}: {e}"))
}

fn send(writer: &mut impl Write, reader: &mut impl BufRead, req: &WireRequest) -> WireResponse {
    writeln!(writer, "{}", serde_json::to_string(req).unwrap()).unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde_json::from_str(line.trim()).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

#[test]
fn serve_switches_releases_atomically_when_the_pointer_advances() {
    const MAX_REQUESTS: u64 = 40;
    let dir = tmpdir("reload");
    dg_ok(&["demo", "--out", "data.json", "--objects", "16", "--length", "10"], &dir);

    // Two distinct releases of the same schema: different training seeds.
    dg_ok(&["train", "--data", "data.json", "--out", "a.json", "--iterations", "2", "--batch", "8"], &dir);
    dg_ok(
        &[
            "train",
            "--data",
            "data.json",
            "--out",
            "b.json",
            "--iterations",
            "2",
            "--batch",
            "8",
            "--seed",
            "1",
        ],
        &dir,
    );

    // The request every response will be checked against: fixed rows, fixed
    // seed, so each release has exactly one correct answer.
    let rows: Vec<Vec<dg_data::Value>> = vec![vec![dg_data::Value::Cat(0)], vec![dg_data::Value::Cat(1)]];
    std::fs::write(dir.join("attrs.json"), serde_json::to_string(&rows).unwrap()).unwrap();
    dg_ok(
        &[
            "generate",
            "--model",
            "a.json",
            "--out",
            "cond_a.json",
            "--conditioned",
            "attrs.json",
            "--seed",
            "7",
        ],
        &dir,
    );
    dg_ok(
        &[
            "generate",
            "--model",
            "b.json",
            "--out",
            "cond_b.json",
            "--conditioned",
            "attrs.json",
            "--seed",
            "7",
        ],
        &dir,
    );
    let want_a = ground_truth_objects(&dir, "cond_a.json");
    let want_b = ground_truth_objects(&dir, "cond_b.json");
    assert_ne!(want_a, want_b, "the two releases must generate different bytes");

    let out = dg_ok(&["publish", "--model", "a.json", "--store", "store", "--family", "model"], &dir);
    assert!(out.contains("seq 1"), "{out}");

    let mut child = ChildGuard(Some(
        Command::new(env!("CARGO_BIN_EXE_dg"))
            .args([
                "serve",
                "--store",
                "store",
                "--family",
                "model",
                "--addr",
                "127.0.0.1:0",
                "--reload-every-ms",
                "50",
                "--max-requests",
                &MAX_REQUESTS.to_string(),
                "--run-log",
                "serve.jsonl",
            ])
            .current_dir(&dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn dg serve"),
    ));
    let mut child_out = BufReader::new(child.0.as_mut().unwrap().stdout.take().unwrap());
    let mut ready = String::new();
    child_out.read_line(&mut ready).unwrap();
    let addr = ready
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in ready line {ready:?}"))
        .to_string();
    assert!(ready.contains("seq 1"), "server did not start on release 1: {ready:?}");

    let stream = TcpStream::connect(&addr).expect("connect to dg serve");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Before the pointer advances: release 1, bytes of cond_a.
    let req = WireRequest { id: 1, seed: 7, attributes: rows.clone(), deadline_ms: None };
    let resp = send(&mut writer, &mut reader, &req);
    assert_eq!(resp.seq, Some(1), "first response must come from release 1");
    assert_eq!(serde_json::to_string(&resp.objects).unwrap(), want_a, "release-1 bytes diverged");
    assert!(resp.error.is_none());

    // Advance the pointer mid-stream.
    let out = dg_ok(&["publish", "--model", "b.json", "--store", "store", "--family", "model"], &dir);
    assert!(out.contains("seq 2"), "{out}");

    // Poll with the same request until the reload lands. Atomicity: every
    // response along the way is *entirely* release 1 or *entirely*
    // release 2 — its bytes must match the ground truth of its own seq.
    let mut sent: u64 = 1;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "server never picked up release 2");
        sent += 1;
        assert!(sent < MAX_REQUESTS, "request budget exhausted before the reload landed");
        let resp = send(
            &mut writer,
            &mut reader,
            &WireRequest { id: sent, seed: 7, attributes: rows.clone(), deadline_ms: None },
        );
        let got = serde_json::to_string(&resp.objects).unwrap();
        match resp.seq {
            Some(1) => assert_eq!(got, want_a, "in-flight response mixed releases"),
            Some(2) => {
                assert_eq!(got, want_b, "post-reload response mixed releases");
                break;
            }
            other => panic!("unexpected seq {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Exhaust --max-requests so the server exits on its own.
    while sent < MAX_REQUESTS {
        sent += 1;
        let resp = send(
            &mut writer,
            &mut reader,
            &WireRequest { id: sent, seed: 7, attributes: rows.clone(), deadline_ms: None },
        );
        assert_eq!(resp.seq, Some(2), "release 2 must keep serving after the reload");
    }
    drop(writer);

    let status = child.0.take().unwrap().wait().expect("wait for dg serve");
    assert!(status.success(), "dg serve exited with {status:?}");

    // The run log recorded the hot-reload and the serving counters.
    let log = std::fs::read_to_string(dir.join("serve.jsonl")).unwrap();
    assert!(
        log.lines().any(|l| l.contains("\"ModelReload\"") && l.contains("\"seq\":2")),
        "no reload event in:\n{log}"
    );
    assert!(log.lines().any(|l| l.contains("\"ServingHeartbeat\"")), "no heartbeat in:\n{log}");
    // Every response above was golden-byte-checked with the plan cache on
    // (its default); the terminal heartbeat must show the repeats actually
    // replayed cached plans — including across the reload boundary.
    let final_hb =
        log.lines().filter(|l| l.contains("\"ServingHeartbeat\"")).next_back().expect("terminal heartbeat");
    let hits = u64_field(final_hb, "plan_cache_hits");
    let misses = u64_field(final_hb, "plan_cache_misses");
    assert!(hits > 0, "repeat same-shape requests must replay cached plans:\n{final_hb}");
    assert!(misses >= 1, "the first pass of a shape must record a plan:\n{final_hb}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_plan_cache_off_serves_identical_bytes_and_counts_nothing() {
    let dir = tmpdir("planoff");
    dg_ok(&["demo", "--out", "data.json", "--objects", "16", "--length", "10"], &dir);
    dg_ok(&["train", "--data", "data.json", "--out", "a.json", "--iterations", "2", "--batch", "8"], &dir);
    let rows: Vec<Vec<dg_data::Value>> = vec![vec![dg_data::Value::Cat(0)], vec![dg_data::Value::Cat(1)]];
    std::fs::write(dir.join("attrs.json"), serde_json::to_string(&rows).unwrap()).unwrap();
    dg_ok(
        &[
            "generate",
            "--model",
            "a.json",
            "--out",
            "cond_a.json",
            "--conditioned",
            "attrs.json",
            "--seed",
            "7",
        ],
        &dir,
    );
    let want = ground_truth_objects(&dir, "cond_a.json");
    dg_ok(&["publish", "--model", "a.json", "--store", "store", "--family", "model"], &dir);

    // The --plan-cache off escape hatch: responses stay golden-byte
    // identical (the cache is bitwise-invisible either way) and the
    // counters prove no plan was recorded or replayed.
    let mut child = ChildGuard(Some(
        Command::new(env!("CARGO_BIN_EXE_dg"))
            .args([
                "serve",
                "--store",
                "store",
                "--family",
                "model",
                "--addr",
                "127.0.0.1:0",
                "--plan-cache",
                "off",
                "--max-requests",
                "3",
            ])
            .current_dir(&dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn dg serve"),
    ));
    let mut child_out = BufReader::new(child.0.as_mut().unwrap().stdout.take().unwrap());
    let mut ready = String::new();
    child_out.read_line(&mut ready).unwrap();
    let addr = ready
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in ready line {ready:?}"))
        .to_string();

    let stream = TcpStream::connect(&addr).expect("connect to dg serve");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for id in 1..=3u64 {
        let resp = send(
            &mut writer,
            &mut reader,
            &WireRequest { id, seed: 7, attributes: rows.clone(), deadline_ms: None },
        );
        assert!(resp.error.is_none(), "{:?}", resp.error);
        assert_eq!(
            serde_json::to_string(&resp.objects).unwrap(),
            want,
            "cache-off serving must stay golden-byte identical (request {id})"
        );
    }
    drop(writer);

    let status = child.0.take().unwrap().wait().expect("wait for dg serve");
    assert!(status.success(), "dg serve exited with {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut child_out, &mut rest).unwrap();
    let summary = rest
        .lines()
        .find(|l| l.contains("plan cache"))
        .unwrap_or_else(|| panic!("no plan-cache summary in {rest:?}"));
    assert!(
        summary.contains("plan cache 0 hits / 0 misses"),
        "a disabled cache must count nothing: {summary:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_runs_the_bf16_tier_when_asked_and_echoes_it() {
    let dir = tmpdir("bf16");
    dg_ok(&["demo", "--out", "data.json", "--objects", "16", "--length", "10"], &dir);
    dg_ok(&["train", "--data", "data.json", "--out", "a.json", "--iterations", "2", "--batch", "8"], &dir);
    let rows: Vec<Vec<dg_data::Value>> = vec![vec![dg_data::Value::Cat(0)], vec![dg_data::Value::Cat(1)]];
    std::fs::write(dir.join("attrs.json"), serde_json::to_string(&rows).unwrap()).unwrap();
    // The f32 ground truth the bf16 tier must *differ* from.
    dg_ok(
        &[
            "generate",
            "--model",
            "a.json",
            "--out",
            "cond_f32.json",
            "--conditioned",
            "attrs.json",
            "--seed",
            "7",
        ],
        &dir,
    );
    let want_f32 = ground_truth_objects(&dir, "cond_f32.json");
    dg_ok(&["publish", "--model", "a.json", "--store", "store", "--family", "model"], &dir);

    let mut child = ChildGuard(Some(
        Command::new(env!("CARGO_BIN_EXE_dg"))
            .args([
                "serve",
                "--store",
                "store",
                "--family",
                "model",
                "--addr",
                "127.0.0.1:0",
                "--precision",
                "bf16",
                "--max-requests",
                "2",
            ])
            .current_dir(&dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn dg serve"),
    ));
    let mut child_out = BufReader::new(child.0.as_mut().unwrap().stdout.take().unwrap());
    let mut ready = String::new();
    child_out.read_line(&mut ready).unwrap();
    assert!(ready.contains("precision bf16"), "ready line must announce the tier: {ready:?}");
    let addr = ready
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in ready line {ready:?}"))
        .to_string();

    let stream = TcpStream::connect(&addr).expect("connect to dg serve");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let req = WireRequest { id: 1, seed: 7, attributes: rows.clone(), deadline_ms: None };
    let first = send(&mut writer, &mut reader, &req);
    assert!(first.error.is_none(), "{:?}", first.error);
    assert_eq!(first.precision, "bf16", "response must echo the active tier");
    assert_eq!(first.objects.len(), rows.len());
    let first_bytes = serde_json::to_string(&first.objects).unwrap();
    assert_ne!(first_bytes, want_f32, "bf16 serving must actually run the reduced-precision kernels");

    // Same request again: deterministic within the bf16 tier.
    let second = send(&mut writer, &mut reader, &req);
    assert_eq!(serde_json::to_string(&second.objects).unwrap(), first_bytes);
    drop(writer);

    let status = child.0.take().unwrap().wait().expect("wait for dg serve");
    assert!(status.success(), "dg serve exited with {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_rejects_an_unknown_precision() {
    let dir = tmpdir("badprec");
    std::fs::create_dir_all(dir.join("store")).unwrap();
    let out = dg(&["serve", "--store", "store", "--family", "model", "--precision", "f16"], &dir);
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_refuses_to_start_on_an_empty_store() {
    let dir = tmpdir("empty");
    std::fs::create_dir_all(dir.join("store")).unwrap();
    let out = dg(&["serve", "--store", "store", "--family", "model"], &dir);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(5), "an empty store is a data error");
    let _ = std::fs::remove_dir_all(&dir);
}
