//! Process-level exit-code contract: scripts must be able to tell a typo
//! (2) from a broken disk (3) from a diverged run (4) from bad data (5).

use std::path::PathBuf;
use std::process::{Command, Output};

fn dg(args: &[&str], dir: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dg")).args(args).current_dir(dir).output().expect("spawn dg")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dg-exit-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("dg terminated by signal")
}

#[test]
fn usage_errors_exit_2() {
    let dir = tmpdir("usage");
    let out = dg(&[], &dir);
    assert_eq!(code(&out), 2, "{}", String::from_utf8_lossy(&out.stderr));
    let out = dg(&["frobnicate"], &dir);
    assert_eq!(code(&out), 2);
    let out = dg(&["train", "--out", "m.json"], &dir); // missing --data
    assert_eq!(code(&out), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_errors_exit_2() {
    let dir = tmpdir("config");
    let out = dg(&["demo", "--out", "data.json", "--objects", "16", "--length", "10"], &dir);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    let out = dg(
        &[
            "train",
            "--data",
            "data.json",
            "--out",
            "m.json",
            "--iterations",
            "1",
            "--on-divergence",
            "explode",
        ],
        &dir,
    );
    assert_eq!(code(&out), 2, "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn io_errors_exit_3() {
    let dir = tmpdir("io");
    let out = dg(&["schema", "--data", "does-not-exist.json"], &dir);
    assert_eq!(code(&out), 3, "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn data_errors_exit_5() {
    let dir = tmpdir("data");
    std::fs::write(dir.join("bad.json"), "{ not json").unwrap();
    let out = dg(&["schema", "--data", "bad.json"], &dir);
    assert_eq!(code(&out), 5, "{}", String::from_utf8_lossy(&out.stderr));

    std::fs::write(dir.join("raw.csv"), "mars.wikipedia.org,desktop,spider,1\n").unwrap();
    let out = dg(&["import", "--format", "wwt", "--input", "raw.csv", "--out", "d.json"], &dir);
    assert_eq!(code(&out), 5, "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn divergence_abort_exits_4() {
    let dir = tmpdir("diverge");
    let out = dg(&["demo", "--out", "data.json", "--objects", "16", "--length", "10"], &dir);
    assert_eq!(code(&out), 0);
    // A DP noise multiplier at the f32 limit overflows the gradients to
    // non-finite immediately; the always-on watchdog aborts under the
    // default policy.
    let out = dg(
        &[
            "train",
            "--data",
            "data.json",
            "--out",
            "m.json",
            "--iterations",
            "50",
            "--batch",
            "8",
            "--dp-sigma",
            "3e38",
        ],
        &dir,
    );
    assert_eq!(code(&out), 4, "{}", String::from_utf8_lossy(&out.stderr));
    assert!(!dir.join("m.json").exists(), "an aborted run must not release a model");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn success_exits_0_and_prints_the_report() {
    let dir = tmpdir("ok");
    let out = dg(&["demo", "--out", "data.json", "--objects", "16", "--length", "10"], &dir);
    assert_eq!(code(&out), 0);
    let out =
        dg(&["train", "--data", "data.json", "--out", "m.json", "--iterations", "2", "--batch", "8"], &dir);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("released model"));
    let _ = std::fs::remove_dir_all(&dir);
}
