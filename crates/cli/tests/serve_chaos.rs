//! Process-level serving chaos: the `dg serve` half of the overload-safety
//! contract (the engine half lives in `crates/core/tests/serve_faults.rs`).
//!
//! Drives a real server binary through the wire-layer fault points — torn
//! request lines, oversized lines, an injected generation panic, a wedged
//! server vs. a client timeout, and a SIGTERM mid-stream under concurrent
//! load — and requires structured error replies, byte-identical recovery,
//! and a clean drain: exit code 0, a terminal `draining` heartbeat, and no
//! client cut off without a prior response line.

use dg_cli::{WireRequest, WireResponse};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dg-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dg(args: &[&str], dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dg")).args(args).current_dir(dir).output().expect("spawn dg")
}

fn dg_ok(args: &[&str], dir: &Path) -> String {
    let out = dg(args, dir);
    assert!(out.status.success(), "dg {args:?} failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Kills the serve child if the test panics before its clean exit.
struct ChildGuard(Option<Child>);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut c) = self.0.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Publishes one trained release and returns the ground-truth object bytes
/// for the canonical `(attrs.json, seed 7)` request against it.
fn setup_release(dir: &Path) -> String {
    dg_ok(&["demo", "--out", "data.json", "--objects", "16", "--length", "10"], dir);
    dg_ok(&["train", "--data", "data.json", "--out", "a.json", "--iterations", "2", "--batch", "8"], dir);
    let rows: Vec<Vec<dg_data::Value>> = vec![vec![dg_data::Value::Cat(0)], vec![dg_data::Value::Cat(1)]];
    std::fs::write(dir.join("attrs.json"), serde_json::to_string(&rows).unwrap()).unwrap();
    dg_ok(
        &[
            "generate",
            "--model",
            "a.json",
            "--out",
            "cond_a.json",
            "--conditioned",
            "attrs.json",
            "--seed",
            "7",
        ],
        dir,
    );
    dg_ok(&["publish", "--model", "a.json", "--store", "store", "--family", "model"], dir);
    let ds: dg_data::Dataset =
        serde_json::from_str(&std::fs::read_to_string(dir.join("cond_a.json")).unwrap()).unwrap();
    serde_json::to_string(&ds.objects).unwrap()
}

/// Spawns `dg serve` with `extra` args (and optional chaos env), waits for
/// the ready line, and returns the guard, the bound address, and the
/// child's stdout reader — which the caller must keep alive, or the
/// server's final report hits a closed pipe.
fn spawn_serve(
    dir: &Path,
    extra: &[&str],
    fault: Option<&str>,
) -> (ChildGuard, String, BufReader<std::process::ChildStdout>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dg"));
    cmd.args(["serve", "--store", "store", "--family", "model", "--addr", "127.0.0.1:0"])
        .args(extra)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(plan) = fault {
        cmd.env("DG_SERVE_FAULT", plan);
    }
    let mut child = ChildGuard(Some(cmd.spawn().expect("spawn dg serve")));
    let mut child_out = BufReader::new(child.0.as_mut().unwrap().stdout.take().unwrap());
    let mut ready = String::new();
    child_out.read_line(&mut ready).unwrap();
    let addr = ready
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in ready line {ready:?}"))
        .to_string();
    (child, addr, child_out)
}

fn request_line(id: u64) -> String {
    let rows: Vec<Vec<dg_data::Value>> = vec![vec![dg_data::Value::Cat(0)], vec![dg_data::Value::Cat(1)]];
    serde_json::to_string(&WireRequest { id, seed: 7, attributes: rows, deadline_ms: None }).unwrap()
}

fn read_response(reader: &mut impl BufRead) -> WireResponse {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde_json::from_str(line.trim()).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

#[test]
fn torn_and_oversized_lines_keep_the_connection_synchronized() {
    let dir = tmpdir("torn");
    let want_a = setup_release(&dir);
    let (mut child, addr, _server_out) =
        spawn_serve(&dir, &["--max-requests", "4", "--max-line-bytes", "4096"], None);

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // A torn request: half a line, a stall spanning several server read
    // timeouts, then the rest. The server must reassemble it.
    let line = request_line(1);
    let (head, tail) = line.split_at(line.len() / 2);
    writer.write_all(head.as_bytes()).unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    writer.write_all(tail.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.id, 1);
    assert!(resp.error.is_none(), "{:?}", resp.error);
    assert_eq!(serde_json::to_string(&resp.objects).unwrap(), want_a, "torn request must serve correctly");

    // An oversized line: consumed, answered with a structured error, and
    // the connection stays usable for the next request.
    writeln!(writer, "{{\"id\":2,\"junk\":\"{}\"}}", "x".repeat(8192)).unwrap();
    writer.flush().unwrap();
    let resp = read_response(&mut reader);
    assert!(
        resp.error.as_deref().unwrap_or("").contains("max-line-bytes"),
        "oversized lines must be rejected with the cap named: {:?}",
        resp.error
    );

    // An empty-attributes request is valid and serves an empty object list.
    let empty: Vec<Vec<dg_data::Value>> = Vec::new();
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&WireRequest { id: 3, seed: 0, attributes: empty, deadline_ms: None }).unwrap()
    )
    .unwrap();
    writer.flush().unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.id, 3);
    assert!(resp.error.is_none(), "{:?}", resp.error);
    assert!(resp.objects.is_empty());

    // The health probe verb answers without generating.
    writeln!(writer, "{{\"id\":4,\"health\":true}}").unwrap();
    writer.flush().unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.id, 4);
    assert_eq!(resp.health.as_deref(), Some("ok"));
    assert!(resp.objects.is_empty());

    // Still synchronized: a final ordinary request completes the budget.
    writeln!(writer, "{}", request_line(5)).unwrap();
    writer.flush().unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.id, 5);
    assert_eq!(serde_json::to_string(&resp.objects).unwrap(), want_a);
    drop(writer);

    let status = child.0.take().unwrap().wait().expect("wait");
    assert!(status.success(), "dg serve exited with {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_pass_panic_surfaces_as_structured_error_and_serving_recovers() {
    let dir = tmpdir("panic");
    let want_a = setup_release(&dir);
    let (mut child, addr, _server_out) = spawn_serve(&dir, &["--max-requests", "2"], Some("panic_on_pass=0"));

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Pass 0 panics: a structured error reply, not a dead connection.
    writeln!(writer, "{}", request_line(1)).unwrap();
    writer.flush().unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.id, 1);
    assert!(resp.error.as_deref().unwrap_or("").contains("generation pass panicked"), "{:?}", resp.error);
    assert!(resp.objects.is_empty());

    // The batcher survived: the next request is byte-identical to the
    // offline ground truth for the serving release.
    writeln!(writer, "{}", request_line(2)).unwrap();
    writer.flush().unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.id, 2);
    assert!(resp.error.is_none(), "{:?}", resp.error);
    assert_eq!(serde_json::to_string(&resp.objects).unwrap(), want_a, "post-panic bytes diverged");
    drop(writer);

    let status = child.0.take().unwrap().wait().expect("wait");
    assert!(status.success(), "dg serve exited with {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sample_times_out_with_an_io_error_against_a_wedged_server() {
    let dir = tmpdir("wedge");
    setup_release(&dir);
    // Wedge the first pass far past the client timeout.
    let (_child, addr, _server_out) = spawn_serve(&dir, &[], Some("stall_on_pass=0,stall_ms=20000"));
    let started = Instant::now();
    let out =
        dg(&["sample", "--addr", &addr, "--attrs", "attrs.json", "--seed", "7", "--timeout-ms", "500"], &dir);
    assert!(!out.status.success(), "a wedged server must not look like success");
    assert_eq!(out.status.code(), Some(3), "a response timeout is an I/O error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("timed out after 500 ms"), "{stderr}");
    assert!(started.elapsed() < Duration::from_secs(15), "the client must give up, not ride out the stall");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_streaming_clients_and_exits_zero() {
    const CLIENTS: usize = 8;
    let dir = tmpdir("drain");
    setup_release(&dir);
    // Heartbeats decoupled from reloads: the poller is off entirely.
    let (mut child, addr, _server_out) = spawn_serve(
        &dir,
        &[
            "--reload-every-ms",
            "0",
            "--heartbeat-every-ms",
            "50",
            "--drain-timeout-ms",
            "5000",
            "--run-log",
            "serve.jsonl",
        ],
        None,
    );
    let pid = child.0.as_ref().unwrap().id();

    // A wedged client: connects, sends half a line, never finishes. It must
    // not hold the drain hostage.
    let wedged = TcpStream::connect(&addr).expect("connect wedged client");
    {
        let mut w = wedged.try_clone().unwrap();
        w.write_all(b"{\"id\":999, \"seed\":").unwrap();
        w.flush().unwrap();
    }

    // Streaming clients: request/response in a loop until the server goes
    // away. Every line read must parse as a response; the count of valid
    // responses per client is the "no reset without a response" evidence.
    let responses: Arc<Vec<AtomicU64>> = Arc::new((0..CLIENTS).map(|_| AtomicU64::new(0)).collect());
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let responses = Arc::clone(&responses);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connect streaming client");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                for i in 0..10_000u64 {
                    let id = (c as u64 + 1) * 10_000 + i;
                    if writeln!(writer, "{}", request_line(id)).and_then(|_| writer.flush()).is_err() {
                        break;
                    }
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    let resp: WireResponse = serde_json::from_str(line.trim())
                        .unwrap_or_else(|e| panic!("client {c}: undecodable response {line:?}: {e}"));
                    assert_eq!(resp.id, id, "client {c}: response correlation broke mid-stream");
                    if resp.error.is_none() {
                        responses[c].fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // SIGTERM only once every client has at least one response in hand —
    // the drain then happens genuinely mid-stream.
    let arm_deadline = Instant::now() + Duration::from_secs(60);
    while responses.iter().any(|r| r.load(Ordering::Relaxed) == 0) {
        assert!(Instant::now() < arm_deadline, "clients never got first responses");
        std::thread::sleep(Duration::from_millis(10));
    }
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    assert_eq!(unsafe { kill(pid as i32, 15) }, 0, "sending SIGTERM failed");

    // The server must exit 0 well within the drain timeout.
    let exit_deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = child.0.as_mut().unwrap().try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < exit_deadline, "dg serve did not exit after SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    child.0.take();
    assert!(status.success(), "drain must exit 0, got {status:?}");

    for h in handles {
        h.join().unwrap();
    }
    for (c, r) in responses.iter().enumerate() {
        assert!(r.load(Ordering::Relaxed) >= 1, "client {c} saw a reset without any response");
    }

    // The wedged client's socket was closed by the drain, not left open.
    let mut probe = [0u8; 1];
    let mut w = wedged;
    w.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(w.read(&mut probe).unwrap_or(0), 0, "the drained server must close the wedged client");

    // Terminal heartbeat: the run log's last word reports `draining`.
    let log = std::fs::read_to_string(dir.join("serve.jsonl")).unwrap();
    let last_heartbeat = log
        .lines()
        .rfind(|l| l.contains("\"ServingHeartbeat\""))
        .unwrap_or_else(|| panic!("no heartbeat in:\n{log}"));
    assert!(
        last_heartbeat.contains("\"health\":\"draining\""),
        "terminal heartbeat must report draining: {last_heartbeat}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
