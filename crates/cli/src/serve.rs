//! `dg publish` / `dg serve` / `dg sample`: the serving workflow.
//!
//! `publish` releases a trained model into a crash-safe
//! [`dg_io::ArtifactStore`]; `serve` loads the newest valid release and
//! answers conditional-generation requests over a line-delimited JSON
//! protocol (TCP or stdio), coalescing concurrent requests into fused
//! generation passes through [`doppelganger::serve::BatchEngine`] and
//! hot-reloading atomically when the store's `latest` pointer advances;
//! `sample` is the matching one-shot client.
//!
//! ## Wire protocol
//!
//! One JSON document per line, one response line per request line:
//!
//! ```text
//! → {"id":1,"seed":42,"attributes":[[{"Cat":0}],[{"Cat":1}]]}
//! ← {"id":1,"seq":3,"objects":[...],"latency_ms":0.8,"error":null}
//! ```
//!
//! `attributes` is one row per requested synthetic object, in the released
//! schema's attribute order (`{"Cat":i}` for categorical fields, `{"Cont":x}`
//! for continuous ones). The `(attributes, seed)` pair fully determines the
//! response bytes for a given release — the same request returns the same
//! series whether it runs alone or coalesced with strangers, at any server
//! thread count. `seq` is the artifact sequence number that served the
//! response, so clients observe hot-reloads. Rejected or unparsable requests
//! get `error` set and empty `objects`; the connection stays usable.

use crate::{config_err, data_err, io_err, read_json, Args, CliError};
use dg_io::ArtifactStore;
use doppelganger::prelude::*;
use doppelganger::telemetry::{ModelReloadEvent, ServingHeartbeatEvent};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One request line of the serving protocol.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WireRequest {
    /// Caller-chosen correlation id, echoed on the response.
    #[serde(default)]
    pub id: u64,
    /// Seed of the request's private noise stream; with `attributes` it
    /// fully determines the response bytes for a given release.
    #[serde(default)]
    pub seed: u64,
    /// Attribute rows to condition on, one synthetic object per row.
    pub attributes: Vec<Vec<dg_data::Value>>,
}

/// One response line of the serving protocol.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WireResponse {
    /// The request's correlation id (0 when the request didn't parse).
    pub id: u64,
    /// Artifact sequence number of the release that generated this
    /// response, when the model came from a store.
    pub seq: Option<u64>,
    /// Generated synthetic objects, one per requested attribute row.
    pub objects: Vec<dg_data::TimeSeriesObject>,
    /// Queue + generation latency observed by the engine, milliseconds.
    pub latency_ms: f64,
    /// Numeric precision the generation pass ran at (`"f32"` / `"bf16"`).
    /// Defaults to `"f32"` when talking to a server predating the
    /// reduced-precision tier.
    #[serde(default = "default_wire_precision")]
    pub precision: String,
    /// Why the request was rejected; `null` on success.
    #[serde(default)]
    pub error: Option<String>,
}

fn default_wire_precision() -> String {
    "f32".to_string()
}

/// Serves one protocol line: parse, validate, generate (or explain why not).
fn serve_line(engine: &BatchEngine, line: &str) -> WireResponse {
    let precision = engine.precision().name().to_string();
    let req: WireRequest = match serde_json::from_str(line.trim()) {
        Ok(r) => r,
        Err(e) => {
            return WireResponse {
                id: 0,
                seq: None,
                objects: Vec::new(),
                latency_ms: 0.0,
                precision,
                error: Some(format!("bad request: {e}")),
            }
        }
    };
    match engine.sample_blocking(SampleRequest { attribute_rows: req.attributes, seed: req.seed }) {
        Ok(resp) => WireResponse {
            id: req.id,
            seq: resp.seq,
            objects: resp.objects,
            latency_ms: resp.latency_ms,
            precision: resp.precision.name().to_string(),
            error: None,
        },
        Err(e) => WireResponse {
            id: req.id,
            seq: None,
            objects: Vec::new(),
            latency_ms: 0.0,
            precision,
            error: Some(e),
        },
    }
}

fn emit(log: &Mutex<Option<RunLog>>, event: &RunEvent) {
    if let Some(l) = log.lock().unwrap().as_mut() {
        l.emit(event);
    }
}

pub(crate) fn cmd_publish(args: &Args) -> Result<String, CliError> {
    let model_path = args.required("model")?;
    let store_dir = args.required("store")?;
    let family = args.get_or("family", "model");
    let json =
        std::fs::read_to_string(model_path).map_err(|e| io_err(format!("reading {model_path}: {e}")))?;
    // Validate before publishing: a store should never hold a release the
    // sampler would have to skip.
    DoppelGanger::from_json(&json).map_err(|e| data_err(format!("parsing model {model_path}: {e}")))?;
    let retain = args.num_or("retain", 8usize)?;
    let store = ArtifactStore::open_std(store_dir)
        .map_err(|e| io_err(format!("opening store {store_dir}: {e}")))?
        .with_retain(retain);
    let seq = match args.options.get("seq") {
        Some(v) => v.parse().map_err(|_| config_err(format!("invalid value for --seq: '{v}'")))?,
        None => {
            // Auto-increment past the newest existing artifact (valid or
            // not — a corrupt seq must not be reused).
            let existing =
                store.candidates(family).map_err(|e| io_err(format!("listing store {store_dir}: {e}")))?;
            existing.first().map(|(s, _)| s + 1).unwrap_or(1)
        }
    };
    let outcome = store
        .put_numbered(family, seq, json.as_bytes())
        .map_err(|e| io_err(format!("publishing to {store_dir}: {e}")))?;
    let pointer_note = if outcome.pointer_updated { "" } else { "; warning: latest pointer not updated" };
    Ok(format!(
        "published {model_path} as {} (family {family}, seq {seq}){pointer_note}",
        outcome.path.display()
    ))
}

pub(crate) fn cmd_serve(args: &Args) -> Result<String, CliError> {
    // --precision wins over the DG_PRECISION environment fallback; both
    // must name a known tier, and a bad value fails before any store I/O.
    // This is the ONLY place the environment can select reduced precision
    // — training commands never read it.
    let precision =
        match args.options.get("precision").cloned().or_else(|| std::env::var("DG_PRECISION").ok()) {
            Some(s) => Precision::parse(&s)
                .ok_or_else(|| config_err(format!("invalid precision '{s}' (expected f32 or bf16)")))?,
            None => Precision::F32,
        };
    let store_dir = args.required("store")?;
    let family = args.get_or("family", "model").to_string();
    let store =
        ArtifactStore::open_std(store_dir).map_err(|e| io_err(format!("opening store {store_dir}: {e}")))?;
    let (sampler, load) = Sampler::from_store(&store, &family)
        .map_err(|e| data_err(format!("loading released model from {store_dir}: {e}")))?;
    for s in &load.skipped {
        eprintln!("warning: skipped {}: {}", s.path.display(), s.reason);
    }
    let seq = load.seq;

    let defaults = ServeConfig::default();
    let config = ServeConfig {
        max_fused_requests: args.num_or("max-fused", defaults.max_fused_requests)?,
        max_fused_rows: args.num_or("max-fused-rows", defaults.max_fused_rows)?,
        queue_depth: args.num_or("queue-depth", defaults.queue_depth)?,
        max_wait_us: args.num_or("max-wait-us", defaults.max_wait_us)?,
        latency_window: args.num_or("latency-window", defaults.latency_window)?,
        precision,
    };
    let engine = Arc::new(BatchEngine::new(sampler, config));
    let max_requests = args.num_or("max-requests", 0u64)?;
    let reload_every_ms = args.num_or("reload-every-ms", 0u64)?;

    let log = match args.options.get("run-log") {
        Some(path) => {
            let l = RunLog::create(path).map_err(|e| io_err(format!("creating run log {path}: {e}")))?;
            Arc::new(Mutex::new(Some(l)))
        }
        None => Arc::new(Mutex::new(None)),
    };
    emit(
        &log,
        &RunEvent::ModelReload(ModelReloadEvent {
            reloaded: true,
            seq: Some(seq),
            skipped: load.skipped.iter().map(|s| s.reason.clone()).collect(),
        }),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    // Hot-reload poller: follow the store's `latest` pointer, install new
    // releases atomically (in-flight fused passes finish on the release
    // they snapshotted), and heartbeat the engine counters into the run log.
    let poller = (reload_every_ms > 0).then(|| {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let log = Arc::clone(&log);
        let family = family.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(reload_every_ms));
                match engine.reload(&store, &family) {
                    Ok(r) => {
                        if r.reloaded || !r.skipped.is_empty() {
                            emit(
                                &log,
                                &RunEvent::ModelReload(ModelReloadEvent {
                                    reloaded: r.reloaded,
                                    seq: Some(r.seq),
                                    skipped: r.skipped.iter().map(|s| s.reason.clone()).collect(),
                                }),
                            );
                        }
                    }
                    // Resolution failed outright; the previous release
                    // keeps serving.
                    Err(e) => emit(
                        &log,
                        &RunEvent::ModelReload(ModelReloadEvent {
                            reloaded: false,
                            seq: engine.loaded_seq(),
                            skipped: vec![e.to_string()],
                        }),
                    ),
                }
                let s = engine.stats();
                emit(
                    &log,
                    &RunEvent::ServingHeartbeat(ServingHeartbeatEvent {
                        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
                        requests: s.requests,
                        batches: s.batches,
                        samples: s.samples,
                        rejected: s.rejected,
                        p50_ms: s.p50_ms,
                        p99_ms: s.p99_ms,
                        precision: s.precision.clone(),
                    }),
                );
            }
        })
    });

    if args.flag("stdio") {
        // stdout carries responses, so the ready line goes to stderr.
        eprintln!(
            "dg serve: ready (stdio, family {family}, seq {seq}, precision {})",
            engine.precision().name()
        );
        let stdin = std::io::stdin();
        let mut out = BufWriter::new(std::io::stdout());
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| io_err(format!("reading stdin: {e}")))?;
            if line.trim().is_empty() {
                continue;
            }
            let resp = serve_line(&engine, &line);
            let json =
                serde_json::to_string(&resp).map_err(|e| data_err(format!("serializing response: {e}")))?;
            writeln!(out, "{json}")
                .and_then(|_| out.flush())
                .map_err(|e| io_err(format!("writing response: {e}")))?;
            let n = served.fetch_add(1, Ordering::Relaxed) + 1;
            if max_requests > 0 && n >= max_requests {
                break;
            }
        }
    } else {
        let addr = args.get_or("addr", "127.0.0.1:0");
        let listener = TcpListener::bind(addr).map_err(|e| io_err(format!("binding {addr}: {e}")))?;
        let local = listener.local_addr().map_err(|e| io_err(e.to_string()))?;
        // The ready line is a contract: scripts parse the bound address off
        // it (ports are usually OS-assigned via --addr 127.0.0.1:0).
        println!(
            "dg serve: listening on {local} (family {family}, seq {seq}, precision {})",
            engine.precision().name()
        );
        std::io::stdout().flush().ok();
        let mut handlers = Vec::new();
        for conn in listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let engine = Arc::clone(&engine);
            let served = Arc::clone(&served);
            let stop = Arc::clone(&stop);
            handlers.push(std::thread::spawn(move || {
                handle_conn(stream, engine, served, stop, max_requests, local)
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
    }

    stop.store(true, Ordering::Relaxed);
    if let Some(p) = poller {
        let _ = p.join();
    }
    let stats = engine.stats();
    emit(
        &log,
        &RunEvent::ServingHeartbeat(ServingHeartbeatEvent {
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
            requests: stats.requests,
            batches: stats.batches,
            samples: stats.samples,
            rejected: stats.rejected,
            p50_ms: stats.p50_ms,
            p99_ms: stats.p99_ms,
            precision: stats.precision.clone(),
        }),
    );
    engine.shutdown();
    Ok(format!(
        "served {} requests in {} fused passes ({} samples, {} rejected, {} reloads, precision {}, p50 {:.2} ms, p99 {:.2} ms)",
        stats.requests,
        stats.batches,
        stats.samples,
        stats.rejected,
        stats.reloads,
        stats.precision,
        stats.p50_ms,
        stats.p99_ms
    ))
}

/// One TCP connection: read request lines, write response lines. Short read
/// timeouts keep the handler responsive to shutdown instead of blocking
/// forever on an idle connection.
fn handle_conn(
    stream: TcpStream,
    engine: Arc<BatchEngine>,
    served: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    max_requests: u64,
    wake: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed the connection
            Ok(_) => {
                if !line.trim().is_empty() {
                    let resp = serve_line(&engine, &line);
                    let Ok(json) = serde_json::to_string(&resp) else { return };
                    if writeln!(writer, "{json}").and_then(|_| writer.flush()).is_err() {
                        return;
                    }
                    if max_requests > 0 && served.fetch_add(1, Ordering::Relaxed) + 1 >= max_requests {
                        stop.store(true, Ordering::Relaxed);
                        // Unblock the accept loop so the server can exit.
                        let _ = TcpStream::connect(wake);
                        return;
                    }
                }
                line.clear();
            }
            // A timeout mid-line leaves the partial bytes in `line`; the
            // next read appends the rest.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

pub(crate) fn cmd_sample(args: &Args) -> Result<String, CliError> {
    let addr = args.required("addr")?;
    let attrs_path = args.required("attrs")?;
    let attributes: Vec<Vec<dg_data::Value>> = read_json(attrs_path)?;
    let seed = args.num_or("seed", 0u64)?;
    let id = args.num_or("id", 1u64)?;
    let timeout_ms = args.num_or("connect-timeout-ms", 10_000u64)?;
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    // The server may still be binding; retry until the deadline.
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io_err(format!("connecting to {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let req = WireRequest { id, seed, attributes };
    let json = serde_json::to_string(&req).map_err(|e| data_err(format!("serializing request: {e}")))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| io_err(e.to_string()))?);
    writeln!(writer, "{json}")
        .and_then(|_| writer.flush())
        .map_err(|e| io_err(format!("sending request to {addr}: {e}")))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| io_err(format!("reading response from {addr}: {e}")))?;
    if line.trim().is_empty() {
        return Err(io_err(format!("{addr} closed the connection without responding")));
    }
    let resp: WireResponse =
        serde_json::from_str(line.trim()).map_err(|e| data_err(format!("parsing response: {e}")))?;
    if let Some(e) = &resp.error {
        return Err(data_err(format!("server rejected the request: {e}")));
    }
    if let Some(out) = args.options.get("out") {
        dg_io::atomic_write(Path::new(out), line.trim().as_bytes())
            .map_err(|e| io_err(format!("writing {out}: {e}")))?;
    }
    // The raw response line is the report, so scripts can pipe it to jq.
    Ok(line.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use dg_data::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tiny_model(seed: u64) -> DoppelGanger {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg =
            dg_datasets::SineConfig { num_objects: 16, length: 12, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = dg_datasets::sine::generate(&cfg, &mut rng);
        let mut dg_cfg = DgConfig::quick().with_recommended_s(12);
        dg_cfg.attr_hidden = 8;
        dg_cfg.lstm_hidden = 8;
        dg_cfg.head_hidden = 8;
        dg_cfg.batch_size = 4;
        DoppelGanger::new(&data, dg_cfg, &mut rng)
    }

    #[test]
    fn publish_auto_increments_and_updates_the_pointer() {
        let dir = std::env::temp_dir().join(format!("dg-cli-publish-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let model = tiny_model(3);
        dg_io::atomic_write(&dir.join("model.json"), model.to_json().as_bytes()).unwrap();

        let out = run(&Args::parse(argv(&format!(
            "publish --model {} --store {} --family m",
            p("model.json"),
            p("store")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("seq 1"), "{out}");
        let out = run(&Args::parse(argv(&format!(
            "publish --model {} --store {} --family m",
            p("model.json"),
            p("store")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("seq 2"), "{out}");

        let store = ArtifactStore::open_std(p("store")).unwrap();
        assert_eq!(store.latest_hint("m"), Some(2));

        // A non-model payload is rejected before it can pollute the store.
        dg_io::atomic_write(&dir.join("junk.json"), b"{\"not\":\"a model\"}").unwrap();
        let err = run(&Args::parse(argv(&format!(
            "publish --model {} --store {} --family m",
            p("junk.json"),
            p("store")
        )))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.kind, crate::CliErrorKind::Data, "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wire_protocol_serves_echoes_ids_and_explains_rejections() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(4)), ServeConfig::default());
        let req = WireRequest { id: 7, seed: 42, attributes: vec![vec![Value::Cat(0)], vec![Value::Cat(1)]] };
        let resp = serve_line(&engine, &serde_json::to_string(&req).unwrap());
        assert_eq!(resp.id, 7);
        assert_eq!(resp.objects.len(), 2);
        assert!(resp.error.is_none(), "{:?}", resp.error);
        assert_eq!(resp.objects[0].attributes, vec![Value::Cat(0)]);

        // Same request, same release: byte-identical response objects.
        let again = serve_line(&engine, &serde_json::to_string(&req).unwrap());
        assert_eq!(
            serde_json::to_string(&resp.objects).unwrap(),
            serde_json::to_string(&again.objects).unwrap()
        );

        let garbage = serve_line(&engine, "{ not json");
        assert!(garbage.error.is_some());
        assert!(garbage.objects.is_empty());

        let wrong_arity =
            WireRequest { id: 8, seed: 1, attributes: vec![vec![Value::Cat(0), Value::Cat(1)]] };
        let rejected = serve_line(&engine, &serde_json::to_string(&wrong_arity).unwrap());
        assert_eq!(rejected.id, 8);
        assert!(rejected.error.is_some());
    }
}
