//! `dg publish` / `dg serve` / `dg sample`: the serving workflow.
//!
//! `publish` releases a trained model into a crash-safe
//! [`dg_io::ArtifactStore`]; `serve` loads the newest valid release and
//! answers conditional-generation requests over a line-delimited JSON
//! protocol (TCP or stdio), coalescing concurrent requests into fused
//! generation passes through [`doppelganger::serve::BatchEngine`] and
//! hot-reloading atomically when the store's `latest` pointer advances;
//! `sample` is the matching one-shot client.
//!
//! ## Wire protocol
//!
//! One JSON document per line, one response line per request line:
//!
//! ```text
//! → {"id":1,"seed":42,"attributes":[[{"Cat":0}],[{"Cat":1}]]}
//! ← {"id":1,"seq":3,"objects":[...],"latency_ms":0.8,"error":null}
//! ```
//!
//! `attributes` is one row per requested synthetic object, in the released
//! schema's attribute order (`{"Cat":i}` for categorical fields, `{"Cont":x}`
//! for continuous ones). The `(attributes, seed)` pair fully determines the
//! response bytes for a given release — the same request returns the same
//! series whether it runs alone or coalesced with strangers, at any server
//! thread count. `seq` is the artifact sequence number that served the
//! response, so clients observe hot-reloads. Rejected or unparsable requests
//! get `error` set and empty `objects`; the connection stays usable.
//!
//! ## Overload, deadlines, health, drain
//!
//! The front end never blocks a connection on a full engine queue: past the
//! admission threshold a request is answered immediately with
//! `error: "overloaded"`. A request may carry `"deadline_ms"`; if it expires
//! while queued the reply is `error: "deadline exceeded"` and the request
//! never occupies a fused-pass slot. `{"health":true}` is a readiness probe:
//! the reply carries `"health"` (`"ok"` / `"degraded"` / `"draining"`) and
//! the serving `seq`, with no generation. Request lines longer than
//! `--max-line-bytes` are consumed and answered with an error — one client
//! cannot OOM the server. On SIGTERM/SIGINT the server stops accepting,
//! finishes in-flight requests up to `--drain-timeout-ms`, emits a terminal
//! heartbeat, and exits 0. See DESIGN.md §16 for the full failure model.

use crate::{config_err, data_err, io_err, read_json, Args, CliError};
use dg_io::ArtifactStore;
use doppelganger::prelude::*;
use doppelganger::telemetry::{ModelReloadEvent, ServingHeartbeatEvent};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One request line of the serving protocol.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WireRequest {
    /// Caller-chosen correlation id, echoed on the response.
    #[serde(default)]
    pub id: u64,
    /// Seed of the request's private noise stream; with `attributes` it
    /// fully determines the response bytes for a given release.
    #[serde(default)]
    pub seed: u64,
    /// Attribute rows to condition on, one synthetic object per row.
    pub attributes: Vec<Vec<dg_data::Value>>,
    /// Client deadline, milliseconds from receipt. Expired-in-queue
    /// requests are answered `error: "deadline exceeded"` without being
    /// generated. Absent means "the server default".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
}

/// One response line of the serving protocol.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WireResponse {
    /// The request's correlation id (0 only when the request was so
    /// malformed no numeric `id` field could be salvaged from it).
    pub id: u64,
    /// Artifact sequence number of the release that generated this
    /// response, when the model came from a store.
    pub seq: Option<u64>,
    /// Generated synthetic objects, one per requested attribute row.
    pub objects: Vec<dg_data::TimeSeriesObject>,
    /// Queue + generation latency observed by the engine, milliseconds.
    pub latency_ms: f64,
    /// Numeric precision the generation pass ran at (`"f32"` / `"bf16"`).
    /// Defaults to `"f32"` when talking to a server predating the
    /// reduced-precision tier.
    #[serde(default = "default_wire_precision")]
    pub precision: String,
    /// Why the request was rejected; `null` on success. Structured values
    /// the README documents: `"overloaded"`, `"deadline exceeded"`,
    /// `"bad request: …"`, schema-validation messages.
    #[serde(default)]
    pub error: Option<String>,
    /// Engine health (`"ok"` / `"degraded"` / `"draining"`); present only
    /// on replies to the `{"health":true}` probe verb.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub health: Option<String>,
}

fn default_wire_precision() -> String {
    "f32".to_string()
}

fn error_response(id: u64, precision: String, error: String) -> WireResponse {
    WireResponse {
        id,
        seq: None,
        objects: Vec::new(),
        latency_ms: 0.0,
        precision,
        error: Some(error),
        health: None,
    }
}

/// Serves one protocol line: parse, validate, generate (or explain why not).
fn serve_line(engine: &BatchEngine, line: &str) -> WireResponse {
    let precision = engine.precision().name().to_string();
    // Parse to a Value first so a malformed request still yields its
    // numeric `id` for a correlatable error reply.
    let value: serde_json::Value = match serde_json::from_str(line.trim()) {
        Ok(v) => v,
        Err(e) => return error_response(0, precision, format!("bad request: {e}")),
    };
    let id = value.get("id").and_then(serde_json::Value::as_u64).unwrap_or(0);
    // The readiness probe verb: no generation, just state.
    if value.get("health").and_then(serde_json::Value::as_bool) == Some(true) {
        return WireResponse {
            id,
            seq: engine.loaded_seq(),
            objects: Vec::new(),
            latency_ms: 0.0,
            precision,
            error: None,
            health: Some(engine.health().name().to_string()),
        };
    }
    let req: WireRequest = match serde_json::from_value(value) {
        Ok(r) => r,
        Err(e) => return error_response(id, precision, format!("bad request: {e}")),
    };
    let deadline = req.deadline_ms.map(Duration::from_millis);
    let sample = SampleRequest { attribute_rows: req.attributes, seed: req.seed };
    match engine.sample_with_deadline(sample, deadline) {
        Ok(resp) => WireResponse {
            id,
            seq: resp.seq,
            objects: resp.objects,
            latency_ms: resp.latency_ms,
            precision: resp.precision.name().to_string(),
            error: None,
            health: None,
        },
        Err(e) => error_response(id, precision, e.to_string()),
    }
}

fn emit(log: &Mutex<Option<RunLog>>, event: &RunEvent) {
    if let Some(l) = log.lock().unwrap().as_mut() {
        l.emit(event);
    }
}

fn heartbeat_event(engine: &BatchEngine, started: Instant) -> RunEvent {
    let s = engine.stats();
    RunEvent::ServingHeartbeat(ServingHeartbeatEvent {
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        requests: s.requests,
        batches: s.batches,
        samples: s.samples,
        rejected: s.rejected,
        p50_ms: s.p50_ms,
        p99_ms: s.p99_ms,
        precision: s.precision,
        health: s.health,
        shed: s.shed,
        deadline_expired: s.deadline_expired,
        pass_panics: s.pass_panics,
        plan_cache_hits: s.plan_cache_hits,
        plan_cache_misses: s.plan_cache_misses,
    })
}

/// Set by the SIGTERM/SIGINT handler; the accept and worker loops poll it.
static SIGNALED: AtomicBool = AtomicBool::new(false);

fn signaled() -> bool {
    SIGNALED.load(Ordering::Relaxed)
}

/// Registers SIGTERM/SIGINT handlers that flip [`SIGNALED`] — the graceful
/// drain trigger. Declares the libc `signal` symbol std already links; the
/// handler only stores to an atomic, which is async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

pub(crate) fn cmd_publish(args: &Args) -> Result<String, CliError> {
    let model_path = args.required("model")?;
    let store_dir = args.required("store")?;
    let family = args.get_or("family", "model");
    let json =
        std::fs::read_to_string(model_path).map_err(|e| io_err(format!("reading {model_path}: {e}")))?;
    // Validate before publishing: a store should never hold a release the
    // sampler would have to skip.
    DoppelGanger::from_json(&json).map_err(|e| data_err(format!("parsing model {model_path}: {e}")))?;
    let retain = args.num_or("retain", 8usize)?;
    let store = ArtifactStore::open_std(store_dir)
        .map_err(|e| io_err(format!("opening store {store_dir}: {e}")))?
        .with_retain(retain);
    let seq = match args.options.get("seq") {
        Some(v) => v.parse().map_err(|_| config_err(format!("invalid value for --seq: '{v}'")))?,
        None => {
            // Auto-increment past the newest existing artifact (valid or
            // not — a corrupt seq must not be reused).
            let existing =
                store.candidates(family).map_err(|e| io_err(format!("listing store {store_dir}: {e}")))?;
            existing.first().map(|(s, _)| s + 1).unwrap_or(1)
        }
    };
    let outcome = store
        .put_numbered(family, seq, json.as_bytes())
        .map_err(|e| io_err(format!("publishing to {store_dir}: {e}")))?;
    let pointer_note = if outcome.pointer_updated { "" } else { "; warning: latest pointer not updated" };
    Ok(format!(
        "published {model_path} as {} (family {family}, seq {seq}){pointer_note}",
        outcome.path.display()
    ))
}

pub(crate) fn cmd_serve(args: &Args) -> Result<String, CliError> {
    // --precision wins over the DG_PRECISION environment fallback; both
    // must name a known tier, and a bad value fails before any store I/O.
    // This is the ONLY place the environment can select reduced precision
    // — training commands never read it.
    let precision =
        match args.options.get("precision").cloned().or_else(|| std::env::var("DG_PRECISION").ok()) {
            Some(s) => Precision::parse(&s)
                .ok_or_else(|| config_err(format!("invalid precision '{s}' (expected f32 or bf16)")))?,
            None => Precision::F32,
        };
    // DG_SERVE_FAULT is the chaos hook for the fault-injection harness —
    // never set in production. A bad plan is a config error up front.
    let faults = match std::env::var("DG_SERVE_FAULT") {
        Ok(s) if !s.trim().is_empty() => {
            ServeFaultPlan::parse(&s).map_err(|e| config_err(format!("invalid DG_SERVE_FAULT '{s}': {e}")))?
        }
        _ => ServeFaultPlan::default(),
    };
    let store_dir = args.required("store")?;
    let family = args.get_or("family", "model").to_string();
    let store =
        ArtifactStore::open_std(store_dir).map_err(|e| io_err(format!("opening store {store_dir}: {e}")))?;
    let (sampler, load) = Sampler::from_store(&store, &family)
        .map_err(|e| data_err(format!("loading released model from {store_dir}: {e}")))?;
    for s in &load.skipped {
        eprintln!("warning: skipped {}: {}", s.path.display(), s.reason);
    }
    let seq = load.seq;
    // --plan-cache wins over the DG_PLAN_CACHE environment fallback (which
    // the sampler itself reads at construction); both are escape hatches —
    // the cache is on by default and bitwise-invisible to responses.
    if let Some(v) = args.options.get("plan-cache") {
        match v.as_str() {
            "on" | "1" | "true" => sampler.set_plan_cache_enabled(true),
            "off" | "0" | "false" => sampler.set_plan_cache_enabled(false),
            other => return Err(config_err(format!("invalid plan-cache '{other}' (expected on or off)"))),
        }
    }

    let defaults = ServeConfig::default();
    let config = ServeConfig {
        max_fused_requests: args.num_or("max-fused", defaults.max_fused_requests)?,
        max_fused_rows: args.num_or("max-fused-rows", defaults.max_fused_rows)?,
        queue_depth: args.num_or("queue-depth", defaults.queue_depth)?,
        max_wait_us: args.num_or("max-wait-us", defaults.max_wait_us)?,
        latency_window: args.num_or("latency-window", defaults.latency_window)?,
        precision,
        shed_threshold: args.num_or("shed-threshold", defaults.shed_threshold)?,
        default_deadline_ms: args.num_or("default-deadline-ms", defaults.default_deadline_ms)?,
        faults,
    };
    let engine = Arc::new(BatchEngine::new(sampler, config));
    let max_requests = args.num_or("max-requests", 0u64)?;
    let reload_every_ms = args.num_or("reload-every-ms", 0u64)?;
    // Heartbeats default to the reload cadence but stand alone: a
    // pinned-release server (--reload-every-ms 0) still emits liveness
    // telemetry when --heartbeat-every-ms is set.
    let heartbeat_every_ms = args.num_or("heartbeat-every-ms", reload_every_ms)?;
    let drain_timeout_ms = args.num_or("drain-timeout-ms", 5_000u64)?;
    let max_line_bytes = args.num_or("max-line-bytes", 1_048_576usize)?;

    let log = match args.options.get("run-log") {
        Some(path) => {
            let l = RunLog::create(path).map_err(|e| io_err(format!("creating run log {path}: {e}")))?;
            Arc::new(Mutex::new(Some(l)))
        }
        None => Arc::new(Mutex::new(None)),
    };
    emit(
        &log,
        &RunEvent::ModelReload(ModelReloadEvent {
            reloaded: true,
            seq: Some(seq),
            skipped: load.skipped.iter().map(|s| s.reason.clone()).collect(),
        }),
    );

    SIGNALED.store(false, Ordering::SeqCst);
    install_signal_handlers();
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    // Hot-reload poller: follow the store's `latest` pointer and install
    // new releases atomically (in-flight fused passes finish on the
    // release they snapshotted). Consecutive failures back off the poll
    // interval exponentially — deterministic, jitter-free, capped at 64x —
    // and the next success snaps back to the base cadence.
    let poller = (reload_every_ms > 0).then(|| {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let log = Arc::clone(&log);
        let family = family.clone();
        std::thread::spawn(move || {
            let mut consecutive: u32 = 0;
            'poll: loop {
                let interval = reload_every_ms.saturating_mul(1u64 << consecutive.min(6));
                let wake = Instant::now() + Duration::from_millis(interval);
                while Instant::now() < wake {
                    if stop.load(Ordering::Relaxed) || signaled() {
                        break 'poll;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                match engine.reload(&store, &family) {
                    Ok(r) => {
                        consecutive = 0;
                        if r.reloaded || !r.skipped.is_empty() {
                            emit(
                                &log,
                                &RunEvent::ModelReload(ModelReloadEvent {
                                    reloaded: r.reloaded,
                                    seq: Some(r.seq),
                                    skipped: r.skipped.iter().map(|s| s.reason.clone()).collect(),
                                }),
                            );
                        }
                    }
                    // Resolution failed outright; the previous release
                    // keeps serving (health degrades until a poll works).
                    Err(e) => {
                        consecutive += 1;
                        emit(
                            &log,
                            &RunEvent::ModelReload(ModelReloadEvent {
                                reloaded: false,
                                seq: engine.loaded_seq(),
                                skipped: vec![e.to_string()],
                            }),
                        );
                    }
                }
            }
        })
    });

    // Liveness heartbeats, decoupled from reload polling.
    let heartbeat = (heartbeat_every_ms > 0).then(|| {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let log = Arc::clone(&log);
        std::thread::spawn(move || loop {
            let wake = Instant::now() + Duration::from_millis(heartbeat_every_ms);
            while Instant::now() < wake {
                if stop.load(Ordering::Relaxed) || signaled() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            emit(&log, &heartbeat_event(&engine, started));
        })
    });

    let mut drained = true;
    if args.flag("stdio") {
        // stdout carries responses, so the ready line goes to stderr.
        eprintln!(
            "dg serve: ready (stdio, family {family}, seq {seq}, precision {})",
            engine.precision().name()
        );
        let stdin = std::io::stdin();
        let mut out = BufWriter::new(std::io::stdout());
        for line in stdin.lock().lines() {
            if signaled() {
                break;
            }
            let line = line.map_err(|e| io_err(format!("reading stdin: {e}")))?;
            if line.trim().is_empty() {
                continue;
            }
            let resp = serve_line(&engine, &line);
            let json =
                serde_json::to_string(&resp).map_err(|e| data_err(format!("serializing response: {e}")))?;
            writeln!(out, "{json}")
                .and_then(|_| out.flush())
                .map_err(|e| io_err(format!("writing response: {e}")))?;
            let n = served.fetch_add(1, Ordering::Relaxed) + 1;
            if max_requests > 0 && n >= max_requests {
                break;
            }
        }
    } else {
        let addr = args.get_or("addr", "127.0.0.1:0");
        let listener = TcpListener::bind(addr).map_err(|e| io_err(format!("binding {addr}: {e}")))?;
        // Non-blocking accept so the loop can observe SIGTERM/--max-requests
        // instead of parking in accept(2) forever.
        listener.set_nonblocking(true).map_err(|e| io_err(format!("configuring listener: {e}")))?;
        let local = listener.local_addr().map_err(|e| io_err(e.to_string()))?;
        // The ready line is a contract: scripts parse the bound address off
        // it (ports are usually OS-assigned via --addr 127.0.0.1:0).
        println!(
            "dg serve: listening on {local} (family {family}, seq {seq}, precision {})",
            engine.precision().name()
        );
        std::io::stdout().flush().ok();
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::Relaxed) && !signaled() {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets may inherit the listener's
                    // non-blocking mode; force blocking + per-read timeouts.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let engine = Arc::clone(&engine);
                    let served = Arc::clone(&served);
                    let stop = Arc::clone(&stop);
                    handlers.push(std::thread::spawn(move || {
                        handle_conn(stream, engine, served, stop, max_requests, max_line_bytes)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
            handlers.retain(|h| !h.is_finished());
        }
        // Drain: stop admitting work, let in-flight requests finish up to
        // the deadline, then leave stragglers behind (they hold nothing the
        // exit path needs).
        engine.begin_drain();
        stop.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_millis(drain_timeout_ms.max(1));
        while handlers.iter().any(|h| !h.is_finished()) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        drained = !handlers.iter().any(|h| !h.is_finished());
        for h in handlers {
            if h.is_finished() {
                let _ = h.join();
            }
        }
    }

    engine.begin_drain();
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = heartbeat {
        let _ = h.join();
    }
    if let Some(p) = poller {
        let _ = p.join();
    }
    let stats = engine.stats();
    // Terminal heartbeat: the run log's last word, carrying the drain state.
    emit(&log, &heartbeat_event(&engine, started));
    engine.shutdown();
    let drain_note = if drained { "" } else { "; drain timeout elapsed with connections still open" };
    Ok(format!(
        "served {} requests in {} fused passes ({} samples, {} rejected, {} shed, {} deadline-expired, {} pass panics, {} reloads, plan cache {} hits / {} misses, precision {}, health {}, p50 {:.2} ms, p99 {:.2} ms){drain_note}",
        stats.requests,
        stats.batches,
        stats.samples,
        stats.rejected,
        stats.shed,
        stats.deadline_expired,
        stats.pass_panics,
        stats.reloads,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.precision,
        stats.health,
        stats.p50_ms,
        stats.p99_ms
    ))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineOutcome {
    /// A complete line is in the buffer.
    Line,
    /// A line exceeded the byte cap; it was consumed and discarded.
    TooLong,
    /// The read timed out mid-line; the partial prefix stays buffered.
    Timeout,
    /// The peer closed the connection.
    Eof,
    /// Unrecoverable transport error.
    Failed,
}

/// Reads one newline-terminated line into `buf` (which may already hold a
/// partial prefix from an earlier timeout), enforcing a `max`-byte cap so a
/// client streaming an endless line cannot grow server memory without
/// bound. An oversized line is consumed through its newline (`discarding`
/// spans timeouts) and reported as [`LineOutcome::TooLong`] exactly once —
/// the connection stays line-synchronized and usable.
fn read_bounded_line(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    discarding: &mut bool,
    max: usize,
) -> LineOutcome {
    loop {
        let (saw_newline, consumed) = {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineOutcome::Timeout
                }
                Err(_) => return LineOutcome::Failed,
            };
            if available.is_empty() {
                return LineOutcome::Eof;
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(p) => {
                    if !*discarding {
                        buf.extend_from_slice(&available[..p]);
                    }
                    (true, p + 1)
                }
                None => {
                    if !*discarding {
                        buf.extend_from_slice(available);
                    }
                    (false, available.len())
                }
            }
        };
        reader.consume(consumed);
        if saw_newline {
            if *discarding || buf.len() > max {
                *discarding = false;
                buf.clear();
                return LineOutcome::TooLong;
            }
            return LineOutcome::Line;
        }
        if buf.len() > max {
            buf.clear();
            *discarding = true;
        }
    }
}

/// One TCP connection: read request lines, write response lines. Short read
/// timeouts keep the handler responsive to shutdown instead of blocking
/// forever on an idle (or wedged) connection.
fn handle_conn(
    stream: TcpStream,
    engine: Arc<BatchEngine>,
    served: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    max_requests: u64,
    max_line_bytes: usize,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    let write_response = |writer: &mut BufWriter<TcpStream>, resp: &WireResponse| {
        let Ok(json) = serde_json::to_string(resp) else { return false };
        writeln!(writer, "{json}").and_then(|_| writer.flush()).is_ok()
    };
    loop {
        if stop.load(Ordering::Relaxed) || signaled() {
            return;
        }
        match read_bounded_line(&mut reader, &mut buf, &mut discarding, max_line_bytes) {
            LineOutcome::Timeout => continue,
            LineOutcome::Eof | LineOutcome::Failed => return,
            LineOutcome::TooLong => {
                let resp = error_response(
                    0,
                    engine.precision().name().to_string(),
                    format!("bad request: line exceeds --max-line-bytes ({max_line_bytes})"),
                );
                if !write_response(&mut writer, &resp) {
                    return;
                }
            }
            LineOutcome::Line => {
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                if line.trim().is_empty() {
                    continue;
                }
                let resp = serve_line(&engine, &line);
                if !write_response(&mut writer, &resp) {
                    return;
                }
                let n = served.fetch_add(1, Ordering::Relaxed) + 1;
                if max_requests > 0 && n >= max_requests {
                    // The accept loop polls `stop`; no wake-up needed.
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

pub(crate) fn cmd_sample(args: &Args) -> Result<String, CliError> {
    let addr = args.required("addr")?;
    let attrs_path = args.required("attrs")?;
    let attributes: Vec<Vec<dg_data::Value>> = read_json(attrs_path)?;
    let seed = args.num_or("seed", 0u64)?;
    let id = args.num_or("id", 1u64)?;
    let connect_timeout_ms = args.num_or("connect-timeout-ms", 10_000u64)?;
    // How long to wait for the response line before giving up — a wedged
    // server becomes an I/O-error exit, never an indefinite hang. 0
    // disables the bound.
    let timeout_ms = args.num_or("timeout-ms", 30_000u64)?;
    let deadline_ms = match args.options.get("deadline-ms") {
        Some(v) => Some(
            v.parse::<u64>().map_err(|_| config_err(format!("invalid value for --deadline-ms: '{v}'")))?,
        ),
        None => None,
    };
    let deadline = Instant::now() + Duration::from_millis(connect_timeout_ms);
    // The server may still be binding; retry until the deadline.
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io_err(format!("connecting to {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    stream
        .set_read_timeout((timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)))
        .map_err(|e| io_err(format!("configuring socket: {e}")))?;
    let req = WireRequest { id, seed, attributes, deadline_ms };
    let json = serde_json::to_string(&req).map_err(|e| data_err(format!("serializing request: {e}")))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| io_err(e.to_string()))?);
    writeln!(writer, "{json}")
        .and_then(|_| writer.flush())
        .map_err(|e| io_err(format!("sending request to {addr}: {e}")))?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            io_err(format!("timed out after {timeout_ms} ms waiting for a response from {addr}"))
        } else {
            io_err(format!("reading response from {addr}: {e}"))
        }
    })?;
    if line.trim().is_empty() {
        return Err(io_err(format!("{addr} closed the connection without responding")));
    }
    let resp: WireResponse =
        serde_json::from_str(line.trim()).map_err(|e| data_err(format!("parsing response: {e}")))?;
    if let Some(e) = &resp.error {
        return Err(data_err(format!("server rejected the request: {e}")));
    }
    if let Some(out) = args.options.get("out") {
        dg_io::atomic_write(Path::new(out), line.trim().as_bytes())
            .map_err(|e| io_err(format!("writing {out}: {e}")))?;
    }
    // The raw response line is the report, so scripts can pipe it to jq.
    Ok(line.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use dg_data::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tiny_model(seed: u64) -> DoppelGanger {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg =
            dg_datasets::SineConfig { num_objects: 16, length: 12, periods: vec![4, 8], noise_sigma: 0.05 };
        let data = dg_datasets::sine::generate(&cfg, &mut rng);
        let mut dg_cfg = DgConfig::quick().with_recommended_s(12);
        dg_cfg.attr_hidden = 8;
        dg_cfg.lstm_hidden = 8;
        dg_cfg.head_hidden = 8;
        dg_cfg.batch_size = 4;
        DoppelGanger::new(&data, dg_cfg, &mut rng)
    }

    fn wire_req(id: u64, seed: u64, attributes: Vec<Vec<Value>>) -> WireRequest {
        WireRequest { id, seed, attributes, deadline_ms: None }
    }

    #[test]
    fn publish_auto_increments_and_updates_the_pointer() {
        let dir = std::env::temp_dir().join(format!("dg-cli-publish-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let model = tiny_model(3);
        dg_io::atomic_write(&dir.join("model.json"), model.to_json().as_bytes()).unwrap();

        let out = run(&Args::parse(argv(&format!(
            "publish --model {} --store {} --family m",
            p("model.json"),
            p("store")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("seq 1"), "{out}");
        let out = run(&Args::parse(argv(&format!(
            "publish --model {} --store {} --family m",
            p("model.json"),
            p("store")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("seq 2"), "{out}");

        let store = ArtifactStore::open_std(p("store")).unwrap();
        assert_eq!(store.latest_hint("m"), Some(2));

        // A non-model payload is rejected before it can pollute the store.
        dg_io::atomic_write(&dir.join("junk.json"), b"{\"not\":\"a model\"}").unwrap();
        let err = run(&Args::parse(argv(&format!(
            "publish --model {} --store {} --family m",
            p("junk.json"),
            p("store")
        )))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.kind, crate::CliErrorKind::Data, "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wire_protocol_serves_echoes_ids_and_explains_rejections() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(4)), ServeConfig::default());
        let req = wire_req(7, 42, vec![vec![Value::Cat(0)], vec![Value::Cat(1)]]);
        let resp = serve_line(&engine, &serde_json::to_string(&req).unwrap());
        assert_eq!(resp.id, 7);
        assert_eq!(resp.objects.len(), 2);
        assert!(resp.error.is_none(), "{:?}", resp.error);
        assert_eq!(resp.objects[0].attributes, vec![Value::Cat(0)]);

        // Same request, same release: byte-identical response objects.
        let again = serve_line(&engine, &serde_json::to_string(&req).unwrap());
        assert_eq!(
            serde_json::to_string(&resp.objects).unwrap(),
            serde_json::to_string(&again.objects).unwrap()
        );

        let garbage = serve_line(&engine, "{ not json");
        assert!(garbage.error.is_some());
        assert!(garbage.objects.is_empty());

        let wrong_arity = wire_req(8, 1, vec![vec![Value::Cat(0), Value::Cat(1)]]);
        let rejected = serve_line(&engine, &serde_json::to_string(&wrong_arity).unwrap());
        assert_eq!(rejected.id, 8);
        assert!(rejected.error.is_some());
    }

    #[test]
    fn serve_line_salvages_the_id_from_malformed_requests() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(5)), ServeConfig::default());
        // Parsable JSON, unparsable WireRequest: the id must survive.
        let resp = serve_line(&engine, r#"{"id": 41, "attributes": "nope"}"#);
        assert_eq!(resp.id, 41, "error replies must stay correlatable");
        assert!(resp.error.as_deref().unwrap_or("").starts_with("bad request:"));
        // Missing attributes entirely.
        let resp = serve_line(&engine, r#"{"id": 42, "seed": 1}"#);
        assert_eq!(resp.id, 42);
        assert!(resp.error.is_some());
        // Non-numeric id cannot be salvaged; 0 is the documented fallback.
        let resp = serve_line(&engine, r#"{"id": "seven"}"#);
        assert_eq!(resp.id, 0);
        assert!(resp.error.is_some());
        // Not JSON at all.
        let resp = serve_line(&engine, "{ not json");
        assert_eq!(resp.id, 0);
        assert!(resp.error.is_some());
    }

    #[test]
    fn health_verb_reports_state_without_generating() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(6)), ServeConfig::default());
        let resp = serve_line(&engine, r#"{"id": 9, "health": true}"#);
        assert_eq!(resp.id, 9);
        assert_eq!(resp.health.as_deref(), Some("ok"));
        assert!(resp.error.is_none());
        assert!(resp.objects.is_empty());
        assert_eq!(engine.stats().requests, 0, "a probe must not generate");
        engine.begin_drain();
        let resp = serve_line(&engine, r#"{"health": true}"#);
        assert_eq!(resp.health.as_deref(), Some("draining"));
        // Ordinary responses never carry (or serialize) the health field.
        let ok =
            serve_line(&engine, &serde_json::to_string(&wire_req(1, 2, vec![vec![Value::Cat(0)]])).unwrap());
        assert!(ok.health.is_none());
        assert!(!serde_json::to_string(&ok).unwrap().contains("\"health\""));
    }

    #[test]
    fn empty_attributes_request_serves_an_empty_object_list() {
        let engine = BatchEngine::new(Sampler::new(tiny_model(7)), ServeConfig::default());
        let resp = serve_line(&engine, &serde_json::to_string(&wire_req(3, 0, Vec::new())).unwrap());
        assert_eq!(resp.id, 3);
        assert!(resp.error.is_none(), "{:?}", resp.error);
        assert!(resp.objects.is_empty());
    }

    #[test]
    fn overloaded_and_deadline_errors_surface_as_wire_phrases() {
        // Wedge pass 0 so the queue (depth 2, unbatched) backs up.
        let cfg = ServeConfig {
            queue_depth: 2,
            max_fused_requests: 1,
            faults: ServeFaultPlan { stall_on_pass: Some(0), stall_ms: 400, ..ServeFaultPlan::default() },
            ..ServeConfig::default()
        };
        let engine = BatchEngine::new(Sampler::new(tiny_model(8)), cfg);
        let row = vec![vec![Value::Cat(0)]];
        let wedge = engine.try_submit(SampleRequest { attribute_rows: row.clone(), seed: 0 }, None).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // A 1ms client deadline behind the 400ms stall: admitted (a queue
        // slot is free), but the bounded wait expires long before a pass
        // slot opens up.
        let mut req = wire_req(12, 3, row.clone());
        req.deadline_ms = Some(1);
        let resp = serve_line(&engine, &serde_json::to_string(&req).unwrap());
        assert_eq!(resp.id, 12);
        assert_eq!(resp.error.as_deref(), Some("deadline exceeded"));
        // Fill the queue, then overflow it through the wire path: the
        // overflow is shed immediately instead of blocking the handler.
        let _parked =
            engine.try_submit(SampleRequest { attribute_rows: row.clone(), seed: 1 }, None).unwrap();
        let resp = serve_line(&engine, &serde_json::to_string(&wire_req(11, 2, row)).unwrap());
        assert_eq!(resp.id, 11);
        assert_eq!(resp.error.as_deref(), Some("overloaded"));
        drop(wedge);
    }

    #[test]
    fn bounded_line_reader_discards_oversized_lines_and_stays_synchronized() {
        let payload = format!("{}\n{}\n", "x".repeat(64), r#"{"health":true}"#);
        let mut reader = std::io::BufReader::new(payload.as_bytes());
        let mut buf = Vec::new();
        let mut discarding = false;
        // The 64-byte line overflows a 16-byte cap: reported once, consumed
        // fully, and the next line parses normally.
        assert_eq!(read_bounded_line(&mut reader, &mut buf, &mut discarding, 16), LineOutcome::TooLong);
        assert!(buf.is_empty() && !discarding);
        assert_eq!(read_bounded_line(&mut reader, &mut buf, &mut discarding, 16), LineOutcome::Line);
        assert_eq!(String::from_utf8_lossy(&buf), r#"{"health":true}"#);
        buf.clear();
        assert_eq!(read_bounded_line(&mut reader, &mut buf, &mut discarding, 16), LineOutcome::Eof);
    }
}
