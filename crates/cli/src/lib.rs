//! # dg-cli — command-line workflow for DoppelGANger
//!
//! Implements the paper's Fig. 2 workflow as a CLI: the data holder trains
//! on a JSON dataset and releases a JSON model; the data consumer generates
//! synthetic JSON datasets from the released model and evaluates fidelity.
//!
//! ```text
//! dg demo      --out data.json                      # write a demo dataset
//! dg import    --format wwt --input raw.csv --out data.json
//! dg schema    --data data.json                     # inspect a dataset
//! dg train     --data data.json --out model.json    # train + release
//! dg generate  --model model.json -n 500 --out synth.json
//! dg retrain   --model model.json --target target.json --out masked.json
//! dg evaluate  --real data.json --synthetic synth.json
//! dg publish   --model model.json --store releases/ --family model
//! dg serve     --store releases/ --family model --reload-every-ms 1000
//! dg sample    --addr 127.0.0.1:7878 --attrs attrs.json --seed 42
//! ```
//!
//! Datasets are `dg_data::Dataset` serialized as JSON; models are released
//! [`doppelganger::DoppelGanger`] parameters as JSON. Everything the CLI
//! persists goes through `dg_io`'s atomic writes, and `train` keeps a
//! rotated, crash-safe checkpoint directory it can `--resume` from
//! bitwise-identically after a kill.
//!
//! Failures carry a [`CliErrorKind`] that maps to a distinct process exit
//! code, so scripts can tell a typo from a full disk from a diverged run.

#![warn(missing_docs)]

pub mod serve;
pub use serve::{WireRequest, WireResponse};

use dg_data::Dataset;
use dg_metrics::{attribute_histogram, average_autocorrelation, curve_mse, jsd_counts, wasserstein1};
use doppelganger::prelude::*;
use doppelganger::telemetry::ResumedEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// What went wrong, at the granularity scripts branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliErrorKind {
    /// Bad command line: unknown subcommand, stray positional, missing flag.
    Usage,
    /// A flag parsed but its value is unusable.
    Config,
    /// The filesystem failed: read, write, or checkpoint persistence.
    Io,
    /// Training diverged and the watchdog aborted the run.
    Diverged,
    /// Input data (dataset, model, or import rows) failed to parse.
    Data,
}

/// A CLI failure: a kind for the exit code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Classification driving [`CliError::exit_code`].
    pub kind: CliErrorKind,
    /// What happened.
    pub message: String,
}

impl CliError {
    /// Builds an error of the given kind.
    pub fn new(kind: CliErrorKind, message: impl Into<String>) -> Self {
        CliError { kind, message: message.into() }
    }

    /// The process exit code for this failure: 2 usage/config, 3 I/O,
    /// 4 divergence abort, 5 bad data.
    pub fn exit_code(&self) -> i32 {
        match self.kind {
            CliErrorKind::Usage | CliErrorKind::Config => 2,
            CliErrorKind::Io => 3,
            CliErrorKind::Diverged => 4,
            CliErrorKind::Data => 5,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn usage_err(message: impl Into<String>) -> CliError {
    CliError::new(CliErrorKind::Usage, message)
}

fn config_err(message: impl Into<String>) -> CliError {
    CliError::new(CliErrorKind::Config, message)
}

fn io_err(message: impl Into<String>) -> CliError {
    CliError::new(CliErrorKind::Io, message)
}

fn data_err(message: impl Into<String>) -> CliError {
    CliError::new(CliErrorKind::Data, message)
}

fn train_err(e: TrainError) -> CliError {
    let kind = match &e {
        TrainError::Diverged { .. } => CliErrorKind::Diverged,
        TrainError::CheckpointFailed { .. } => CliErrorKind::Io,
    };
    CliError::new(kind, e.to_string())
}

/// A parsed command line: subcommand plus `--flag value` options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand (`train`, `generate`, ...).
    pub command: String,
    /// Flag/value pairs (leading dashes stripped).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses `argv[1..]`.
    ///
    /// Flags are `--name value` (or `-n value`); a flag without a following
    /// value gets `"true"`.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, CliError> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().ok_or_else(|| usage_err("missing subcommand; try `dg help`"))?;
        let mut options = HashMap::new();
        while let Some(tok) = it.next() {
            let name = tok.trim_start_matches('-').to_string();
            if !tok.starts_with('-') {
                return Err(usage_err(format!("unexpected positional argument '{tok}'")));
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with('-') => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            options.insert(name, value);
        }
        Ok(Args { command, options })
    }

    /// A required option.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| usage_err(format!("missing required option --{name}")))
    }

    /// An optional option with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.options.get(name).map(String::as_str).unwrap_or(default)
    }

    /// A numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| config_err(format!("invalid value for --{name}: '{v}'"))),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }
}

/// Runs a parsed command, returning the report to print.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "demo" => cmd_demo(args),
        "import" => cmd_import(args),
        "schema" => cmd_schema(args),
        "train" => cmd_train(args),
        "generate" => cmd_generate(args),
        "retrain" => cmd_retrain(args),
        "evaluate" => cmd_evaluate(args),
        "publish" => serve::cmd_publish(args),
        "serve" => serve::cmd_serve(args),
        "sample" => serve::cmd_sample(args),
        other => Err(usage_err(format!("unknown subcommand '{other}'\n{}", usage()))),
    }
}

/// The CLI usage text.
pub fn usage() -> String {
    "dg — DoppelGANger for networked time series (paper workflow, Fig. 2)\n\
     \n\
     subcommands:\n\
     \x20 demo      --out <data.json> [--objects N] [--length T]     write a demo dataset\n\
     \x20 import    --format wwt|mba|gcut --input <raw.csv>\n\
     \x20           --out <data.json> [--lenient]                    import a real CSV export\n\
     \x20                                                            (--lenient skips bad rows)\n\
     \x20 schema    --data <data.json>                               inspect a dataset\n\
     \x20 train     --data <data.json> --out <model.json>\n\
     \x20           [--iterations N=500] [--seed S=0] [--batch B]\n\
     \x20           [--dp-sigma x --dp-clip c]\n\
     \x20           [--run-log <log.jsonl>]                          JSONL run telemetry\n\
     \x20           [--checkpoint-every K]                           rotated crash-safe checkpoints\n\
     \x20           [--checkpoint-dir D=<model.json>.ckpts]\n\
     \x20           [--checkpoint-retain N=3]\n\
     \x20           [--resume]                                       continue from the newest\n\
     \x20                                                            valid checkpoint, bitwise\n\
     \x20           [--on-divergence warn|abort|rollback]            NaN/Inf watchdog policy\n\
     \x20                                                            (default abort)\n\
     \x20 generate  --model <model.json> --out <synth.json>\n\
     \x20           [-n N=100] [--seed S=0]\n\
     \x20           [--conditioned <attrs.json>]                     generate synthetic data\n\
     \x20 retrain   --model <model.json> --target <data.json>\n\
     \x20           --out <model2.json> [--iterations N=300]\n\
     \x20           [--run-log <log.jsonl>]                          mask/shift attributes\n\
     \x20 evaluate  --real <data.json> --synthetic <synth.json>      fidelity report\n\
     \x20 publish   --model <model.json> --store <dir>\n\
     \x20           [--family F=model] [--seq N] [--retain N=8]      release into the artifact store\n\
     \x20 serve     --store <dir> [--family F=model]\n\
     \x20           [--addr H:P=127.0.0.1:0 | --stdio]\n\
     \x20           [--reload-every-ms N]                            follow the latest pointer\n\
     \x20           [--max-requests N] [--max-fused N=64]\n\
     \x20           [--max-wait-us N=0]                              batch-gather window\n\
     \x20           [--precision f32|bf16]                           inference tier (or env\n\
     \x20                                                            DG_PRECISION; serving only)\n\
     \x20           [--latency-window N=4096]                        stats retention bound\n\
     \x20           [--shed-threshold N]                             queue depth past which\n\
     \x20                                                            requests shed as overloaded\n\
     \x20           [--default-deadline-ms N=30000]                  applied when a request\n\
     \x20                                                            carries no deadline_ms\n\
     \x20           [--heartbeat-every-ms N]                         decoupled from the reload\n\
     \x20                                                            poller (default: reload rate)\n\
     \x20           [--drain-timeout-ms N=10000]                     SIGTERM/SIGINT drain budget\n\
     \x20           [--max-line-bytes N=1048576]                     wire request size cap\n\
     \x20           [--run-log <log.jsonl>]                          batched sampling service\n\
     \x20                                                            (line-delimited JSON)\n\
     \x20 sample    --addr <H:P> --attrs <attrs.json> [--seed S=0]\n\
     \x20           [--id N=1] [--out <resp.json>]\n\
     \x20           [--timeout-ms N=30000] [--deadline-ms N]         one-shot serving client\n\
     \n\
     exit codes: 2 usage/config, 3 I/O, 4 divergence abort, 5 bad input data\n"
        .to_string()
}

fn cmd_demo(args: &Args) -> Result<String, CliError> {
    let out = args.required("out")?;
    let objects = args.num_or("objects", 200usize)?;
    let length = args.num_or("length", 48usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg =
        dg_datasets::SineConfig { num_objects: objects, length, periods: vec![8, 16], noise_sigma: 0.05 };
    let data = dg_datasets::sine::generate(&cfg, &mut rng);
    write_json(out, &data)?;
    Ok(format!("wrote demo dataset ({objects} objects, length {length}) to {out}"))
}

fn cmd_import(args: &Args) -> Result<String, CliError> {
    let name = args.required("format")?;
    let format = dg_datasets::Format::by_name(name)
        .ok_or_else(|| config_err(format!("unknown --format '{name}' (expected wwt, mba, or gcut)")))?;
    let input = args.required("input")?;
    let out = args.required("out")?;
    let opts = if args.flag("lenient") {
        dg_datasets::LoadOptions::lenient()
    } else {
        dg_datasets::LoadOptions::strict()
    };
    let text = std::fs::read_to_string(input).map_err(|e| io_err(format!("reading {input}: {e}")))?;
    let (data, report) =
        format.load_csv(Path::new(input), &text, opts).map_err(|e| data_err(e.to_string()))?;
    for skip in report.skipped.iter().take(5) {
        eprintln!("warning: skipped {skip}");
    }
    if report.skipped.len() > 5 {
        eprintln!("warning: ... and {} more bad rows", report.skipped.len() - 5);
    }
    write_json(out, &data)?;
    let skipped_note = if report.skipped.is_empty() {
        String::new()
    } else {
        format!(" (skipped {} bad rows)", report.skipped.len())
    };
    Ok(format!("imported {} {} objects to {out}{skipped_note}", report.loaded, format.name))
}

fn cmd_schema(args: &Args) -> Result<String, CliError> {
    let data: Dataset = read_json(args.required("data")?)?;
    let mut s = String::new();
    let _ = writeln!(s, "objects: {}", data.len());
    let _ = writeln!(
        s,
        "max length: {} ({})",
        data.schema.max_len,
        data.schema.timescale.as_deref().unwrap_or("unspecified timescale")
    );
    let _ = writeln!(s, "attributes ({}):", data.schema.num_attributes());
    for (i, a) in data.schema.attributes.iter().enumerate() {
        let extra = if a.kind.is_categorical() {
            format!("categorical, {} values, counts {:?}", a.kind.num_categories(), data.attribute_counts(i))
        } else {
            "continuous".to_string()
        };
        let _ = writeln!(s, "  {} — {extra}", a.name);
    }
    let _ = writeln!(s, "features ({}):", data.schema.num_features());
    for (i, f) in data.schema.features.iter().enumerate() {
        if f.kind.is_categorical() {
            let _ = writeln!(s, "  {} — categorical, {} values", f.name, f.kind.num_categories());
        } else {
            let (mn, mx) = data.feature_range(i);
            let _ = writeln!(s, "  {} — continuous, observed range [{mn:.3}, {mx:.3}]", f.name);
        }
    }
    let lengths = data.lengths();
    let (mn, mx) = (lengths.iter().min().copied().unwrap_or(0), lengths.iter().max().copied().unwrap_or(0));
    let _ = writeln!(s, "series lengths: {mn}..{mx}");
    Ok(s)
}

fn cmd_train(args: &Args) -> Result<String, CliError> {
    let data: Dataset = read_json(args.required("data")?)?;
    let out = args.required("out")?;
    let iterations = args.num_or("iterations", 500usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let mut config = DgConfig::quick().with_recommended_s(data.schema.max_len);
    config.batch_size = args.num_or("batch", config.batch_size)?;
    // The NaN/Inf watchdog is always on; --on-divergence picks the response
    // (default: abort with a clean error instead of writing NaN weights).
    let policy: DivergencePolicy = args.get_or("on-divergence", "abort").parse().map_err(config_err)?;

    let checkpoint_every = args.num_or("checkpoint-every", 0usize)?;
    let retain = args.num_or("checkpoint-retain", 3usize)?;
    let resume = args.flag("resume");
    let default_ckpt_dir = format!("{out}.ckpts");
    let ckpt_dir = args.get_or("checkpoint-dir", &default_ckpt_dir);
    let mut store = if checkpoint_every > 0 || resume {
        let s = CheckpointStore::open_std(ckpt_dir)
            .map_err(|e| io_err(format!("opening checkpoint store: {e}")))?;
        Some(s.with_retain(retain.max(1)))
    } else {
        None
    };

    // The training stream is a serializable RNG so a resumed process can
    // continue the exact noise sequence; model *initialization* stays on
    // StdRng (only fresh starts initialize).
    let mut shared = SharedRng::seed_from_u64(seed);
    let mut recovered = None;
    let mut resumed_trainer = None;
    if resume {
        let st = store.as_ref().expect("resume opened the store");
        let (loaded, skipped) = st.load_latest().map_err(|e| io_err(format!("scanning checkpoints: {e}")))?;
        if let Some(l) = loaded {
            if let Some(r) = l.snapshot.rng {
                shared = SharedRng::new(r);
            }
            recovered = Some((l.snapshot.iteration, l.path.display().to_string(), skipped.len()));
            resumed_trainer = Some(Trainer::resume(l.snapshot.checkpoint));
            for s in &skipped {
                eprintln!("warning: skipped unusable checkpoint {}: {}", s.path.display(), s.reason);
            }
        }
    }
    let mut trainer = match resumed_trainer {
        Some(t) => t,
        None => {
            let mut rng = StdRng::seed_from_u64(seed);
            Trainer::new(DoppelGanger::new(&data, config, &mut rng))
        }
    };
    if let Some(sigma) = args.options.get("dp-sigma") {
        let sigma: f32 = sigma.parse().map_err(|_| config_err("invalid --dp-sigma"))?;
        let clip: f32 = args.num_or("dp-clip", 1.0f32)?;
        trainer = trainer.with_dp(DpConfig { clip_norm: clip, noise_multiplier: sigma });
    }
    let encoded = trainer.model.encode(&data);

    let mut monitor = TrainMonitor::new()
        .with_label("dg train")
        .with_seed(seed)
        .with_watchdog(Watchdog::with_policy(policy));
    if let Some(path) = args.options.get("run-log") {
        let log = RunLog::create(path).map_err(|e| io_err(format!("creating run log {path}: {e}")))?;
        monitor = monitor.with_log(log);
    }
    if let Some((iteration, checkpoint, skipped)) = &recovered {
        monitor.emit(&RunEvent::Resumed(ResumedEvent {
            iteration: *iteration,
            checkpoint: checkpoint.clone(),
            skipped: *skipped,
        }));
    }
    let start_iter = recovered.as_ref().map(|(it, _, _)| *it).unwrap_or(0);
    if checkpoint_every > 0 {
        let st = store.take().expect("checkpointing opened the store");
        // The sink sees local fit iterations; offset by the resume base so
        // snapshots stay globally sequenced and never overwrite earlier
        // checkpoints with mislabeled newer state.
        monitor =
            monitor.with_checkpoint_sink(checkpoint_every, checkpoint_sink(st, shared.clone(), start_iter));
    }

    let remaining = iterations.saturating_sub(start_iter);
    let mut last = StepMetrics::default();
    let report = trainer
        .fit_monitored(&encoded, remaining, &mut shared, &mut monitor, |m| last = *m)
        .map_err(train_err)?;
    let model = trainer.into_model();
    dg_io::atomic_write(Path::new(out), model.to_json().as_bytes())
        .map_err(|e| io_err(format!("writing {out}: {e}")))?;
    let resumed_note = match &recovered {
        Some((it, _, _)) => format!(" (resumed from iteration {it})"),
        None if resume => " (no usable checkpoint; started fresh)".to_string(),
        None => String::new(),
    };
    let outcome = match report.outcome {
        FitOutcome::Completed => String::new(),
        FitOutcome::DivergedWarned { first_iteration } => {
            format!("; WARNING: non-finite values first seen at iteration {first_iteration}")
        }
        FitOutcome::RolledBack { detected_at, .. } => {
            format!("; diverged at iteration {detected_at}, rolled back to the last healthy snapshot")
        }
    };
    Ok(format!(
        "trained {} iterations{resumed_note} (final W~{:.3}); released model to {out}{outcome}",
        report.iterations_run, last.wasserstein
    ))
}

fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let sampler = Sampler::new(load_model(args.required("model")?)?);
    let out = args.required("out")?;
    let seed = args.num_or("seed", 0u64)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // Optional conditional generation: --conditioned <attrs.json> holds a
    // JSON array of attribute rows (the §3.1 "desired attribute
    // distribution" interface); otherwise n unconditional samples.
    let (synth, how) = if let Some(path) = args.options.get("conditioned") {
        let rows: Vec<Vec<dg_data::Value>> = read_json(path)?;
        sampler.validate_rows(&rows).map_err(|e| data_err(format!("invalid rows in {path}: {e}")))?;
        let objects = sampler.generate_conditioned(&rows, &mut rng);
        let n = objects.len();
        let schema = sampler.model().encoder.schema.clone();
        (Dataset::new(schema, objects), format!("{n} objects conditioned on {path}"))
    } else {
        let n = args.num_or("n", 100usize)?;
        (sampler.generate_dataset(n, &mut rng), format!("{n} objects"))
    };
    write_json(out, &synth)?;
    Ok(format!("generated {how} to {out}"))
}

fn cmd_retrain(args: &Args) -> Result<String, CliError> {
    let mut model = load_model(args.required("model")?)?;
    let target_data: Dataset = read_json(args.required("target")?)?;
    let out = args.required("out")?;
    let iterations = args.num_or("iterations", 300usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let target = AttributeDistribution::from_dataset(&target_data);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut monitor = TrainMonitor::new()
        .with_label("dg retrain")
        .with_seed(seed)
        .with_watchdog(Watchdog::with_policy(DivergencePolicy::Abort));
    if let Some(path) = args.options.get("run-log") {
        let log = RunLog::create(path).map_err(|e| io_err(format!("creating run log {path}: {e}")))?;
        monitor = monitor.with_log(log);
    }
    retrain_attribute_generator_monitored(&mut model, &target, iterations, &mut rng, &mut monitor)
        .map_err(train_err)?;
    dg_io::atomic_write(Path::new(out), model.to_json().as_bytes())
        .map_err(|e| io_err(format!("writing {out}: {e}")))?;
    Ok(format!(
        "retrained the attribute generator for {iterations} iterations toward {} combos; wrote {out}",
        target.combos.len()
    ))
}

fn cmd_evaluate(args: &Args) -> Result<String, CliError> {
    let real: Dataset = read_json(args.required("real")?)?;
    let synth: Dataset = read_json(args.required("synthetic")?)?;
    if real.schema != synth.schema {
        return Err(data_err("real and synthetic datasets have different schemas"));
    }
    let mut s = String::new();
    let _ = writeln!(s, "fidelity report ({} real vs {} synthetic objects)", real.len(), synth.len());

    // Attribute marginals.
    for (i, a) in real.schema.attributes.iter().enumerate() {
        if a.kind.is_categorical() {
            let jsd = jsd_counts(&attribute_histogram(&real, i), &attribute_histogram(&synth, i));
            let _ = writeln!(
                s,
                "  attribute '{}' JSD: {jsd:.4} (0 = identical, {:.4} = disjoint)",
                a.name,
                std::f64::consts::LN_2
            );
        }
    }
    // Length distribution.
    let rl: Vec<f64> = real.lengths().into_iter().map(|l| l as f64).collect();
    let sl: Vec<f64> = synth.lengths().into_iter().map(|l| l as f64).collect();
    let _ = writeln!(s, "  length W1: {:.3}", wasserstein1(&rl, &sl));
    // Per-feature: autocorrelation MSE + per-sample-mean W1.
    let max_lag = real.schema.max_len.saturating_sub(2).max(1);
    for (i, f) in real.schema.features.iter().enumerate() {
        if f.kind.is_categorical() {
            continue;
        }
        let rac = average_autocorrelation(&real, i, max_lag, 8);
        let sac = average_autocorrelation(&synth, i, max_lag, 8);
        let mse = curve_mse(&rac[1..], &sac[1..]);
        let rmeans: Vec<f64> = feature_means(&real, i);
        let smeans: Vec<f64> = feature_means(&synth, i);
        let w1 = wasserstein1(&rmeans, &smeans);
        let _ = writeln!(s, "  feature '{}': autocorr MSE {mse:.5}, sample-mean W1 {w1:.4}", f.name);
    }
    Ok(s)
}

fn feature_means(d: &Dataset, i: usize) -> Vec<f64> {
    d.objects
        .iter()
        .filter(|o| !o.is_empty())
        .map(|o| {
            let s = o.feature_series(i);
            s.iter().sum::<f64>() / s.len() as f64
        })
        .collect()
}

fn load_model(path: &str) -> Result<DoppelGanger, CliError> {
    let json = std::fs::read_to_string(path).map_err(|e| io_err(format!("reading {path}: {e}")))?;
    DoppelGanger::from_json(&json).map_err(|e| data_err(format!("parsing model {path}: {e}")))
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let json = std::fs::read_to_string(path).map_err(|e| io_err(format!("reading {path}: {e}")))?;
    serde_json::from_str(&json).map_err(|e| data_err(format!("parsing {path}: {e}")))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    let json = serde_json::to_string(value).map_err(|e| data_err(format!("serializing: {e}")))?;
    dg_io::atomic_write(Path::new(path), json.as_bytes()).map_err(|e| io_err(format!("writing {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_flags_and_values() {
        let a = Args::parse(argv("train --data d.json --out m.json --iterations 50")).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.required("data").unwrap(), "d.json");
        assert_eq!(a.num_or("iterations", 0usize).unwrap(), 50);
        assert_eq!(a.num_or("seed", 9u64).unwrap(), 9);
    }

    #[test]
    fn parse_rejects_positional_and_missing() {
        assert!(Args::parse(argv("train stray")).is_err());
        assert!(Args::parse(Vec::new()).is_err());
        let a = Args::parse(argv("train --flag")).unwrap();
        assert_eq!(a.get_or("flag", "x"), "true");
        assert!(a.flag("flag") && !a.flag("other"));
    }

    #[test]
    fn unknown_subcommand_reports_usage() {
        let a = Args::parse(argv("bogus")).unwrap();
        let err = run(&a).unwrap_err();
        assert_eq!(err.kind, CliErrorKind::Usage);
        assert!(err.message.contains("unknown subcommand"));
        assert!(err.message.contains("subcommands:"));
    }

    #[test]
    fn error_kinds_map_to_distinct_exit_codes() {
        let code = |kind| CliError::new(kind, "x").exit_code();
        assert_eq!(code(CliErrorKind::Usage), 2);
        assert_eq!(code(CliErrorKind::Config), 2);
        assert_eq!(code(CliErrorKind::Io), 3);
        assert_eq!(code(CliErrorKind::Diverged), 4);
        assert_eq!(code(CliErrorKind::Data), 5);
    }

    #[test]
    fn missing_files_and_bad_json_classify_separately() {
        let err = run(&Args::parse(argv("schema --data /nonexistent/x.json")).unwrap()).unwrap_err();
        assert_eq!(err.kind, CliErrorKind::Io, "{err}");
        let dir = std::env::temp_dir().join(format!("dg-cli-badjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        dg_io::atomic_write(&bad, b"{ not json").unwrap();
        let err = run(&Args::parse(argv(&format!("schema --data {}", bad.display()))).unwrap()).unwrap_err();
        assert_eq!(err.kind, CliErrorKind::Data, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_workflow_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dg-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        // demo -> schema
        let out =
            run(&Args::parse(argv(&format!("demo --out {} --objects 24 --length 12", p("data.json"))))
                .unwrap())
            .unwrap();
        assert!(out.contains("wrote demo dataset"));
        let schema = run(&Args::parse(argv(&format!("schema --data {}", p("data.json")))).unwrap()).unwrap();
        assert!(schema.contains("objects: 24"));

        // train (tiny) -> generate -> evaluate
        let out = run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 5 --batch 8",
            p("data.json"),
            p("model.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("released model"));
        let out = run(&Args::parse(argv(&format!(
            "generate --model {} --out {} --n 10",
            p("model.json"),
            p("synth.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("generated 10"));
        let report = run(&Args::parse(argv(&format!(
            "evaluate --real {} --synthetic {}",
            p("data.json"),
            p("synth.json")
        )))
        .unwrap())
        .unwrap();
        assert!(report.contains("fidelity report"));
        assert!(report.contains("autocorr MSE"));

        // conditional generation with fixed attribute rows
        let attrs: Vec<Vec<dg_data::Value>> =
            vec![vec![dg_data::Value::Cat(0)], vec![dg_data::Value::Cat(1)]];
        dg_io::atomic_write(&dir.join("attrs.json"), serde_json::to_string(&attrs).unwrap().as_bytes())
            .unwrap();
        let out = run(&Args::parse(argv(&format!(
            "generate --model {} --out {} --conditioned {}",
            p("model.json"),
            p("cond.json"),
            p("attrs.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("conditioned"));
        let cond: dg_data::Dataset =
            serde_json::from_str(&std::fs::read_to_string(p("cond.json")).unwrap()).unwrap();
        assert_eq!(cond.len(), 2);
        assert_eq!(cond.objects[0].attributes, vec![dg_data::Value::Cat(0)]);
        assert_eq!(cond.objects[1].attributes, vec![dg_data::Value::Cat(1)]);

        // retrain against the dataset's own empirical distribution
        let out = run(&Args::parse(argv(&format!(
            "retrain --model {} --target {} --out {} --iterations 3",
            p("model.json"),
            p("data.json"),
            p("masked.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("retrained"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_run_log_and_checkpoint_flags() {
        let dir = std::env::temp_dir().join(format!("dg-cli-runlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        run(&Args::parse(argv(&format!("demo --out {} --objects 16 --length 10", p("data.json")))).unwrap())
            .unwrap();

        let out = run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 4 --batch 8 --run-log {} \
             --checkpoint-every 2 --on-divergence rollback",
            p("data.json"),
            p("model.json"),
            p("run.jsonl")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("trained 4 iterations"), "{out}");

        // The run log parses line-for-line: header, iteration events, end.
        let text = std::fs::read_to_string(p("run.jsonl")).unwrap();
        let events = doppelganger::telemetry::parse_jsonl(&text).expect("run log must parse");
        assert!(matches!(&events[0], RunEvent::Header(h) if h.label == "dg train" && h.seed == Some(0)));
        let iters = events.iter().filter(|e| matches!(e, RunEvent::Iteration(_))).count();
        assert_eq!(iters, 4);
        assert!(matches!(events.last(), Some(RunEvent::End(_))));

        // Periodic checkpoints landed in the rotated crash-safe store.
        let store = CheckpointStore::open_std(format!("{}.ckpts", p("model.json"))).unwrap();
        let (loaded, skipped) = store.load_latest().unwrap();
        let loaded = loaded.expect("checkpoints were written");
        assert_eq!(loaded.snapshot.iteration, 4);
        assert!(loaded.snapshot.rng.is_some(), "snapshot carries the RNG stream");
        assert!(skipped.is_empty());

        // A bad policy value is a clean CLI config error, not a panic.
        let err = run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 1 --on-divergence explode",
            p("data.json"),
            p("model.json")
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.message.contains("divergence policy"), "{err}");
        assert_eq!(err.exit_code(), 2);

        // Retrain also accepts --run-log.
        let out = run(&Args::parse(argv(&format!(
            "retrain --model {} --target {} --out {} --iterations 2 --run-log {}",
            p("model.json"),
            p("data.json"),
            p("masked.json"),
            p("retrain.jsonl")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("retrained"));
        let text = std::fs::read_to_string(p("retrain.jsonl")).unwrap();
        let events = doppelganger::telemetry::parse_jsonl(&text).expect("retrain log must parse");
        assert!(events.iter().any(|e| matches!(e, RunEvent::Iteration(_))));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_continues_bitwise_identically() {
        let dir = std::env::temp_dir().join(format!("dg-cli-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        run(&Args::parse(argv(&format!("demo --out {} --objects 16 --length 10", p("data.json")))).unwrap())
            .unwrap();

        // Ground truth: 6 uninterrupted iterations.
        run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 6 --batch 8 --checkpoint-every 2",
            p("data.json"),
            p("full.json")
        )))
        .unwrap())
        .unwrap();

        // "Interrupted" run: stop after 4 iterations, then resume to 6.
        run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 4 --batch 8 --checkpoint-every 2",
            p("data.json"),
            p("part.json")
        )))
        .unwrap())
        .unwrap();
        let out = run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 6 --batch 8 --checkpoint-every 2 \
             --resume --checkpoint-dir {}.ckpts --run-log {}",
            p("data.json"),
            p("part.json"),
            p("part.json"),
            p("resume.jsonl")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("resumed from iteration 4"), "{out}");
        assert!(out.contains("trained 2 iterations"), "{out}");

        // The released parameters must be byte-identical to the
        // uninterrupted run's.
        let full = std::fs::read(p("full.json")).unwrap();
        let resumed = std::fs::read(p("part.json")).unwrap();
        assert_eq!(full, resumed, "resume diverged from the uninterrupted trajectory");

        // The run log records the resume.
        let text = std::fs::read_to_string(p("resume.jsonl")).unwrap();
        let events = doppelganger::telemetry::parse_jsonl(&text).expect("resume log must parse");
        assert!(
            events.iter().any(|e| matches!(e, RunEvent::Resumed(r) if r.iteration == 4)),
            "expected a Resumed event"
        );

        // The resumed run's checkpoints are sequenced globally: its final
        // snapshot is iteration 6, not a re-numbered iteration 2 that
        // would clobber the real early checkpoints.
        let store = CheckpointStore::open_std(format!("{}.ckpts", p("part.json"))).unwrap();
        let (loaded, skipped) = store.load_latest().unwrap();
        let loaded = loaded.expect("resumed run checkpointed");
        assert_eq!(loaded.seq, 6, "resumed run must continue the global sequence");
        assert_eq!(loaded.snapshot.iteration, 6);
        assert!(skipped.is_empty());

        // --resume with an empty store is a fresh start, not an error.
        let out = run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 2 --batch 8 --resume --checkpoint-dir {}",
            p("data.json"),
            p("fresh.json"),
            p("empty.ckpts")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("no usable checkpoint"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_lenient_skips_bad_rows_and_strict_fails() {
        let dir = std::env::temp_dir().join(format!("dg-cli-import-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let csv = "en.wikipedia.org,desktop,spider,10,12\n\
                   bad-domain,desktop,spider,10,12\n\
                   de.wikipedia.org,all-access,all-agents,7,8,9\n";
        dg_io::atomic_write(&dir.join("raw.csv"), csv.as_bytes()).unwrap();

        let err = run(&Args::parse(argv(&format!(
            "import --format wwt --input {} --out {}",
            p("raw.csv"),
            p("data.json")
        )))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.kind, CliErrorKind::Data);
        assert_eq!(err.exit_code(), 5);
        assert!(err.message.contains("raw.csv:2"), "{err}");

        let out = run(&Args::parse(argv(&format!(
            "import --format wwt --input {} --out {} --lenient",
            p("raw.csv"),
            p("data.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("imported 2 wwt objects"), "{out}");
        assert!(out.contains("skipped 1 bad rows"), "{out}");
        let data: Dataset = serde_json::from_str(&std::fs::read_to_string(p("data.json")).unwrap()).unwrap();
        assert_eq!(data.len(), 2);

        let err = run(&Args::parse(argv(&format!(
            "import --format csv --input {} --out {}",
            p("raw.csv"),
            p("data.json")
        )))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.kind, CliErrorKind::Config, "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
