//! # dg-cli — command-line workflow for DoppelGANger
//!
//! Implements the paper's Fig. 2 workflow as a CLI: the data holder trains
//! on a JSON dataset and releases a JSON model; the data consumer generates
//! synthetic JSON datasets from the released model and evaluates fidelity.
//!
//! ```text
//! dg demo      --out data.json                      # write a demo dataset
//! dg schema    --data data.json                     # inspect a dataset
//! dg train     --data data.json --out model.json    # train + release
//! dg generate  --model model.json -n 500 --out synth.json
//! dg retrain   --model model.json --target target.json --out masked.json
//! dg evaluate  --real data.json --synthetic synth.json
//! ```
//!
//! Datasets are `dg_data::Dataset` serialized as JSON; models are released
//! [`doppelganger::DoppelGanger`] parameters as JSON.

#![warn(missing_docs)]

use dg_data::Dataset;
use dg_metrics::{attribute_histogram, average_autocorrelation, curve_mse, jsd_counts, wasserstein1};
use doppelganger::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed command line: subcommand plus `--flag value` options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand (`train`, `generate`, ...).
    pub command: String,
    /// Flag/value pairs (leading dashes stripped).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses `argv[1..]`.
    ///
    /// Flags are `--name value` (or `-n value`); a flag without a following
    /// value gets `"true"`.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().ok_or("missing subcommand; try `dg help`")?;
        let mut options = HashMap::new();
        while let Some(tok) = it.next() {
            let name = tok.trim_start_matches('-').to_string();
            if !tok.starts_with('-') {
                return Err(format!("unexpected positional argument '{tok}'"));
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with('-') => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            options.insert(name, value);
        }
        Ok(Args { command, options })
    }

    /// A required option.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.options.get(name).map(String::as_str).ok_or_else(|| format!("missing required option --{name}"))
    }

    /// An optional option with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.options.get(name).map(String::as_str).unwrap_or(default)
    }

    /// A numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{name}: '{v}'")),
        }
    }
}

/// Runs a parsed command, returning the report to print.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "demo" => cmd_demo(args),
        "schema" => cmd_schema(args),
        "train" => cmd_train(args),
        "generate" => cmd_generate(args),
        "retrain" => cmd_retrain(args),
        "evaluate" => cmd_evaluate(args),
        other => Err(format!("unknown subcommand '{other}'\n{}", usage())),
    }
}

/// The CLI usage text.
pub fn usage() -> String {
    "dg — DoppelGANger for networked time series (paper workflow, Fig. 2)\n\
     \n\
     subcommands:\n\
     \x20 demo      --out <data.json> [--objects N] [--length T]     write a demo dataset\n\
     \x20 schema    --data <data.json>                               inspect a dataset\n\
     \x20 train     --data <data.json> --out <model.json>\n\
     \x20           [--iterations N=500] [--seed S=0] [--batch B]\n\
     \x20           [--dp-sigma x --dp-clip c]\n\
     \x20           [--run-log <log.jsonl>]                          JSONL run telemetry\n\
     \x20           [--checkpoint-every K]                           write <model.json>.ckpt.json\n\
     \x20           [--on-divergence warn|abort|rollback]            NaN/Inf watchdog policy\n\
     \x20                                                            (default abort)\n\
     \x20 generate  --model <model.json> --out <synth.json>\n\
     \x20           [-n N=100] [--seed S=0]\n\
     \x20           [--conditioned <attrs.json>]                     generate synthetic data\n\
     \x20 retrain   --model <model.json> --target <data.json>\n\
     \x20           --out <model2.json> [--iterations N=300]\n\
     \x20           [--run-log <log.jsonl>]                          mask/shift attributes\n\
     \x20 evaluate  --real <data.json> --synthetic <synth.json>      fidelity report\n"
        .to_string()
}

fn cmd_demo(args: &Args) -> Result<String, String> {
    let out = args.required("out")?;
    let objects = args.num_or("objects", 200usize)?;
    let length = args.num_or("length", 48usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg =
        dg_datasets::SineConfig { num_objects: objects, length, periods: vec![8, 16], noise_sigma: 0.05 };
    let data = dg_datasets::sine::generate(&cfg, &mut rng);
    write_json(out, &data)?;
    Ok(format!("wrote demo dataset ({objects} objects, length {length}) to {out}"))
}

fn cmd_schema(args: &Args) -> Result<String, String> {
    let data: Dataset = read_json(args.required("data")?)?;
    let mut s = String::new();
    let _ = writeln!(s, "objects: {}", data.len());
    let _ = writeln!(
        s,
        "max length: {} ({})",
        data.schema.max_len,
        data.schema.timescale.as_deref().unwrap_or("unspecified timescale")
    );
    let _ = writeln!(s, "attributes ({}):", data.schema.num_attributes());
    for (i, a) in data.schema.attributes.iter().enumerate() {
        let extra = if a.kind.is_categorical() {
            format!("categorical, {} values, counts {:?}", a.kind.num_categories(), data.attribute_counts(i))
        } else {
            "continuous".to_string()
        };
        let _ = writeln!(s, "  {} — {extra}", a.name);
    }
    let _ = writeln!(s, "features ({}):", data.schema.num_features());
    for (i, f) in data.schema.features.iter().enumerate() {
        if f.kind.is_categorical() {
            let _ = writeln!(s, "  {} — categorical, {} values", f.name, f.kind.num_categories());
        } else {
            let (mn, mx) = data.feature_range(i);
            let _ = writeln!(s, "  {} — continuous, observed range [{mn:.3}, {mx:.3}]", f.name);
        }
    }
    let lengths = data.lengths();
    let (mn, mx) = (lengths.iter().min().copied().unwrap_or(0), lengths.iter().max().copied().unwrap_or(0));
    let _ = writeln!(s, "series lengths: {mn}..{mx}");
    Ok(s)
}

fn cmd_train(args: &Args) -> Result<String, String> {
    let data: Dataset = read_json(args.required("data")?)?;
    let out = args.required("out")?;
    let iterations = args.num_or("iterations", 500usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let mut config = DgConfig::quick().with_recommended_s(data.schema.max_len);
    config.batch_size = args.num_or("batch", config.batch_size)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let model = DoppelGanger::new(&data, config, &mut rng);
    let encoded = model.encode(&data);
    let mut trainer = Trainer::new(model);
    if let Some(sigma) = args.options.get("dp-sigma") {
        let sigma: f32 = sigma.parse().map_err(|_| "invalid --dp-sigma")?;
        let clip: f32 = args.num_or("dp-clip", 1.0f32)?;
        trainer = trainer.with_dp(DpConfig { clip_norm: clip, noise_multiplier: sigma });
    }
    // The NaN/Inf watchdog is always on; --on-divergence picks the response
    // (default: abort with a clean error instead of writing NaN weights).
    let policy: DivergencePolicy = args.get_or("on-divergence", "abort").parse()?;
    let mut monitor = TrainMonitor::new()
        .with_label("dg train")
        .with_seed(seed)
        .with_watchdog(Watchdog::with_policy(policy));
    if let Some(path) = args.options.get("run-log") {
        let log = RunLog::create(path).map_err(|e| format!("creating run log {path}: {e}"))?;
        monitor = monitor.with_log(log);
    }
    let checkpoint_every = args.num_or("checkpoint-every", 0usize)?;
    if checkpoint_every > 0 {
        let ckpt_path = format!("{out}.ckpt.json");
        monitor = monitor.with_checkpoint_sink(
            checkpoint_every,
            Box::new(move |ck| match ck.to_json() {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&ckpt_path, json) {
                        eprintln!("warning: writing checkpoint {ckpt_path}: {e}");
                    }
                }
                Err(e) => eprintln!("warning: serializing checkpoint: {e}"),
            }),
        );
    }
    let mut last = StepMetrics::default();
    let report = trainer
        .fit_monitored(&encoded, iterations, &mut rng, &mut monitor, |m| last = *m)
        .map_err(|e| e.to_string())?;
    let model = trainer.into_model();
    std::fs::write(out, model.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    let outcome = match report.outcome {
        FitOutcome::Completed => String::new(),
        FitOutcome::DivergedWarned { first_iteration } => {
            format!("; WARNING: non-finite values first seen at iteration {first_iteration}")
        }
        FitOutcome::RolledBack { detected_at, .. } => {
            format!("; diverged at iteration {detected_at}, rolled back to the last healthy snapshot")
        }
    };
    Ok(format!(
        "trained {} iterations (final W~{:.3}); released model to {out}{outcome}",
        report.iterations_run, last.wasserstein
    ))
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let model = load_model(args.required("model")?)?;
    let out = args.required("out")?;
    let seed = args.num_or("seed", 0u64)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // Optional conditional generation: --conditioned <attrs.json> holds a
    // JSON array of attribute rows (the §3.1 "desired attribute
    // distribution" interface); otherwise n unconditional samples.
    let (synth, how) = if let Some(path) = args.options.get("conditioned") {
        let rows: Vec<Vec<dg_data::Value>> = read_json(path)?;
        let objects = model.generate_conditioned(&rows, &mut rng);
        let n = objects.len();
        (Dataset::new(model.encoder.schema.clone(), objects), format!("{n} objects conditioned on {path}"))
    } else {
        let n = args.num_or("n", 100usize)?;
        (model.generate_dataset(n, &mut rng), format!("{n} objects"))
    };
    write_json(out, &synth)?;
    Ok(format!("generated {how} to {out}"))
}

fn cmd_retrain(args: &Args) -> Result<String, String> {
    let mut model = load_model(args.required("model")?)?;
    let target_data: Dataset = read_json(args.required("target")?)?;
    let out = args.required("out")?;
    let iterations = args.num_or("iterations", 300usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let target = AttributeDistribution::from_dataset(&target_data);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut monitor = TrainMonitor::new()
        .with_label("dg retrain")
        .with_seed(seed)
        .with_watchdog(Watchdog::with_policy(DivergencePolicy::Abort));
    if let Some(path) = args.options.get("run-log") {
        let log = RunLog::create(path).map_err(|e| format!("creating run log {path}: {e}"))?;
        monitor = monitor.with_log(log);
    }
    retrain_attribute_generator_monitored(&mut model, &target, iterations, &mut rng, &mut monitor)
        .map_err(|e| e.to_string())?;
    std::fs::write(out, model.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    Ok(format!(
        "retrained the attribute generator for {iterations} iterations toward {} combos; wrote {out}",
        target.combos.len()
    ))
}

fn cmd_evaluate(args: &Args) -> Result<String, String> {
    let real: Dataset = read_json(args.required("real")?)?;
    let synth: Dataset = read_json(args.required("synthetic")?)?;
    if real.schema != synth.schema {
        return Err("real and synthetic datasets have different schemas".into());
    }
    let mut s = String::new();
    let _ = writeln!(s, "fidelity report ({} real vs {} synthetic objects)", real.len(), synth.len());

    // Attribute marginals.
    for (i, a) in real.schema.attributes.iter().enumerate() {
        if a.kind.is_categorical() {
            let jsd = jsd_counts(&attribute_histogram(&real, i), &attribute_histogram(&synth, i));
            let _ = writeln!(
                s,
                "  attribute '{}' JSD: {jsd:.4} (0 = identical, {:.4} = disjoint)",
                a.name,
                std::f64::consts::LN_2
            );
        }
    }
    // Length distribution.
    let rl: Vec<f64> = real.lengths().into_iter().map(|l| l as f64).collect();
    let sl: Vec<f64> = synth.lengths().into_iter().map(|l| l as f64).collect();
    let _ = writeln!(s, "  length W1: {:.3}", wasserstein1(&rl, &sl));
    // Per-feature: autocorrelation MSE + per-sample-mean W1.
    let max_lag = real.schema.max_len.saturating_sub(2).max(1);
    for (i, f) in real.schema.features.iter().enumerate() {
        if f.kind.is_categorical() {
            continue;
        }
        let rac = average_autocorrelation(&real, i, max_lag, 8);
        let sac = average_autocorrelation(&synth, i, max_lag, 8);
        let mse = curve_mse(&rac[1..], &sac[1..]);
        let rmeans: Vec<f64> = feature_means(&real, i);
        let smeans: Vec<f64> = feature_means(&synth, i);
        let w1 = wasserstein1(&rmeans, &smeans);
        let _ = writeln!(s, "  feature '{}': autocorr MSE {mse:.5}, sample-mean W1 {w1:.4}", f.name);
    }
    Ok(s)
}

fn feature_means(d: &Dataset, i: usize) -> Vec<f64> {
    d.objects
        .iter()
        .filter(|o| !o.is_empty())
        .map(|o| {
            let s = o.feature_series(i);
            s.iter().sum::<f64>() / s.len() as f64
        })
        .collect()
}

fn load_model(path: &str) -> Result<DoppelGanger, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    DoppelGanger::from_json(&json).map_err(|e| format!("parsing model {path}: {e}"))
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let json = serde_json::to_string(value).map_err(|e| format!("serializing: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_flags_and_values() {
        let a = Args::parse(argv("train --data d.json --out m.json --iterations 50")).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.required("data").unwrap(), "d.json");
        assert_eq!(a.num_or("iterations", 0usize).unwrap(), 50);
        assert_eq!(a.num_or("seed", 9u64).unwrap(), 9);
    }

    #[test]
    fn parse_rejects_positional_and_missing() {
        assert!(Args::parse(argv("train stray")).is_err());
        assert!(Args::parse(Vec::new()).is_err());
        let a = Args::parse(argv("train --flag")).unwrap();
        assert_eq!(a.get_or("flag", "x"), "true");
    }

    #[test]
    fn unknown_subcommand_reports_usage() {
        let a = Args::parse(argv("bogus")).unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.contains("unknown subcommand"));
        assert!(err.contains("subcommands:"));
    }

    #[test]
    fn full_workflow_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dg-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        // demo -> schema
        let out =
            run(&Args::parse(argv(&format!("demo --out {} --objects 24 --length 12", p("data.json"))))
                .unwrap())
            .unwrap();
        assert!(out.contains("wrote demo dataset"));
        let schema = run(&Args::parse(argv(&format!("schema --data {}", p("data.json")))).unwrap()).unwrap();
        assert!(schema.contains("objects: 24"));

        // train (tiny) -> generate -> evaluate
        let out = run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 5 --batch 8",
            p("data.json"),
            p("model.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("released model"));
        let out = run(&Args::parse(argv(&format!(
            "generate --model {} --out {} --n 10",
            p("model.json"),
            p("synth.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("generated 10"));
        let report = run(&Args::parse(argv(&format!(
            "evaluate --real {} --synthetic {}",
            p("data.json"),
            p("synth.json")
        )))
        .unwrap())
        .unwrap();
        assert!(report.contains("fidelity report"));
        assert!(report.contains("autocorr MSE"));

        // conditional generation with fixed attribute rows
        let attrs: Vec<Vec<dg_data::Value>> =
            vec![vec![dg_data::Value::Cat(0)], vec![dg_data::Value::Cat(1)]];
        std::fs::write(p("attrs.json"), serde_json::to_string(&attrs).unwrap()).unwrap();
        let out = run(&Args::parse(argv(&format!(
            "generate --model {} --out {} --conditioned {}",
            p("model.json"),
            p("cond.json"),
            p("attrs.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("conditioned"));
        let cond: dg_data::Dataset =
            serde_json::from_str(&std::fs::read_to_string(p("cond.json")).unwrap()).unwrap();
        assert_eq!(cond.len(), 2);
        assert_eq!(cond.objects[0].attributes, vec![dg_data::Value::Cat(0)]);
        assert_eq!(cond.objects[1].attributes, vec![dg_data::Value::Cat(1)]);

        // retrain against the dataset's own empirical distribution
        let out = run(&Args::parse(argv(&format!(
            "retrain --model {} --target {} --out {} --iterations 3",
            p("model.json"),
            p("data.json"),
            p("masked.json")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("retrained"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_run_log_and_checkpoint_flags() {
        let dir = std::env::temp_dir().join(format!("dg-cli-runlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        run(&Args::parse(argv(&format!("demo --out {} --objects 16 --length 10", p("data.json")))).unwrap())
            .unwrap();

        let out = run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 4 --batch 8 --run-log {} \
             --checkpoint-every 2 --on-divergence rollback",
            p("data.json"),
            p("model.json"),
            p("run.jsonl")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("trained 4 iterations"), "{out}");

        // The run log parses line-for-line: header, iteration events, end.
        let text = std::fs::read_to_string(p("run.jsonl")).unwrap();
        let events = doppelganger::telemetry::parse_jsonl(&text).expect("run log must parse");
        assert!(matches!(&events[0], RunEvent::Header(h) if h.label == "dg train" && h.seed == Some(0)));
        let iters = events.iter().filter(|e| matches!(e, RunEvent::Iteration(_))).count();
        assert_eq!(iters, 4);
        assert!(matches!(events.last(), Some(RunEvent::End(_))));

        // The periodic checkpoint file exists and parses.
        let ck = std::fs::read_to_string(format!("{}.ckpt.json", p("model.json"))).unwrap();
        assert!(Checkpoint::from_json(&ck).is_ok());

        // A bad policy value is a clean CLI error, not a panic.
        let err = run(&Args::parse(argv(&format!(
            "train --data {} --out {} --iterations 1 --on-divergence explode",
            p("data.json"),
            p("model.json")
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("divergence policy"), "{err}");

        // Retrain also accepts --run-log.
        let out = run(&Args::parse(argv(&format!(
            "retrain --model {} --target {} --out {} --iterations 2 --run-log {}",
            p("model.json"),
            p("data.json"),
            p("masked.json"),
            p("retrain.jsonl")
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("retrained"));
        let text = std::fs::read_to_string(p("retrain.jsonl")).unwrap();
        let events = doppelganger::telemetry::parse_jsonl(&text).expect("retrain log must parse");
        assert!(events.iter().any(|e| matches!(e, RunEvent::Iteration(_))));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
