//! The `dg` binary: see [`dg_cli::usage`] or run `dg help`.
//!
//! Exit codes (see [`dg_cli::CliError::exit_code`]): 2 usage/config,
//! 3 I/O, 4 divergence abort, 5 bad input data.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match dg_cli::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", dg_cli::usage());
            std::process::exit(e.exit_code());
        }
    };
    match dg_cli::run(&args) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
