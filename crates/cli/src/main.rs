//! The `dg` binary: see [`dg_cli::usage`] or run `dg help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match dg_cli::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", dg_cli::usage());
            std::process::exit(2);
        }
    };
    match dg_cli::run(&args) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
