//! Two-sample Kolmogorov–Smirnov statistic — a supremum-norm companion to
//! the integrated Wasserstein-1 distance of Table 3.

use crate::wasserstein::EmpiricalCdf;

/// Two-sample KS statistic `sup_x |F_a(x) - F_b(x)|` in `[0, 1]`.
///
/// # Panics
/// Panics if either sample has no finite values.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    let ca = EmpiricalCdf::new(a);
    let cb = EmpiricalCdf::new(b);
    assert!(!ca.is_empty() && !cb.is_empty(), "ks_statistic requires non-empty samples");
    let mut pts: Vec<f64> = a.iter().chain(b.iter()).copied().filter(|v| v.is_finite()).collect();
    pts.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    pts.dedup();
    pts.iter().map(|&x| (ca.eval(x) - cb.eval(x)).abs()).fold(0.0, f64::max)
}

/// Asymptotic two-sample KS p-value (Kolmogorov distribution tail,
/// Smirnov's approximation). Small p-values reject "same distribution".
pub fn ks_p_value(statistic: f64, n_a: usize, n_b: usize) -> f64 {
    if n_a == 0 || n_b == 0 {
        return 1.0;
    }
    let n_eff = (n_a as f64 * n_b as f64) / (n_a as f64 + n_b as f64);
    let lambda = (n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * statistic;
    // Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)
    let mut p = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        p += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * p).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_give_zero() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert!(ks_statistic(&a, &a) < 1e-12);
    }

    #[test]
    fn disjoint_samples_give_one() {
        let a = vec![0.0, 1.0, 2.0];
        let b = vec![10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn statistic_is_symmetric_and_bounded() {
        let a = vec![0.0, 0.5, 2.0, 3.5];
        let b = vec![0.2, 1.5, 2.5];
        let ab = ks_statistic(&a, &b);
        assert!((ab - ks_statistic(&b, &a)).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn p_value_behaviour() {
        // Large statistic on large samples => tiny p.
        assert!(ks_p_value(0.5, 1000, 1000) < 1e-6);
        // Tiny statistic => p near 1.
        assert!(ks_p_value(0.01, 100, 100) > 0.9);
        // Monotone in the statistic.
        assert!(ks_p_value(0.3, 100, 100) < ks_p_value(0.1, 100, 100));
    }
}
