//! Histograms: categorical attribute counts (Figs. 8, 15–19, 22), duration
//! histograms (Figs. 7, 14) and binned continuous histograms (Figs. 34–35).

use dg_data::Dataset;

/// Counts of one categorical attribute, in category order.
pub fn attribute_histogram(dataset: &Dataset, attr_idx: usize) -> Vec<usize> {
    dataset.attribute_counts(attr_idx)
}

/// Series-length histogram with one bucket per length `0..=max_len`
/// (the task-duration histogram of Fig. 7).
pub fn length_histogram(dataset: &Dataset, max_len: usize) -> Vec<usize> {
    let mut counts = vec![0usize; max_len + 1];
    for o in &dataset.objects {
        counts[o.len().min(max_len)] += 1;
    }
    counts
}

/// A fixed-width binned histogram over continuous values.
#[derive(Debug, Clone)]
pub struct BinnedHistogram {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Right edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<usize>,
    /// Values below `lo` or above `hi`.
    pub outliers: usize,
}

impl BinnedHistogram {
    /// Bins `values` into `bins` equal-width buckets over `[lo, hi]`.
    pub fn new(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram parameters");
        let mut counts = vec![0usize; bins];
        let mut outliers = 0;
        let w = (hi - lo) / bins as f64;
        for &v in values {
            if !v.is_finite() || v < lo || v > hi {
                outliers += 1;
                continue;
            }
            let idx = (((v - lo) / w) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        BinnedHistogram { lo, hi, counts, outliers }
    }

    /// Bin centers (x-axis values for plotting).
    pub fn centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len()).map(|i| self.lo + w * (i as f64 + 0.5)).collect()
    }

    /// Total in-range count.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Normalized bin frequencies.
    pub fn frequencies(&self) -> Vec<f64> {
        let t = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }
}

/// Counts the modes (local maxima with prominence above `min_frac` of the
/// peak) in a histogram — used to verify bimodality capture (Fig. 7).
pub fn count_modes(counts: &[usize], min_frac: f64) -> usize {
    let peak = counts.iter().copied().max().unwrap_or(0) as f64;
    if peak == 0.0 {
        return 0;
    }
    let thresh = peak * min_frac;
    // Smooth with a width-3 box filter to ignore single-bin jitter.
    let smooth: Vec<f64> = (0..counts.len())
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 2).min(counts.len());
            counts[lo..hi].iter().sum::<usize>() as f64 / (hi - lo) as f64
        })
        .collect();
    let mut modes = 0;
    let mut in_peak = false;
    for &v in &smooth {
        if v >= thresh && !in_peak {
            modes += 1;
            in_peak = true;
        } else if v < thresh * 0.5 {
            in_peak = false;
        }
    }
    modes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_data::{FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};

    fn demo() -> Dataset {
        let schema = Schema::new(
            vec![FieldSpec::new("k", FieldKind::categorical(["a", "b"]))],
            vec![FieldSpec::new("x", FieldKind::continuous(0.0, 10.0))],
            10,
        );
        let objects = (0..6)
            .map(|i| TimeSeriesObject {
                attributes: vec![Value::Cat(i % 2)],
                records: (0..=i).map(|t| vec![Value::Cont(t as f64)]).collect(),
            })
            .collect();
        Dataset::new(schema, objects)
    }

    #[test]
    fn attribute_histogram_counts() {
        assert_eq!(attribute_histogram(&demo(), 0), vec![3, 3]);
    }

    #[test]
    fn length_histogram_buckets() {
        let h = length_histogram(&demo(), 10);
        assert_eq!(h[1], 1);
        assert_eq!(h[6], 1);
        assert_eq!(h.iter().sum::<usize>(), 6);
    }

    #[test]
    fn binned_histogram_counts_and_outliers() {
        let h = BinnedHistogram::new(&[0.1, 0.9, 1.5, 2.5, 99.0, f64::NAN], 0.0, 3.0, 3);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.total(), 4);
        let c = h.centers();
        assert!((c[0] - 0.5).abs() < 1e-12);
        let f = h.frequencies();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn count_modes_detects_bimodality() {
        // Two clear humps separated by a valley.
        let uni = [0, 2, 10, 30, 10, 2, 0, 0, 0, 0, 0, 0, 0];
        let bi = [0, 2, 20, 30, 8, 1, 0, 0, 1, 10, 25, 9, 0];
        assert_eq!(count_modes(&uni, 0.2), 1);
        assert_eq!(count_modes(&bi, 0.2), 2);
    }
}
