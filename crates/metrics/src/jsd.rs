//! Jensen–Shannon divergence between categorical distributions
//! (Figs. 20, 21, 23).

/// Jensen–Shannon divergence (natural log) between two count vectors.
///
/// Counts are normalized internally. Bounded in `[0, ln 2]`; 0 iff the
/// normalized distributions are identical.
pub fn jsd_counts(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "jsd requires equal support sizes");
    let pa: Vec<f64> = normalize(a);
    let pb: Vec<f64> = normalize(b);
    jsd(&pa, &pb)
}

/// Jensen–Shannon divergence between two probability vectors.
pub fn jsd(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "jsd requires equal support sizes");
    let m: Vec<f64> = p.iter().zip(q).map(|(&x, &y)| 0.5 * (x + y)).collect();
    0.5 * kl(p, &m) + 0.5 * kl(q, &m)
}

fn kl(p: &[f64], q: &[f64]) -> f64 {
    p.iter().zip(q).filter(|(&x, _)| x > 0.0).map(|(&x, &y)| x * (x / y.max(f64::MIN_POSITIVE)).ln()).sum()
}

fn normalize(counts: &[usize]) -> Vec<f64> {
    let total: usize = counts.iter().sum();
    assert!(total > 0, "cannot normalize an all-zero count vector");
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_jsd() {
        assert!(jsd_counts(&[5, 5, 10], &[10, 10, 20]) < 1e-12);
    }

    #[test]
    fn disjoint_supports_hit_ln2() {
        let d = jsd_counts(&[10, 0], &[0, 10]);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn jsd_is_symmetric_and_bounded() {
        let a = [3, 1, 6, 0];
        let b = [1, 4, 2, 3];
        let ab = jsd_counts(&a, &b);
        let ba = jsd_counts(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab <= std::f64::consts::LN_2);
    }

    #[test]
    fn small_perturbation_gives_small_jsd() {
        let a = [100, 100, 100];
        let b = [101, 99, 100];
        assert!(jsd_counts(&a, &b) < 1e-4);
    }
}
