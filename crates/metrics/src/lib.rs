//! # dg-metrics — fidelity metrics for synthetic time series
//!
//! The structural "microbenchmarks" the paper argues systems and networking
//! evaluations need (§5.1, footnote 5):
//!
//! * [`autocorr`] — per-sample and dataset-averaged autocorrelation, plus
//!   the curve-MSE used in Figs. 1 and 4;
//! * [`wasserstein`] — empirical CDFs and the Wasserstein-1 distance of
//!   Table 3 / Fig. 9;
//! * [`mod@jsd`] — Jensen–Shannon divergence between attribute marginals
//!   (Figs. 20–23);
//! * [`histogram`] — categorical, duration and binned histograms
//!   (Figs. 7, 8, 14–19, 34–35), including a mode counter for bimodality
//!   checks;
//! * [`mod@spearman`] — rank correlation for the algorithm-comparison use case
//!   (Table 4);
//! * [`nearest`] — the nearest-neighbour memorization probe (Figs. 24–26);
//! * [`ks`] — two-sample Kolmogorov–Smirnov statistic and p-value;
//! * [`correlation`] — cross-feature correlation matrices and the
//!   attribute–feature correlation ratio (the §1 motivating dependence);
//! * [`fidelity`] — the three probes above bundled into one
//!   dataset-vs-dataset [`FidelityReport`], the distribution-level gate
//!   the reduced-precision serving tier is validated with.

#![warn(missing_docs)]

pub mod autocorr;
pub mod correlation;
pub mod fidelity;
pub mod histogram;
pub mod jsd;
pub mod ks;
pub mod nearest;
pub mod spearman;
pub mod wasserstein;

pub use autocorr::{autocorrelation, average_autocorrelation, curve_mse};
pub use correlation::{
    attribute_feature_eta, correlation_matrix_distance, feature_correlation_matrix, pearson,
};
pub use fidelity::{distribution_deltas, FidelityReport};
pub use histogram::{attribute_histogram, count_modes, length_histogram, BinnedHistogram};
pub use jsd::{jsd, jsd_counts};
pub use ks::{ks_p_value, ks_statistic};
pub use nearest::{nearest_distance_summary, nearest_neighbours, NearestReport};
pub use spearman::{ranks, spearman};
pub use wasserstein::{wasserstein1, EmpiricalCdf};
