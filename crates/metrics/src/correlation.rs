//! Cross-feature and feature–attribute correlation probes.
//!
//! The paper's §1 motivating example is a *cross-correlation*: "as the
//! memory usage of a task increases over time, its likelihood of failure
//! increases". These helpers quantify whether generated data preserves
//! (a) the correlation matrix between features and (b) the dependence of a
//! continuous feature on a categorical attribute.

use dg_data::Dataset;

/// Pearson correlation between two equal-length samples (0 for degenerate
/// input).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires paired samples");
    let n = a.len() as f64;
    if a.len() < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// The `K x K` Pearson correlation matrix between continuous features,
/// pooling all records of all objects. Categorical features get zero
/// rows/columns. Row-major.
pub fn feature_correlation_matrix(dataset: &Dataset) -> Vec<f64> {
    let k = dataset.schema.num_features();
    let cont: Vec<usize> = (0..k).filter(|&j| !dataset.schema.features[j].kind.is_categorical()).collect();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); k];
    for o in &dataset.objects {
        for &j in &cont {
            cols[j].extend(o.feature_series(j));
        }
    }
    let mut m = vec![0.0; k * k];
    for &i in &cont {
        for &j in &cont {
            m[i * k + j] = if i == j { 1.0 } else { pearson(&cols[i], &cols[j]) };
        }
    }
    m
}

/// Mean absolute difference between the feature-correlation matrices of two
/// datasets (off-diagonal entries only) — 0 when generated data preserves
/// all pairwise feature correlations.
pub fn correlation_matrix_distance(a: &Dataset, b: &Dataset) -> f64 {
    assert_eq!(a.schema.num_features(), b.schema.num_features(), "schema mismatch");
    let k = a.schema.num_features();
    if k < 2 {
        return 0.0;
    }
    let ma = feature_correlation_matrix(a);
    let mb = feature_correlation_matrix(b);
    let mut total = 0.0;
    let mut count = 0;
    for i in 0..k {
        for j in 0..k {
            if i != j {
                total += (ma[i * k + j] - mb[i * k + j]).abs();
                count += 1;
            }
        }
    }
    total / count.max(1) as f64
}

/// Correlation ratio (eta) between a categorical attribute and a continuous
/// feature's per-object mean: `sqrt(SS_between / SS_total)` in `[0, 1]`.
/// High values mean the attribute strongly determines the feature level —
/// the §1 feature–attribute correlation in one number.
pub fn attribute_feature_eta(dataset: &Dataset, attr_idx: usize, feature_idx: usize) -> f64 {
    let k = dataset.schema.attributes[attr_idx].kind.num_categories();
    assert!(k >= 2, "eta requires a categorical attribute");
    let mut groups: Vec<Vec<f64>> = vec![Vec::new(); k];
    for o in &dataset.objects {
        if o.is_empty() {
            continue;
        }
        let s = o.feature_series(feature_idx);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        groups[o.attributes[attr_idx].cat()].push(mean);
    }
    let all: Vec<f64> = groups.iter().flatten().copied().collect();
    if all.len() < 2 {
        return 0.0;
    }
    let grand = all.iter().sum::<f64>() / all.len() as f64;
    let ss_total: f64 = all.iter().map(|v| (v - grand) * (v - grand)).sum();
    if ss_total <= 0.0 {
        return 0.0;
    }
    let ss_between: f64 = groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            let m = g.iter().sum::<f64>() / g.len() as f64;
            g.len() as f64 * (m - grand) * (m - grand)
        })
        .sum();
    (ss_between / ss_total).clamp(0.0, 1.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_data::{FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};

    #[test]
    fn pearson_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
    }

    fn two_feature_dataset(correlated: bool) -> Dataset {
        let schema = Schema::new(
            vec![FieldSpec::new("k", FieldKind::categorical(["lo", "hi"]))],
            vec![
                FieldSpec::new("x", FieldKind::continuous(-10.0, 10.0)),
                FieldSpec::new("y", FieldKind::continuous(-10.0, 10.0)),
            ],
            16,
        );
        let objects = (0..8)
            .map(|i| {
                let hi = i % 2 == 1;
                TimeSeriesObject {
                    attributes: vec![Value::Cat(hi as usize)],
                    records: (0..16)
                        .map(|t| {
                            let x = ((t * 7 + i * 3) as f64 * 0.41).sin() + if hi { 3.0 } else { 0.0 };
                            let y = if correlated { x * 0.9 } else { ((t * 11 + i) as f64 * 0.73).cos() };
                            vec![Value::Cont(x), Value::Cont(y)]
                        })
                        .collect(),
                }
            })
            .collect();
        Dataset::new(schema, objects)
    }

    #[test]
    fn correlation_matrix_detects_coupling() {
        let corr = two_feature_dataset(true);
        let indep = two_feature_dataset(false);
        let mc = feature_correlation_matrix(&corr);
        assert!(mc[1] > 0.95, "x-y correlation should be ~1, got {}", mc[1]);
        let d = correlation_matrix_distance(&corr, &indep);
        assert!(d > 0.5, "distance between coupled and independent should be large: {d}");
        assert!(correlation_matrix_distance(&corr, &corr) < 1e-12);
    }

    #[test]
    fn eta_detects_attribute_dependence() {
        let d = two_feature_dataset(true);
        // "hi" objects have x shifted by +3: strong dependence.
        let eta = attribute_feature_eta(&d, 0, 0);
        assert!(eta > 0.9, "eta should be high, got {eta}");
    }

    #[test]
    fn eta_is_low_for_independent_attribute() {
        let schema = Schema::new(
            vec![FieldSpec::new("k", FieldKind::categorical(["a", "b"]))],
            vec![FieldSpec::new("x", FieldKind::continuous(-10.0, 10.0))],
            8,
        );
        let objects = (0..20)
            .map(|i| TimeSeriesObject {
                attributes: vec![Value::Cat(i % 2)],
                records: (0..8).map(|t| vec![Value::Cont(((i * 13 + t * 7) as f64 * 0.37).sin())]).collect(),
            })
            .collect();
        let d = Dataset::new(schema, objects);
        assert!(attribute_feature_eta(&d, 0, 0) < 0.5);
    }
}
