//! Wasserstein-1 distance between empirical distributions (Table 3) and
//! empirical CDFs (Fig. 9).

/// An empirical CDF built from a sample.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a (possibly unsorted) sample. Non-finite values
    /// are dropped.
    pub fn new(sample: &[f64]) -> Self {
        let mut sorted: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        EmpiricalCdf { sorted }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no points were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        self.sorted[idx]
    }

    /// Evaluates the CDF on an even grid over `[lo, hi]` (for plotting /
    /// table output).
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1).max(1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Wasserstein-1 distance between two empirical distributions — "the
/// integrated absolute error between 2 CDFs" (Table 3, footnote 6).
///
/// Computed exactly by sweeping the merged support.
pub fn wasserstein1(a: &[f64], b: &[f64]) -> f64 {
    let ca = EmpiricalCdf::new(a);
    let cb = EmpiricalCdf::new(b);
    assert!(!ca.is_empty() && !cb.is_empty(), "wasserstein1 requires non-empty samples");
    // Merge all support points; integrate |Fa - Fb| between consecutive ones.
    let mut pts: Vec<f64> = ca.sorted.iter().chain(cb.sorted.iter()).copied().collect();
    pts.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    pts.dedup();
    let mut total = 0.0;
    for w in pts.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        let f = (ca.eval(x0) - cb.eval(x0)).abs();
        total += f * (x1 - x0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert!(wasserstein1(&a, &a) < 1e-12);
    }

    #[test]
    fn shifted_point_masses() {
        // W1 between delta(0) and delta(3) is 3.
        let a = vec![0.0; 10];
        let b = vec![3.0; 10];
        assert!((wasserstein1(&a, &b) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn shift_invariance_of_magnitude() {
        // W1 between U{0..9} and U{2..11} is 2.
        let a: Vec<f64> = (0..10).map(|v| v as f64).collect();
        let b: Vec<f64> = (0..10).map(|v| v as f64 + 2.0).collect();
        assert!((wasserstein1(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn symmetry_and_triangle() {
        let a = vec![0.0, 1.0, 2.0];
        let b = vec![1.0, 2.0, 5.0];
        let c = vec![0.5, 3.0, 4.0];
        let ab = wasserstein1(&a, &b);
        let ba = wasserstein1(&b, &a);
        assert!((ab - ba).abs() < 1e-12, "symmetry");
        let ac = wasserstein1(&a, &c);
        let cb = wasserstein1(&c, &b);
        assert!(ab <= ac + cb + 1e-9, "triangle inequality");
    }

    #[test]
    fn cdf_eval_and_quantile() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(2.0), 0.5);
        assert_eq!(cdf.eval(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        let curve = cdf.curve(0.0, 5.0, 6);
        assert_eq!(curve.len(), 6);
        assert_eq!(curve[0], (0.0, 0.0));
        assert_eq!(curve[5], (5.0, 1.0));
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let cdf = EmpiricalCdf::new(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }
}
