//! Autocorrelation metrics — the probe behind Figs. 1, 13 and 33.

use dg_data::Dataset;

/// Autocorrelation of one series for lags `0..=max_lag`.
///
/// Uses the standard biased estimator
/// `r(k) = Σ (x_t - x̄)(x_{t+k} - x̄) / Σ (x_t - x̄)²`.
/// Returns zeros past the series length and for constant series.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    let mut out = vec![0.0; max_lag + 1];
    if n == 0 {
        return out;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var <= 0.0 {
        return out;
    }
    for (k, o) in out.iter_mut().enumerate() {
        if k >= n {
            break;
        }
        let cov: f64 = (0..n - k).map(|t| (series[t] - mean) * (series[t + k] - mean)).sum();
        *o = cov / var;
    }
    out
}

/// Average autocorrelation across all objects of a dataset for one
/// continuous feature — the quantity plotted in Fig. 1 ("averaged over all
/// samples"). Objects shorter than `min_len` are skipped.
pub fn average_autocorrelation(
    dataset: &Dataset,
    feature_idx: usize,
    max_lag: usize,
    min_len: usize,
) -> Vec<f64> {
    let mut acc = vec![0.0; max_lag + 1];
    let mut counts = vec![0usize; max_lag + 1];
    for o in &dataset.objects {
        if o.len() < min_len.max(2) {
            continue;
        }
        let s = o.feature_series(feature_idx);
        let ac = autocorrelation(&s, max_lag.min(s.len().saturating_sub(1)));
        for (k, &v) in ac.iter().enumerate() {
            if k < s.len() {
                acc[k] += v;
                counts[k] += 1;
            }
        }
    }
    for (a, &c) in acc.iter_mut().zip(&counts) {
        if c > 0 {
            *a /= c as f64;
        }
    }
    acc
}

/// Mean squared error between two curves — the Fig. 4 metric
/// ("MSE of generated and real sample autocorrelations").
///
/// Curves of different lengths (e.g. autocorrelations computed to different
/// max lags for real vs generated data) are compared over their common
/// prefix. An earlier version hard-asserted equal lengths, which panicked
/// evaluation pipelines instead of producing a comparable number.
pub fn curve_mse(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    a[..n].iter().zip(&b[..n]).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_data::{FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};

    #[test]
    fn lag_zero_is_one() {
        let s: Vec<f64> = (0..50).map(|t| (t as f64 * 0.7).sin()).collect();
        let ac = autocorrelation(&s, 10);
        assert!((ac[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_series_peaks_at_period() {
        let period = 8;
        let s: Vec<f64> =
            (0..200).map(|t| (std::f64::consts::TAU * t as f64 / period as f64).sin()).collect();
        let ac = autocorrelation(&s, 12);
        assert!(ac[period] > 0.9, "lag-{period} should be ~1, got {}", ac[period]);
        assert!(ac[period / 2] < -0.9, "half-period should be ~-1, got {}", ac[period / 2]);
    }

    #[test]
    fn constant_series_is_zero() {
        let s = vec![5.0; 40];
        let ac = autocorrelation(&s, 5);
        assert!(ac.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn white_noise_decays() {
        // Simple LCG noise to stay dependency-free in this unit test.
        let mut x = 12345u64;
        let s: Vec<f64> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 32) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let ac = autocorrelation(&s, 5);
        for &v in &ac[1..] {
            assert!(v.abs() < 0.05, "white noise autocorr should be ~0, got {v}");
        }
    }

    #[test]
    fn average_autocorrelation_skips_short_series() {
        let schema = Schema::new(
            vec![FieldSpec::new("a", FieldKind::categorical(["x"]))],
            vec![FieldSpec::new("f", FieldKind::continuous(-2.0, 2.0))],
            32,
        );
        let mk = |len: usize| TimeSeriesObject {
            attributes: vec![Value::Cat(0)],
            records: (0..len)
                .map(|t| vec![Value::Cont((std::f64::consts::TAU * t as f64 / 4.0).sin())])
                .collect(),
        };
        let d = Dataset::new(schema, vec![mk(32), mk(1)]);
        let ac = average_autocorrelation(&d, 0, 8, 4);
        assert!((ac[0] - 1.0).abs() < 1e-9);
        assert!(ac[4] > 0.8); // biased estimator: ~(n-k)/n
    }

    #[test]
    fn curve_mse_basics() {
        assert_eq!(curve_mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((curve_mse(&[0.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_mse_truncates_to_common_prefix() {
        // Regression: unequal lengths used to panic; now the comparison runs
        // over the shared prefix (and an empty side yields 0).
        assert_eq!(curve_mse(&[1.0, 2.0, 99.0], &[1.0, 2.0]), 0.0);
        assert!((curve_mse(&[0.0], &[2.0, 7.0, 9.0]) - 4.0).abs() < 1e-12);
        assert_eq!(curve_mse(&[], &[1.0, 2.0]), 0.0);
    }
}
