//! Distribution-level fidelity deltas between two datasets — the standard
//! the reduced-precision serving tier is validated by.
//!
//! The paper evaluates generated data by comparing *distributions* against
//! the real data — autocorrelation curves (Fig. 1), Wasserstein-1 distances
//! (Table 3), cross-feature correlations (§1) — never individual samples.
//! The serving stack's bf16 inference tier inherits exactly that standard:
//! its output is deliberately not bitwise-comparable to the f32 tier's, so
//! the serving bench and CI instead generate a same-seed dataset with each
//! tier and gate on the three probes below staying small.

use crate::{average_autocorrelation, correlation_matrix_distance, curve_mse, wasserstein1};
use dg_data::Dataset;
use serde::{Deserialize, Serialize};

/// Distribution distances between two datasets over their continuous
/// features. All three are zero for identical datasets and grow with
/// distributional drift; none is sensitive to sample order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// MSE between the datasets' average-autocorrelation curves, averaged
    /// over continuous features (the Fig. 4 metric applied pairwise).
    pub autocorr_mse: f64,
    /// Wasserstein-1 distance between the pooled per-feature value
    /// distributions, averaged over continuous features (the Table 3
    /// metric applied pairwise).
    pub wasserstein1: f64,
    /// Mean absolute difference between the feature-correlation matrices.
    pub correlation_distance: f64,
}

impl FidelityReport {
    /// True when every delta is at or below its threshold — the pass/fail
    /// form CI gates consume.
    pub fn within(&self, autocorr_mse: f64, wasserstein1: f64, correlation_distance: f64) -> bool {
        self.autocorr_mse <= autocorr_mse
            && self.wasserstein1 <= wasserstein1
            && self.correlation_distance <= correlation_distance
    }
}

/// Computes the three distribution deltas between `a` and `b`.
///
/// Autocorrelation curves are compared up to `max_lag`; per-feature value
/// distributions pool every record of every object. Categorical features
/// contribute nothing (their fidelity is a marginal-frequency question,
/// not a distance-on-reals one); a dataset pair with no continuous
/// features reports zeros rather than NaN.
pub fn distribution_deltas(a: &Dataset, b: &Dataset, max_lag: usize) -> FidelityReport {
    assert_eq!(
        a.schema.num_features(),
        b.schema.num_features(),
        "fidelity comparison requires identical feature schemas"
    );
    let mut autocorr_mse = 0.0;
    let mut w1 = 0.0;
    let mut continuous = 0usize;
    for (fi, spec) in a.schema.features.iter().enumerate() {
        if spec.kind.is_categorical() {
            continue;
        }
        let curve_a = average_autocorrelation(a, fi, max_lag, 2);
        let curve_b = average_autocorrelation(b, fi, max_lag, 2);
        autocorr_mse += curve_mse(&curve_a, &curve_b);
        let values_a: Vec<f64> = a.objects.iter().flat_map(|o| o.feature_series(fi)).collect();
        let values_b: Vec<f64> = b.objects.iter().flat_map(|o| o.feature_series(fi)).collect();
        // wasserstein1 rejects empty samples; a recordless dataset simply
        // contributes no transport distance.
        if !values_a.is_empty() && !values_b.is_empty() {
            w1 += wasserstein1(&values_a, &values_b);
        }
        continuous += 1;
    }
    if continuous > 0 {
        autocorr_mse /= continuous as f64;
        w1 /= continuous as f64;
    }
    FidelityReport { autocorr_mse, wasserstein1: w1, correlation_distance: correlation_matrix_distance(a, b) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_data::{FieldKind, FieldSpec, Schema, TimeSeriesObject, Value};

    fn sine_dataset(shift: f64, phase: f64) -> Dataset {
        let schema = Schema::new(
            vec![FieldSpec::new("a", FieldKind::categorical(["x", "y"]))],
            vec![
                FieldSpec::new("f0", FieldKind::continuous(-4.0, 4.0)),
                FieldSpec::new("f1", FieldKind::continuous(-4.0, 4.0)),
            ],
            32,
        );
        let objects = (0..12)
            .map(|i| TimeSeriesObject {
                attributes: vec![Value::Cat(i % 2)],
                records: (0..32)
                    .map(|t| {
                        let x = std::f64::consts::TAU * t as f64 / 8.0 + phase + i as f64;
                        vec![Value::Cont(x.sin() + shift), Value::Cont(x.cos() + shift)]
                    })
                    .collect(),
            })
            .collect();
        Dataset::new(schema, objects)
    }

    #[test]
    fn identical_datasets_report_zero_deltas() {
        let d = sine_dataset(0.0, 0.0);
        let r = distribution_deltas(&d, &d, 8);
        assert_eq!((r.autocorr_mse, r.wasserstein1, r.correlation_distance), (0.0, 0.0, 0.0));
        assert!(r.within(1e-12, 1e-12, 1e-12));
    }

    #[test]
    fn a_value_shift_moves_wasserstein_but_not_autocorrelation() {
        let a = sine_dataset(0.0, 0.0);
        let b = sine_dataset(0.5, 0.0);
        let r = distribution_deltas(&a, &b, 8);
        // A constant shift relocates the value distribution by exactly the
        // shift but leaves the (mean-removed) autocorrelation untouched.
        assert!((r.wasserstein1 - 0.5).abs() < 0.05, "w1 = {}", r.wasserstein1);
        assert!(r.autocorr_mse < 1e-9, "autocorr_mse = {}", r.autocorr_mse);
        assert!(!r.within(1e-3, 1e-3, 1e-3));
        assert!(r.within(1e-3, 0.6, 1e-3));
    }

    #[test]
    fn phase_scrambling_perturbs_correlations() {
        let a = sine_dataset(0.0, 0.0);
        let b = sine_dataset(0.0, 0.9);
        let r = distribution_deltas(&a, &b, 8);
        // sin/cos phase shift changes the cross-feature correlation
        // structure while each marginal stays a sinusoid.
        assert!(r.correlation_distance > 0.0);
    }

    #[test]
    fn categorical_only_features_yield_zeros_not_nan() {
        let schema = Schema::new(
            vec![FieldSpec::new("a", FieldKind::categorical(["x"]))],
            vec![FieldSpec::new("f", FieldKind::categorical(["p", "q"]))],
            4,
        );
        let obj = TimeSeriesObject {
            attributes: vec![Value::Cat(0)],
            records: vec![vec![Value::Cat(0)], vec![Value::Cat(1)]],
        };
        let d = Dataset::new(schema, vec![obj]);
        let r = distribution_deltas(&d, &d, 4);
        assert!(r.autocorr_mse == 0.0 && r.wasserstein1 == 0.0);
        assert!(r.autocorr_mse.is_finite() && r.wasserstein1.is_finite());
    }
}
