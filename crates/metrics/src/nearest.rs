//! Nearest-neighbour memorization probe (Figs. 24–26, "DoppelGANger does
//! not just memorize").
//!
//! For each generated sample, find its nearest training samples by squared
//! error on a normalized, fixed-length view of one feature series. If the
//! model memorized, nearest distances collapse toward zero; the paper
//! reports "significant differences" instead.

use dg_data::{Dataset, TimeSeriesObject};

/// A generated sample paired with its nearest training neighbours.
#[derive(Debug, Clone)]
pub struct NearestReport {
    /// Index of the generated sample.
    pub generated_idx: usize,
    /// `(training index, mean squared error)` of the top-k neighbours,
    /// closest first.
    pub neighbours: Vec<(usize, f64)>,
}

/// Per-sample min-max normalized, fixed-length view of one feature series
/// (truncated / zero-padded to `len`).
pub fn normalized_view(o: &TimeSeriesObject, feature_idx: usize, len: usize) -> Vec<f64> {
    let s = o.feature_series(feature_idx);
    let mn = s.iter().copied().fold(f64::INFINITY, f64::min);
    let mx = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (mx - mn).max(1e-12);
    (0..len).map(|t| if t < s.len() { (s[t] - mn) / span } else { 0.0 }).collect()
}

/// Mean squared error between two equal-length views.
fn mse(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len().max(1) as f64
}

/// Finds the `k` nearest training samples for each generated sample.
pub fn nearest_neighbours(
    generated: &[TimeSeriesObject],
    training: &Dataset,
    feature_idx: usize,
    k: usize,
) -> Vec<NearestReport> {
    let len = training.schema.max_len;
    let train_views: Vec<Vec<f64>> =
        training.objects.iter().map(|o| normalized_view(o, feature_idx, len)).collect();
    generated
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let gv = normalized_view(g, feature_idx, len);
            let mut dists: Vec<(usize, f64)> =
                train_views.iter().enumerate().map(|(ti, tv)| (ti, mse(&gv, tv))).collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            dists.truncate(k);
            NearestReport { generated_idx: gi, neighbours: dists }
        })
        .collect()
}

/// Summary of the nearest-neighbour distances across all generated samples:
/// `(min, median, mean)` of each sample's distance to its closest neighbour.
pub fn nearest_distance_summary(reports: &[NearestReport]) -> (f64, f64, f64) {
    let mut firsts: Vec<f64> = reports.iter().filter_map(|r| r.neighbours.first().map(|&(_, d)| d)).collect();
    if firsts.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    firsts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let min = firsts[0];
    let median = firsts[firsts.len() / 2];
    let mean = firsts.iter().sum::<f64>() / firsts.len() as f64;
    (min, median, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_data::{FieldKind, FieldSpec, Schema, Value};

    fn demo() -> Dataset {
        let schema = Schema::new(
            vec![FieldSpec::new("k", FieldKind::categorical(["a"]))],
            vec![FieldSpec::new("x", FieldKind::continuous(-2.0, 2.0))],
            8,
        );
        let mk = |phase: f64| TimeSeriesObject {
            attributes: vec![Value::Cat(0)],
            records: (0..8).map(|t| vec![Value::Cont((t as f64 + phase).sin())]).collect(),
        };
        Dataset::new(schema, vec![mk(0.0), mk(1.0), mk(2.0)])
    }

    #[test]
    fn exact_copy_has_zero_distance() {
        let d = demo();
        let gen = vec![d.objects[1].clone()];
        let reports = nearest_neighbours(&gen, &d, 0, 3);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].neighbours[0].0, 1);
        assert!(reports[0].neighbours[0].1 < 1e-12);
        assert_eq!(reports[0].neighbours.len(), 3);
        // Distances are sorted ascending.
        let n = &reports[0].neighbours;
        assert!(n[0].1 <= n[1].1 && n[1].1 <= n[2].1);
    }

    #[test]
    fn novel_sample_has_positive_distance() {
        let d = demo();
        let novel = TimeSeriesObject {
            attributes: vec![Value::Cat(0)],
            records: (0..8).map(|t| vec![Value::Cont(if t % 2 == 0 { 1.0 } else { -1.0 })]).collect(),
        };
        let reports = nearest_neighbours(&[novel], &d, 0, 1);
        assert!(reports[0].neighbours[0].1 > 0.01);
    }

    #[test]
    fn summary_statistics() {
        let reports = vec![
            NearestReport { generated_idx: 0, neighbours: vec![(0, 0.1)] },
            NearestReport { generated_idx: 1, neighbours: vec![(1, 0.3)] },
            NearestReport { generated_idx: 2, neighbours: vec![(2, 0.2)] },
        ];
        let (min, median, mean) = nearest_distance_summary(&reports);
        assert!((min - 0.1).abs() < 1e-12);
        assert!((median - 0.2).abs() < 1e-12);
        assert!((mean - 0.2).abs() < 1e-12);
    }

    #[test]
    fn views_are_normalized_and_padded() {
        let o = TimeSeriesObject {
            attributes: vec![Value::Cat(0)],
            records: vec![vec![Value::Cont(10.0)], vec![Value::Cont(20.0)]],
        };
        let v = normalized_view(&o, 0, 4);
        assert_eq!(v, vec![0.0, 1.0, 0.0, 0.0]);
    }
}
