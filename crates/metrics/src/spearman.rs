//! Spearman's rank correlation (Table 4: does generated data preserve the
//! *ranking* of downstream algorithms?).

/// Spearman's rank correlation coefficient between two paired samples, with
/// average ranks for ties. Returns a value in `[-1, 1]`.
///
/// # Panics
/// Panics on length mismatch or fewer than 2 points.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman requires paired samples");
    assert!(a.len() >= 2, "spearman requires at least 2 points");
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Average ranks (1-based) with ties sharing the mean rank.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("finite values"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let a = [0.1, 0.5, 0.9, 0.7];
        let b = [1.0, 2.0, 4.0, 3.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_reversal_is_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [9.0, 5.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_share_average_ranks() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn constant_input_returns_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn monotone_transform_invariance() {
        let a = [0.2, 0.8, 0.5, 0.1];
        let b: Vec<f64> = a.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }
}
