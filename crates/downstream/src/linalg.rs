//! Small dense linear-algebra helpers: Cholesky factorization and solves,
//! used by the ridge and kernel-ridge regressors.

/// Cholesky factorization of a symmetric positive-definite matrix (row-major
/// `n x n`). Returns the lower-triangular factor `L` with `A = L Lᵀ`, or
/// `None` if the matrix is not (numerically) positive definite.
pub fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (forward then
/// backward substitution).
pub fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Backward: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

/// Solves the ridge-regularized normal equations
/// `(XᵀX + λI) w = Xᵀ y` for multi-output `y` (column-major outputs).
///
/// `x` is `m x d` row-major, `y` is `m x k` row-major. Returns `w` as
/// `d x k` row-major. Falls back to increasing regularization if the system
/// is numerically singular.
pub fn ridge_solve(x: &[f64], m: usize, d: usize, y: &[f64], k: usize, lambda: f64) -> Vec<f64> {
    // XtX
    let mut xtx = vec![0.0; d * d];
    for r in 0..m {
        let row = &x[r * d..(r + 1) * d];
        for i in 0..d {
            if row[i] == 0.0 {
                continue;
            }
            for j in 0..d {
                xtx[i * d + j] += row[i] * row[j];
            }
        }
    }
    // Xty
    let mut xty = vec![0.0; d * k];
    for r in 0..m {
        let xr = &x[r * d..(r + 1) * d];
        let yr = &y[r * k..(r + 1) * k];
        for i in 0..d {
            if xr[i] == 0.0 {
                continue;
            }
            for j in 0..k {
                xty[i * k + j] += xr[i] * yr[j];
            }
        }
    }
    let mut lam = lambda.max(1e-10);
    loop {
        let mut a = xtx.clone();
        for i in 0..d {
            a[i * d + i] += lam;
        }
        if let Some(l) = cholesky(&a, d) {
            let mut w = vec![0.0; d * k];
            let mut b = vec![0.0; d];
            for j in 0..k {
                for i in 0..d {
                    b[i] = xty[i * k + j];
                }
                let col = cholesky_solve(&l, d, &b);
                for i in 0..d {
                    w[i * k + j] = col[i];
                }
            }
            return w;
        }
        lam *= 10.0;
        assert!(lam < 1e12, "ridge system irrecoverably singular");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity_is_identity() {
        let n = 3;
        let mut a = vec![0.0; 9];
        for i in 0..3 {
            a[i * 3 + i] = 1.0;
        }
        let l = cholesky(&a, n).unwrap();
        assert_eq!(l, a);
    }

    #[test]
    fn cholesky_solve_recovers_solution() {
        // A = [[4,2],[2,3]], x = [1, -2], b = A x = [0, -4]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        let x = cholesky_solve(&l, 2, &[0.0, -4.0]);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn ridge_recovers_linear_map() {
        // y = 2*x0 - x1, noise-free; tiny lambda.
        let m = 50;
        let mut x = Vec::with_capacity(m * 2);
        let mut y = Vec::with_capacity(m);
        for i in 0..m {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.71).cos();
            x.extend([a, b]);
            y.push(2.0 * a - b);
        }
        let w = ridge_solve(&x, m, 2, &y, 1, 1e-8);
        assert!((w[0] - 2.0).abs() < 1e-4, "w0 = {}", w[0]);
        assert!((w[1] + 1.0).abs() < 1e-4, "w1 = {}", w[1]);
    }
}
