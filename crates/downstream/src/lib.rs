//! # dg-downstream — downstream task models (Figs. 11, 27, 28, 29)
//!
//! The paper evaluates synthetic data by training *downstream* predictors on
//! it and testing on real data. This crate implements those predictors from
//! scratch:
//!
//! * [`classify`] — MLP, Gaussian naive Bayes, multinomial logistic
//!   regression, CART decision tree, and a linear SVM (the five classifiers
//!   of Fig. 11);
//! * [`regress`] — ridge linear regression, RBF kernel ridge, and MLP
//!   regressors with one and five hidden layers (the four regressors of
//!   Fig. 27);
//! * [`features`] — featurization: summary statistics for end-event
//!   classification, history/horizon windows for forecasting, plus the
//!   accuracy and R² metrics;
//! * [`linalg`] — the dense Cholesky machinery backing the closed-form
//!   solvers.

#![warn(missing_docs)]

pub mod classify;
pub mod features;
pub mod linalg;
pub mod regress;

pub use classify::{
    standard_classifiers, Classifier, DecisionTree, LinearSvm, LogisticRegression, MlpClassifier, NaiveBayes,
};
pub use features::{
    accuracy, classification_task, forecast_task, r2_score, ClassificationTask, ForecastTask,
};
pub use regress::{standard_regressors, KernelRidge, LinearRegression, MlpRegressor, Regressor};
