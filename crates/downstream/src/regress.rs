//! Regressors for the WWT forecasting experiment (Fig. 27): ridge linear
//! regression, RBF kernel ridge, and MLP regressors with one or five hidden
//! layers — matching the paper's model set.

use crate::linalg::{cholesky, cholesky_solve, ridge_solve};
use dg_nn::graph::Graph;
use dg_nn::layers::{Activation, Mlp};
use dg_nn::optim::Adam;
use dg_nn::params::ParamStore;
use dg_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trainable multi-output regressor over flat feature vectors.
pub trait Regressor {
    /// Model name as it appears in the paper's figures.
    fn name(&self) -> &'static str;
    /// Fits on `n` rows of `dim` inputs against `n` rows of `k` outputs.
    fn fit(&mut self, x: &[f64], n: usize, dim: usize, y: &[f64], k: usize);
    /// Predicts `n x k` outputs (row-major).
    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<f64>;
}

// ---------------------------------------------------------------------------
// Ridge linear regression
// ---------------------------------------------------------------------------

/// Linear regression with L2 (ridge) regularization, solved in closed form.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Ridge strength.
    pub lambda: f64,
    w: Vec<f64>, // (dim + 1) x k, bias last
    k: usize,
}

impl Default for LinearRegression {
    fn default() -> Self {
        LinearRegression { lambda: 1e-3, w: Vec::new(), k: 0 }
    }
}

impl Regressor for LinearRegression {
    fn name(&self) -> &'static str {
        "LinearRegr."
    }

    fn fit(&mut self, x: &[f64], n: usize, dim: usize, y: &[f64], k: usize) {
        // Append a bias column.
        let d1 = dim + 1;
        let mut xb = Vec::with_capacity(n * d1);
        for r in 0..n {
            xb.extend_from_slice(&x[r * dim..(r + 1) * dim]);
            xb.push(1.0);
        }
        self.w = ridge_solve(&xb, n, d1, y, k, self.lambda);
        self.k = k;
    }

    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<f64> {
        let k = self.k;
        let mut out = Vec::with_capacity(n * k);
        for r in 0..n {
            let row = &x[r * dim..(r + 1) * dim];
            for c in 0..k {
                let mut z = self.w[dim * k + c]; // bias
                for (j, &v) in row.iter().enumerate() {
                    z += self.w[j * k + c] * v;
                }
                out.push(z);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// RBF kernel ridge regression
// ---------------------------------------------------------------------------

/// Kernel ridge regression with an RBF kernel
/// `k(a,b) = exp(-γ ‖a-b‖²)`. Training cost is `O(n³)`; training sets larger
/// than `max_train` are deterministically subsampled.
#[derive(Debug, Clone)]
pub struct KernelRidge {
    /// RBF width parameter γ (0 = use the median heuristic `1/dim`).
    pub gamma: f64,
    /// Ridge strength.
    pub lambda: f64,
    /// Maximum kernel matrix side.
    pub max_train: usize,
    train_x: Vec<f64>,
    alpha: Vec<f64>, // n_train x k
    dim: usize,
    k: usize,
    fitted_gamma: f64,
}

impl Default for KernelRidge {
    fn default() -> Self {
        KernelRidge {
            gamma: 0.0,
            lambda: 1e-2,
            max_train: 400,
            train_x: Vec::new(),
            alpha: Vec::new(),
            dim: 0,
            k: 0,
            fitted_gamma: 1.0,
        }
    }
}

impl Regressor for KernelRidge {
    fn name(&self) -> &'static str {
        "KernelRidge"
    }

    fn fit(&mut self, x: &[f64], n: usize, dim: usize, y: &[f64], k: usize) {
        // Deterministic stride subsample if too large.
        let (xs, ys, m) = if n > self.max_train {
            let stride = n.div_ceil(self.max_train);
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let mut m = 0;
            for r in (0..n).step_by(stride) {
                xs.extend_from_slice(&x[r * dim..(r + 1) * dim]);
                ys.extend_from_slice(&y[r * k..(r + 1) * k]);
                m += 1;
            }
            (xs, ys, m)
        } else {
            (x.to_vec(), y.to_vec(), n)
        };
        self.fitted_gamma = if self.gamma > 0.0 { self.gamma } else { 1.0 / dim.max(1) as f64 };
        self.dim = dim;
        self.k = k;

        // K + λI
        let mut km = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..=i {
                let v = rbf(&xs[i * dim..(i + 1) * dim], &xs[j * dim..(j + 1) * dim], self.fitted_gamma);
                km[i * m + j] = v;
                km[j * m + i] = v;
            }
        }
        let mut lam = self.lambda.max(1e-8);
        let l = loop {
            let mut a = km.clone();
            for i in 0..m {
                a[i * m + i] += lam;
            }
            if let Some(l) = cholesky(&a, m) {
                break l;
            }
            lam *= 10.0;
            assert!(lam < 1e9, "kernel system irrecoverably singular");
        };
        let mut alpha = vec![0.0; m * k];
        let mut b = vec![0.0; m];
        for c in 0..k {
            for i in 0..m {
                b[i] = ys[i * k + c];
            }
            let col = cholesky_solve(&l, m, &b);
            for i in 0..m {
                alpha[i * k + c] = col[i];
            }
        }
        self.train_x = xs;
        self.alpha = alpha;
    }

    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<f64> {
        assert_eq!(dim, self.dim, "dimension mismatch");
        let m = self.train_x.len() / dim.max(1);
        let k = self.k;
        let mut out = vec![0.0; n * k];
        for r in 0..n {
            let row = &x[r * dim..(r + 1) * dim];
            for i in 0..m {
                let kv = rbf(row, &self.train_x[i * dim..(i + 1) * dim], self.fitted_gamma);
                if kv < 1e-12 {
                    continue;
                }
                for c in 0..k {
                    out[r * k + c] += kv * self.alpha[i * k + c];
                }
            }
        }
        out
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

// ---------------------------------------------------------------------------
// MLP regressor
// ---------------------------------------------------------------------------

/// MLP regressor trained with MSE (Adam). The paper uses one-hidden-layer
/// (100 units) and five-hidden-layer (200 units) variants.
pub struct MlpRegressor {
    /// Hidden width.
    pub hidden: usize,
    /// Hidden depth.
    pub depth: usize,
    /// Full-batch Adam epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight-init seed.
    pub seed: u64,
    display_name: &'static str,
    net: Option<(Mlp, ParamStore)>,
}

impl MlpRegressor {
    /// The paper's one-hidden-layer (100-unit) variant.
    pub fn one_layer() -> Self {
        MlpRegressor {
            hidden: 100,
            depth: 1,
            epochs: 300,
            lr: 0.01,
            seed: 0,
            display_name: "MLP (1 layer)",
            net: None,
        }
    }

    /// The paper's five-hidden-layer (200-unit) variant.
    pub fn five_layers() -> Self {
        MlpRegressor {
            hidden: 64,
            depth: 5,
            epochs: 300,
            lr: 0.005,
            seed: 0,
            display_name: "MLP (5 layers)",
            net: None,
        }
    }
}

impl Regressor for MlpRegressor {
    fn name(&self) -> &'static str {
        self.display_name
    }

    fn fit(&mut self, x: &[f64], n: usize, dim: usize, y: &[f64], k: usize) {
        let xt = Tensor::from_vec(n, dim, x.iter().map(|&v| v as f32).collect());
        let yt = Tensor::from_vec(n, k, y.iter().map(|&v| v as f32).collect());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "reg",
            dim,
            self.hidden,
            self.depth,
            k,
            Activation::LeakyRelu(0.1),
            Activation::Linear,
            &mut rng,
        );
        let mut opt = Adam::with_betas(self.lr, 0.9, 0.999);
        for _ in 0..self.epochs {
            let mut g = Graph::new();
            let xv = g.constant(xt.clone());
            let pred = mlp.forward(&mut g, &store, xv);
            let tv = g.constant(yt.clone());
            let d = g.sub(pred, tv);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            g.backward(loss);
            opt.step(&mut store, &g.param_grads());
        }
        self.net = Some((mlp, store));
    }

    fn predict(&self, x: &[f64], n: usize, dim: usize) -> Vec<f64> {
        let (mlp, store) = self.net.as_ref().expect("fit before predict");
        let xt = Tensor::from_vec(n, dim, x.iter().map(|&v| v as f32).collect());
        let mut g = Graph::new();
        let xv = g.constant(xt);
        let pred = mlp.forward_frozen(&mut g, store, xv);
        g.value(pred).as_slice().iter().map(|&v| v as f64).collect()
    }
}

/// The four regressors of Fig. 27, in the paper's order.
pub fn standard_regressors() -> Vec<Box<dyn Regressor>> {
    vec![
        Box::new(KernelRidge::default()),
        Box::new(LinearRegression::default()),
        Box::new(MlpRegressor::one_layer()),
        Box::new(MlpRegressor::five_layers()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::r2_score;

    /// Noisy linear map y = [x0 + x1, x0 - 2 x1].
    fn linear_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n * 2);
        for i in 0..n {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.71).cos();
            x.extend([a, b]);
            y.extend([a + b, a - 2.0 * b]);
        }
        (x, y)
    }

    /// Nonlinear scalar map y = sin(3 x0) * x1.
    fn nonlinear_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.193).sin();
            let b = (i as f64 * 0.412).cos();
            x.extend([a, b]);
            y.push((3.0 * a).sin() * b);
        }
        (x, y)
    }

    #[test]
    fn linear_regression_fits_linear_map() {
        let (x, y) = linear_data(100);
        let mut m = LinearRegression::default();
        m.fit(&x, 100, 2, &y, 2);
        let pred = m.predict(&x, 100, 2);
        assert!(r2_score(&pred, &y) > 0.999);
    }

    #[test]
    fn kernel_ridge_fits_nonlinear_map() {
        let (x, y) = nonlinear_data(200);
        let mut m = KernelRidge { gamma: 2.0, lambda: 1e-4, ..KernelRidge::default() };
        m.fit(&x, 200, 2, &y, 1);
        let pred = m.predict(&x, 200, 2);
        let r2 = r2_score(&pred, &y);
        assert!(r2 > 0.95, "kernel ridge R2 = {r2}");
    }

    #[test]
    fn kernel_ridge_subsamples_large_training_sets() {
        let (x, y) = nonlinear_data(1000);
        let mut m = KernelRidge { gamma: 2.0, lambda: 1e-4, max_train: 100, ..KernelRidge::default() };
        m.fit(&x, 1000, 2, &y, 1);
        assert!(m.train_x.len() / 2 <= 100);
        let pred = m.predict(&x, 1000, 2);
        assert!(r2_score(&pred, &y) > 0.8);
    }

    #[test]
    fn mlp_regressor_fits_nonlinear_map() {
        let (x, y) = nonlinear_data(200);
        let mut m = MlpRegressor::one_layer();
        m.epochs = 500;
        m.fit(&x, 200, 2, &y, 1);
        let pred = m.predict(&x, 200, 2);
        let r2 = r2_score(&pred, &y);
        assert!(r2 > 0.9, "MLP R2 = {r2}");
    }

    #[test]
    fn linear_model_underfits_nonlinear_map() {
        let (x, y) = nonlinear_data(200);
        let mut m = LinearRegression::default();
        m.fit(&x, 200, 2, &y, 1);
        let pred = m.predict(&x, 200, 2);
        let lin = r2_score(&pred, &y);
        assert!(lin < 0.8, "linear model should underfit, R2 = {lin}");
    }
}
